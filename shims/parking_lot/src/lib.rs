//! Offline shim reproducing the subset of the `parking_lot` API this
//! workspace uses (`Mutex`, `RwLock`, `Condvar`), implemented over
//! `std::sync`.  The build container has no network access, so the real
//! crate cannot be fetched; this shim keeps the source code unchanged.
//!
//! Semantics preserved:
//! * locking never returns a `Result` (poisoning is swallowed, matching
//!   parking_lot's no-poisoning behavior),
//! * `Condvar::wait` takes `&mut MutexGuard` and reacquires the lock.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's no-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily hand the std guard to
    // `std::sync::Condvar::wait` by value; it is `Some` at all other times.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.  Unlike `std`, never
    /// returns an error: a poisoned lock is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable pairing with [`Mutex`], parking_lot-style: `wait`
/// takes the guard by `&mut` and the guard is valid again on return.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification;
    /// the lock is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`; the lock is
    /// reacquired before returning either way.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (reacquired, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// Whether a [`Condvar::wait_for`] returned because of a timeout.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A reader-writer lock with parking_lot's no-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *p2.0.lock() = true;
            p2.1.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
