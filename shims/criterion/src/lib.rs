//! Offline shim reproducing the subset of the `criterion` API this
//! workspace uses.  The build container has no network access, so the
//! real crate cannot be fetched; this shim keeps every bench
//! source-compatible and still produces useful wall-clock numbers.
//!
//! Differences from real criterion, by design: no statistical analysis,
//! no HTML reports, no baseline comparison.  Each bench function is
//! warmed up once, then timed over `sample_size` samples (fast bodies
//! are batched so a sample spans at least ~2 ms), and a
//! `min / mean / max` line is printed per benchmark.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Apply CLI args (`cargo bench -- <filter>`); criterion-specific
    /// flags are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // Harness flags cargo or users commonly pass; flags with a
                // value consume it, the rest are ignored.
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--exact" => {}
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" | "--profile-time" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Printed at the end of `criterion_main!`; a no-op here.
    pub fn final_summary(&self) {}

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `f` and print a `min/mean/max` line labelled `group/id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);

        // Warm-up and calibration: one untimed run, then pick a batch
        // size so each timed sample spans at least ~2 ms.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let once = b.elapsed.max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);

        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: batch as u64,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed / batch as u32);
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{full:<48} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_dur(min),
            fmt_dur(mean),
            fmt_dur(max),
            samples.len(),
            batch,
        );
        self
    }

    /// Finish the group (prints nothing; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; `iter` runs the
/// workload and accumulates elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a bench group function invoking each bench with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running each group defined by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("other".into()),
        };
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.bench_function("skipped", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 0);
    }
}
