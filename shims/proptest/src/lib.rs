//! Offline shim reproducing the subset of the `proptest` API this
//! workspace uses.  The build container has no network access, so the
//! real crate cannot be fetched; this shim keeps every property test
//! source-compatible.
//!
//! Differences from real proptest, by design:
//! * sampling is purely random (deterministic per test, seeded from the
//!   test's source location and case index) — no shrinking on failure;
//! * a failing case panics with the assertion message and the case index
//!   so it can be replayed by rerunning the test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod test_runner {
    //! Runner configuration and per-case error type.

    /// Subset of proptest's run configuration: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps offline test runs
            // quick while still exploring the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not succeed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; draw a fresh case.
        Reject,
    }

    impl TestCaseError {
        /// Build a failure carrying `msg`.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::*;

    /// A recipe for generating values of `Value`.
    ///
    /// Unlike real proptest there is no value tree: `sample` draws a
    /// fresh value directly and failures are not shrunk.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// A strategy producing `f(v)` for each `v` this one produces.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.sample(rng)))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut StdRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice among several strategies (backs `prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Choose uniformly among `variants` each draw.
        pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Union(variants)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> V {
            let idx = rng.random_range(0..self.0.len());
            self.0[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-range generation for primitive types.

    use super::strategy::Strategy;
    use super::*;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw a uniform value over the whole domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }

    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` over its full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! `vec(element, size)` — Vec generation with exact or ranged length.

    use super::strategy::Strategy;
    use super::*;

    /// A length specification: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Derive a per-case RNG from the test's source location and case index.
/// Deterministic across runs so failures are replayable by rerunning.
pub fn case_rng(file: &str, line: u32, case: u64) -> StdRng {
    // FNV-1a over the location, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= line as u64;
    h = h.wrapping_mul(0x1000_0000_01b3);
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Define property tests.  Supports the grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_prop(x in 0u64..100, mut v in vec(any::<u8>(), 0..32)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut passed: u32 = 0;
            let mut rejected: u64 = 0;
            let mut case: u64 = 0;
            while passed < config.cases {
                let mut rng = $crate::case_rng(file!(), line!(), case);
                case += 1;
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 4096,
                            "proptest: too many prop_assume! rejections in {}",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            case - 1,
                            stringify!($name),
                            msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body; failure fails the case
/// (without unwinding through user code).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__pl, __pr) => {
                if !(*__pl == *__pr) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                            __pl, __pr,
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__pl, __pr) => {
                if !(*__pl == *__pr) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                            __pl, __pr, format!($($fmt)+),
                        )),
                    );
                }
            }
        }
    };
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__pl, __pr) => {
                if *__pl == *__pr {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `(left != right)`\n  both: `{:?}`", __pl,),
                    ));
                }
            }
        }
    };
}

/// Discard the current case (draw a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranged args stay in bounds; vec sizes honour their range.
        #[test]
        fn args_in_bounds(x in 10u64..20, v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((3..7).contains(&v.len()), "len {}", v.len());
        }

        /// Exact-size vec, tuple strategies, prop_map and oneof compose.
        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u32..5, 0u8..2), 4),
            pick in prop_oneof![Just(1u8), (5u8..7).prop_map(|x| x * 2)],
        ) {
            prop_assert_eq!(v.len(), 4);
            for (a, b) in &v {
                prop_assert!(*a < 5 && *b < 2);
            }
            prop_assert!(pick == 1 || pick == 10 || pick == 12, "pick {}", pick);
        }

        /// prop_assume rejections draw fresh cases rather than failing.
        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_sampling() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..100, 0..10);
        let a: Vec<Vec<u64>> = (0..20)
            .map(|i| s.sample(&mut crate::case_rng("f", 1, i)))
            .collect();
        let b: Vec<Vec<u64>> = (0..20)
            .map(|i| s.sample(&mut crate::case_rng("f", 1, i)))
            .collect();
        assert_eq!(a, b);
    }
}
