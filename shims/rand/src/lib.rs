//! Offline shim reproducing the subset of the `rand` 0.9 API this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::random::<T>()`, and `Rng::random_range(range)`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), but every consumer in this
//! workspace treats the RNG as an arbitrary deterministic stream, never a
//! specific sequence, so only determinism-per-seed matters.

use std::ops::{Bound, RangeBounds};

/// Types producible by [`Rng::random`] (the `StandardUniform` distribution
/// in real rand).
pub trait Standard: Sized {
    /// Draw a uniformly distributed value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// Types usable with [`Rng::random_range`] (the `SampleUniform` trait in
/// real rand).
pub trait UniformSample: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`.
    fn draw_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// The smallest representable value (for unbounded range starts).
    const MIN: Self;
    /// Increment by one (for converting inclusive ends); saturating.
    fn succ(self) -> Self;
}

/// Core entropy source: 64 uniformly random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing randomness methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn random_range<T: UniformSample, R: RangeBounds<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v.succ(),
            Bound::Unbounded => T::MIN,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v.succ(),
            Bound::Excluded(&v) => v,
            Bound::Unbounded => panic!("random_range requires an upper bound"),
        };
        assert!(lo < hi, "random_range: empty range");
        T::draw_range(self, lo, hi)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
        impl UniformSample for $t {
            const MIN: Self = <$t>::MIN;
            fn succ(self) -> Self {
                self.saturating_add(1)
            }
            fn draw_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as u128) - (lo as u128);
                // Rejection sampling over the top 64 bits keeps the draw
                // unbiased for any span that fits in u64 (all of ours do).
                let span = span as u64;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return lo.wrapping_add((x % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty => $u:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
        impl UniformSample for $t {
            const MIN: Self = <$t>::MIN;
            fn succ(self) -> Self {
                self.saturating_add(1)
            }
            fn draw_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return (lo as i128 + (x % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: u8 = rng.random_range(0..100u8);
            assert!(y < 100);
            let z: usize = rng.random_range(1..4);
            assert!((1..4).contains(&z));
            let w: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_distribution_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
