//! Cross-crate integration tests through the umbrella `fg` crate: FG
//! pipelines over simulated disks on a simulated cluster, end to end.

use std::sync::Arc;
use std::time::Duration;

use fg::cluster::{Cluster, ClusterCfg, ClusterError, NetCfg};
use fg::core::{map_stage, PipelineCfg, Program, Rounds};
use fg::pdm::{DiskCfg, SimDisk, Striping};
use fg::sort::config::SortConfig;
use fg::sort::csort::run_csort;
use fg::sort::dsort::run_dsort;
use fg::sort::input::provision;
use fg::sort::keygen::KeyDist;
use fg::sort::record::RecordFormat;
use fg::sort::verify::{verify_output, Strictness};

/// An FG pipeline on each node of a cluster, reading from that node's
/// disk, exchanging via the communicator, writing back — the full stack.
#[test]
fn pipelines_on_cluster_with_disks() {
    const NODES: usize = 3;
    const BLOCKS: u64 = 10;
    const BLOCK: usize = 1024;

    let disks: Vec<Arc<SimDisk>> = (0..NODES)
        .map(|n| {
            let d = SimDisk::new(DiskCfg::zero());
            d.load("in", vec![n as u8; BLOCKS as usize * BLOCK]);
            d
        })
        .collect();
    let disks2 = disks.clone();

    Cluster::run(ClusterCfg::zero_cost(NODES), move |node| {
        let rank = node.rank();
        let nodes = node.nodes();
        let comm = node.comm().clone();
        let disk = Arc::clone(&disks2[rank]);

        let mut prog = Program::new(format!("n{rank}"));
        let d = Arc::clone(&disk);
        let read = prog.add_stage(
            "read",
            map_stage(move |buf, _| {
                d.read_at("in", buf.round() * BLOCK as u64, buf.space_mut())
                    .expect("read");
                buf.fill_to_capacity();
                Ok(())
            }),
        );
        // Rotate each block one node to the right via sendrecv.
        let comm2 = comm.clone();
        let rotate = prog.add_stage(
            "rotate",
            map_stage(move |buf, _| {
                let right = (rank + 1) % nodes;
                let left = (rank + nodes - 1) % nodes;
                let got = comm2
                    .sendrecv_replace(buf.filled().to_vec(), right, left, buf.round())
                    .expect("sendrecv");
                buf.copy_from(&got);
                Ok(())
            }),
        );
        let d = Arc::clone(&disk);
        let write = prog.add_stage(
            "write",
            map_stage(move |buf, _| {
                d.write_at("out", buf.round() * BLOCK as u64, buf.filled())
                    .expect("write");
                Ok(())
            }),
        );
        prog.add_pipeline(
            PipelineCfg::new("p", 2, BLOCK).rounds(Rounds::Count(BLOCKS)),
            &[read, rotate, write],
        )
        .map_err(|e| ClusterError::Node {
            rank,
            message: e.to_string(),
        })?;
        prog.run().map_err(|e| ClusterError::Node {
            rank,
            message: e.to_string(),
        })?;
        Ok(())
    })
    .expect("cluster");

    // Node n's output should hold node n-1's input bytes.
    for (n, disk) in disks.iter().enumerate() {
        let out = disk.snapshot("out").expect("out exists");
        let expect = ((n + NODES - 1) % NODES) as u8;
        assert!(out.iter().all(|&b| b == expect), "node {n}");
        assert_eq!(out.len(), BLOCKS as usize * BLOCK);
    }
}

/// Both sorts on a cluster with non-zero cost models produce verified
/// output and dsort does less I/O.
#[test]
fn sorts_with_cost_models() {
    let mut cfg = SortConfig::experiment_default(4, 1024);
    // Soften costs so the test runs in about a second.
    cfg.disk = DiskCfg::new(Duration::from_micros(20), 32.0 * 1024.0 * 1024.0);
    cfg.net = NetCfg::new(Duration::from_micros(5), 128.0 * 1024.0 * 1024.0);
    cfg.dist = KeyDist::StdNormal;

    let disks = provision(&cfg);
    let d = run_dsort(&cfg, &disks).expect("dsort");
    verify_output(&cfg, &disks, Strictness::Exact).expect("dsort verified");

    let disks_c = provision(&cfg);
    let c = run_csort(&cfg, &disks_c).expect("csort");
    verify_output(&cfg, &disks_c, Strictness::Exact).expect("csort verified");

    let dsort_io: u64 = d.disk_stats.iter().map(|s| s.bytes_total()).sum();
    let csort_io: u64 = c.disk_stats.iter().map(|s| s.bytes_total()).sum();
    let ratio = csort_io as f64 / dsort_io as f64;
    assert!(
        (1.3..1.7).contains(&ratio),
        "csort should do ~1.5x the I/O, got {ratio:.2} ({csort_io} vs {dsort_io})"
    );
}

/// 64-byte records through the full stack.
#[test]
fn rec64_full_stack() {
    let mut cfg = SortConfig::test_default(4, 512);
    cfg.record = RecordFormat::REC64;
    cfg.block_bytes = 16 * 64;
    cfg.run_bytes = 64 * 64;
    cfg.vertical_buf_bytes = 8 * 64;
    cfg.dist = KeyDist::Poisson;
    let disks = provision(&cfg);
    run_dsort(&cfg, &disks).expect("dsort");
    verify_output(&cfg, &disks, Strictness::Exact).expect("verified");

    let disks = provision(&cfg);
    run_csort(&cfg, &disks).expect("csort");
    verify_output(&cfg, &disks, Strictness::Exact).expect("verified");
}

/// The striped outputs of dsort and csort are byte-identical per disk for
/// distinct keys (same global order, same striping).
#[test]
fn dsort_and_csort_agree_on_disk_layout() {
    let cfg = SortConfig::test_default(4, 2048); // uniform keys: distinct whp
    let disks_d = provision(&cfg);
    run_dsort(&cfg, &disks_d).expect("dsort");
    let disks_c = provision(&cfg);
    run_csort(&cfg, &disks_c).expect("csort");
    let striping = Striping::new(cfg.nodes, cfg.block_bytes);
    let a = striping
        .assemble(&disks_d, "output", cfg.total_bytes())
        .unwrap();
    let b = striping
        .assemble(&disks_c, "output", cfg.total_bytes())
        .unwrap();
    assert_eq!(a, b, "identical sorted streams expected for distinct keys");
}

/// Determinism: two dsort runs over the same seed produce identical
/// striped output.
#[test]
fn dsort_is_deterministic_in_content() {
    let mut cfg = SortConfig::test_default(3, 1536);
    cfg.dist = KeyDist::Poisson;
    let striping = Striping::new(cfg.nodes, cfg.block_bytes);
    let one = {
        let disks = provision(&cfg);
        run_dsort(&cfg, &disks).expect("dsort");
        let out = striping
            .assemble(&disks, "output", cfg.total_bytes())
            .unwrap();
        fg::sort::input::keys_of(cfg.record, &out)
    };
    let two = {
        let disks = provision(&cfg);
        run_dsort(&cfg, &disks).expect("dsort");
        let out = striping
            .assemble(&disks, "output", cfg.total_bytes())
            .unwrap();
        fg::sort::input::keys_of(cfg.record, &out)
    };
    assert_eq!(one, two);
}
