//! Self-cleaning scratch directories for tests and experiments.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{env, fs, process};

/// A unique directory under the system temp dir, removed (recursively) on
/// drop — the backing store for throwaway [`OsDisk`](crate::OsDisk)
/// instances in tests and experiments, without pulling in a tempdir crate.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Create `$TMPDIR/fg-{tag}-{pid}-{seq}`.
    pub fn new(tag: &str) -> std::io::Result<ScratchDir> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = env::temp_dir().join(format!(
            "fg-{tag}-{}-{}",
            process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path)?;
        Ok(ScratchDir { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = ScratchDir::new("t").unwrap();
        let b = ScratchDir::new("t").unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        fs::write(kept.join("f"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists());
    }
}
