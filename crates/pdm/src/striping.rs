//! Parallel Disk Model striping arithmetic.
//!
//! In the PDM (Vitter & Shriver), a logical file of fixed-size blocks is
//! assigned round-robin to the `P` disks of the cluster: global block `b`
//! lives on disk `b mod P`, at local block index `b div P`.  Both dsort and
//! csort produce their final output in this *striped* order (§V).
//!
//! [`Striping`] converts between global byte/block coordinates and
//! `(node, local offset)` pairs, and [`assemble`] reconstructs the global
//! byte stream from the per-node stripe files (used for verification).

use std::sync::Arc;

use crate::disk::Disk;
use crate::PdmError;

/// Striping geometry: number of disks and the stripe block size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Striping {
    /// Number of disks (`P`, one per node).
    pub nodes: usize,
    /// Stripe block size in bytes (`B`).
    pub block_bytes: usize,
}

impl Striping {
    /// Construct; panics on degenerate geometry.
    pub fn new(nodes: usize, block_bytes: usize) -> Self {
        assert!(nodes > 0, "striping needs at least one node");
        assert!(block_bytes > 0, "striping needs a positive block size");
        Striping { nodes, block_bytes }
    }

    /// Which node holds global block `b`, and at which local block index.
    pub fn locate_block(&self, global_block: u64) -> (usize, u64) {
        (
            (global_block % self.nodes as u64) as usize,
            global_block / self.nodes as u64,
        )
    }

    /// Global block index of local block `local` on `node`.
    pub fn global_block_of(&self, node: usize, local_block: u64) -> u64 {
        local_block * self.nodes as u64 + node as u64
    }

    /// Which node holds global byte `offset`, and at which local byte
    /// offset within that node's stripe file.
    pub fn locate_byte(&self, offset: u64) -> (usize, u64) {
        let b = self.block_bytes as u64;
        let block = offset / b;
        let within = offset % b;
        let (node, local_block) = self.locate_block(block);
        (node, local_block * b + within)
    }

    /// Number of bytes of a `total`-byte striped file that land on `node`.
    pub fn bytes_on_node(&self, total: u64, node: usize) -> u64 {
        let b = self.block_bytes as u64;
        let full_blocks = total / b;
        let tail = total % b;
        let p = self.nodes as u64;
        // Full blocks are dealt round-robin; node gets ceil/floor share.
        let base = (full_blocks / p) * b;
        let extra_full = if (node as u64) < full_blocks % p {
            b
        } else {
            0
        };
        let tail_here = if full_blocks % p == node as u64 {
            tail
        } else {
            0
        };
        base + extra_full + tail_here
    }

    /// Split a contiguous global byte range `[offset, offset+len)` into
    /// per-node contiguous writes: `(node, local_offset, range_in_input)`.
    ///
    /// Useful when a stage holds a buffer of output destined for the
    /// striped file starting at global `offset`.
    pub fn split_range(
        &self,
        offset: u64,
        len: usize,
    ) -> Vec<(usize, u64, std::ops::Range<usize>)> {
        let b = self.block_bytes as u64;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < len {
            let goff = offset + pos as u64;
            let within = (goff % b) as usize;
            let chunk = (self.block_bytes - within).min(len - pos);
            let (node, local) = self.locate_byte(goff);
            out.push((node, local, pos..pos + chunk));
            pos += chunk;
        }
        out
    }

    /// Reconstruct the global byte stream of a striped file of `total`
    /// bytes from the per-node stripe files named `name`.
    ///
    /// This is a *verification* helper: it reads through cost-free
    /// snapshots so it perturbs neither timings nor I/O counters.  Works
    /// against any backend — `&[Arc<SimDisk>]` and `&[DiskRef]` both
    /// satisfy the bound.
    pub fn assemble<D: Disk + ?Sized>(
        &self,
        disks: &[Arc<D>],
        name: &str,
        total: u64,
    ) -> Result<Vec<u8>, PdmError> {
        assert_eq!(disks.len(), self.nodes, "one disk per node");
        // A node whose stripe share is empty may never have created the
        // file; treat it as empty (the range check below still catches
        // genuinely missing data).
        let snapshots: Vec<Vec<u8>> = disks
            .iter()
            .map(|d| d.snapshot(name).unwrap_or_default())
            .collect();
        let b = self.block_bytes as u64;
        let mut out = Vec::with_capacity(total as usize);
        let mut block = 0u64;
        while (out.len() as u64) < total {
            let (node, local_block) = self.locate_block(block);
            let want = ((total - out.len() as u64).min(b)) as usize;
            let start = (local_block * b) as usize;
            let snap = &snapshots[node];
            if start + want > snap.len() {
                return Err(PdmError::OutOfRange {
                    file: name.to_string(),
                    offset: local_block * b,
                    len: want,
                    file_len: snap.len() as u64,
                });
            }
            out.extend_from_slice(&snap[start..start + want]);
            block += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{DiskCfg, SimDisk};

    #[test]
    fn block_round_robin() {
        let s = Striping::new(4, 100);
        assert_eq!(s.locate_block(0), (0, 0));
        assert_eq!(s.locate_block(1), (1, 0));
        assert_eq!(s.locate_block(4), (0, 1));
        assert_eq!(s.locate_block(7), (3, 1));
        for b in 0..100 {
            let (n, l) = s.locate_block(b);
            assert_eq!(s.global_block_of(n, l), b);
        }
    }

    #[test]
    fn byte_location() {
        let s = Striping::new(2, 10);
        assert_eq!(s.locate_byte(0), (0, 0));
        assert_eq!(s.locate_byte(9), (0, 9));
        assert_eq!(s.locate_byte(10), (1, 0));
        assert_eq!(s.locate_byte(25), (0, 15)); // block 2 -> node 0 local block 1
    }

    #[test]
    fn bytes_on_node_partitions_total() {
        for total in [0u64, 1, 9, 10, 11, 99, 100, 101, 1234] {
            for nodes in [1usize, 2, 3, 5] {
                let s = Striping::new(nodes, 10);
                let sum: u64 = (0..nodes).map(|n| s.bytes_on_node(total, n)).sum();
                assert_eq!(sum, total, "total={total} nodes={nodes}");
            }
        }
    }

    #[test]
    fn split_range_covers_input_contiguously() {
        let s = Striping::new(3, 8);
        let parts = s.split_range(5, 30);
        let mut covered = 0usize;
        for (node, local, range) in &parts {
            assert_eq!(range.start, covered);
            covered = range.end;
            // Each part fits one block on one node.
            assert!(*node < 3);
            assert!(range.len() <= 8);
            let _ = local;
        }
        assert_eq!(covered, 30);
    }

    #[test]
    fn split_range_matches_locate_byte() {
        let s = Striping::new(4, 16);
        for (node, local, range) in s.split_range(100, 64) {
            let (n, l) = s.locate_byte(100 + range.start as u64);
            assert_eq!((node, local), (n, l));
        }
    }

    #[test]
    fn striped_write_and_assemble_roundtrip() {
        let s = Striping::new(3, 4);
        let disks: Vec<_> = (0..3).map(|_| SimDisk::new(DiskCfg::zero())).collect();
        let data: Vec<u8> = (0..26u8).collect();
        for (node, local, range) in s.split_range(0, data.len()) {
            disks[node].write_at("out", local, &data[range]).unwrap();
        }
        let got = s.assemble(&disks, "out", data.len() as u64).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn assemble_detects_missing_data() {
        let s = Striping::new(2, 4);
        let disks: Vec<_> = (0..2).map(|_| SimDisk::new(DiskCfg::zero())).collect();
        disks[0].write_at("out", 0, &[1, 2, 3, 4]).unwrap();
        // Node 1's stripe was never written.
        assert!(s.assemble(&disks, "out", 8).is_err());
    }
}
