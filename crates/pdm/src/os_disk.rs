//! Real-file disk backend.
//!
//! An [`OsDisk`] stores each named file as a regular file under a
//! configurable root directory and serves reads and writes with positioned
//! kernel I/O (`pread`/`pwrite` via [`std::os::unix::fs::FileExt`]), so no
//! seat-of-the-pants seek bookkeeping is needed and concurrent stage
//! threads can issue I/O against one file without a shared cursor.
//!
//! Unlike [`SimDisk`](crate::SimDisk) there is no sleep-based cost model:
//! the operation's cost *is* the kernel I/O path (page cache, readahead,
//! writeback, the device).  Busy time and the per-op latency histograms
//! record real elapsed wall time.  Semantics match `SimDisk`: writes past
//! EOF leave a hole that reads back zero-filled (the file grows sparse),
//! `read_at` past EOF is [`PdmError::OutOfRange`], `load`/`snapshot` are
//! cost-free provisioning hooks.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use fg_core::metrics::MetricsRegistry;
use parking_lot::{Mutex, RwLock};

use crate::disk::{Counters, Dir, Disk, DiskMetrics, DiskStats, FailGate};
use crate::PdmError;

/// An open backing file plus its logical length.
///
/// The length mutex serializes appends (reserve an offset, then write) and
/// lets `read_at` range-check without a `stat` round trip.  Positioned
/// writes themselves need no lock: `pwrite` is atomic with respect to
/// offset.
struct Entry {
    file: File,
    len: Mutex<u64>,
}

/// A disk backed by real files under a root directory.
pub struct OsDisk {
    root: PathBuf,
    files: RwLock<HashMap<String, Arc<Entry>>>,
    counters: Counters,
    fail: FailGate,
    metrics: Option<DiskMetrics>,
    /// Write-through mode: `sync_data` after every write, so each write's
    /// cost includes the device (not just the page cache).
    durable: bool,
}

fn io_err(op: &str, name: &str, e: std::io::Error) -> PdmError {
    PdmError::Io(format!("{op} {name}: {e}"))
}

/// File names are flat: path separators and `..` would escape the root.
fn check_name(name: &str) -> Result<(), PdmError> {
    if name.is_empty() || name == "." || name == ".." || name.contains(['/', '\\']) {
        return Err(PdmError::Io(format!("invalid file name: {name:?}")));
    }
    Ok(())
}

impl OsDisk {
    /// Open (creating it if needed) a disk rooted at `root`.  Existing
    /// files under `root` remain visible — delete them first for a clean
    /// slate.
    pub fn new(root: impl Into<PathBuf>) -> Result<Arc<Self>, PdmError> {
        Self::build(root.into(), None, false)
    }

    /// Like [`OsDisk::new`], but every `write_at`/`append` is followed by
    /// `sync_data`, so a completed write has reached the device rather
    /// than the page cache.  This is the write-through durability mode —
    /// each write pays real device latency, which is exactly the latency
    /// an [`IoScheduler`](crate::IoScheduler)'s write-behind queue hides.
    pub fn durable(root: impl Into<PathBuf>) -> Result<Arc<Self>, PdmError> {
        Self::build(root.into(), None, true)
    }

    /// Like [`OsDisk::new`], with per-operation latency histograms and
    /// byte counters recorded into `registry` under `disk/{label}/…`.
    pub fn with_metrics(
        root: impl Into<PathBuf>,
        registry: &MetricsRegistry,
        label: &str,
    ) -> Result<Arc<Self>, PdmError> {
        Self::build(root.into(), Some(DiskMetrics::new(registry, label)), false)
    }

    fn build(
        root: PathBuf,
        metrics: Option<DiskMetrics>,
        durable: bool,
    ) -> Result<Arc<Self>, PdmError> {
        fs::create_dir_all(&root)
            .map_err(|e| PdmError::Io(format!("create {}: {e}", root.display())))?;
        Ok(Arc::new(OsDisk {
            root,
            files: RwLock::new(HashMap::new()),
            counters: Counters::default(),
            fail: FailGate::default(),
            metrics,
            durable,
        }))
    }

    /// The directory this disk stores its files under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Inject a failure after `ops` more operations (see
    /// [`SimDisk::fail_after_ops`](crate::SimDisk::fail_after_ops)).
    pub fn fail_after_ops(&self, ops: u64) {
        self.fail.arm(ops);
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// The cached entry for `name`, opening the backing file from the
    /// filesystem if it exists there but has not been touched through this
    /// handle yet.
    fn lookup(&self, name: &str) -> Result<Option<Arc<Entry>>, PdmError> {
        if let Some(e) = self.files.read().get(name) {
            return Ok(Some(Arc::clone(e)));
        }
        check_name(name)?;
        let path = self.path_of(name);
        match fs::metadata(&path) {
            Ok(md) if md.is_file() => {}
            _ => return Ok(None),
        }
        self.open_entry(name)
    }

    /// The cached entry for `name`, creating the backing file if needed.
    fn lookup_or_create(&self, name: &str) -> Result<Arc<Entry>, PdmError> {
        if let Some(e) = self.files.read().get(name) {
            return Ok(Arc::clone(e));
        }
        check_name(name)?;
        Ok(self.open_entry(name)?.expect("created"))
    }

    fn open_entry(&self, name: &str) -> Result<Option<Arc<Entry>>, PdmError> {
        let mut files = self.files.write();
        if let Some(e) = files.get(name) {
            return Ok(Some(Arc::clone(e)));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.path_of(name))
            .map_err(|e| io_err("open", name, e))?;
        let len = file.metadata().map_err(|e| io_err("stat", name, e))?.len();
        let entry = Arc::new(Entry {
            file,
            len: Mutex::new(len),
        });
        files.insert(name.to_string(), Arc::clone(&entry));
        Ok(Some(entry))
    }

    /// Fold one completed operation into counters and metrics: busy time
    /// is real elapsed wall time.
    fn account(&self, dir: Dir, bytes: usize, start: Instant) {
        let elapsed = start.elapsed();
        self.counters.busy_nanos.fetch_add(
            elapsed.as_nanos() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        let ord = std::sync::atomic::Ordering::Relaxed;
        match dir {
            Dir::Read => {
                self.counters.bytes_read.fetch_add(bytes as u64, ord);
                self.counters.read_ops.fetch_add(1, ord);
            }
            Dir::Write => {
                self.counters.bytes_written.fetch_add(bytes as u64, ord);
                self.counters.write_ops.fetch_add(1, ord);
            }
        }
        if let Some(m) = &self.metrics {
            m.record(dir, bytes, elapsed);
        }
    }
}

impl Disk for OsDisk {
    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), PdmError> {
        self.fail.check()?;
        let entry = self.lookup_or_create(name)?;
        let t0 = Instant::now();
        entry
            .file
            .write_all_at(data, offset)
            .map_err(|e| io_err("write", name, e))?;
        if self.durable {
            entry
                .file
                .sync_data()
                .map_err(|e| io_err("sync", name, e))?;
        }
        {
            let mut len = entry.len.lock();
            *len = (*len).max(offset + data.len() as u64);
        }
        self.account(Dir::Write, data.len(), t0);
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PdmError> {
        self.fail.check()?;
        let entry = self.lookup_or_create(name)?;
        let t0 = Instant::now();
        let offset = {
            // Hold the length lock across the write so concurrent appends
            // get disjoint regions.
            let mut len = entry.len.lock();
            let offset = *len;
            entry
                .file
                .write_all_at(data, offset)
                .map_err(|e| io_err("append", name, e))?;
            if self.durable {
                entry
                    .file
                    .sync_data()
                    .map_err(|e| io_err("sync", name, e))?;
            }
            *len = offset + data.len() as u64;
            offset
        };
        self.account(Dir::Write, data.len(), t0);
        Ok(offset)
    }

    fn read_at(&self, name: &str, offset: u64, out: &mut [u8]) -> Result<(), PdmError> {
        self.fail.check()?;
        let entry = self
            .lookup(name)?
            .ok_or_else(|| PdmError::NoSuchFile(name.to_string()))?;
        let file_len = *entry.len.lock();
        if offset + out.len() as u64 > file_len {
            return Err(PdmError::OutOfRange {
                file: name.to_string(),
                offset,
                len: out.len(),
                file_len,
            });
        }
        let t0 = Instant::now();
        entry
            .file
            .read_exact_at(out, offset)
            .map_err(|e| io_err("read", name, e))?;
        self.account(Dir::Read, out.len(), t0);
        Ok(())
    }

    fn read_up_to(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>, PdmError> {
        self.fail.check()?;
        let entry = self
            .lookup(name)?
            .ok_or_else(|| PdmError::NoSuchFile(name.to_string()))?;
        let file_len = *entry.len.lock();
        let take = file_len.saturating_sub(offset).min(len as u64) as usize;
        let mut out = vec![0u8; take];
        if take > 0 {
            let t0 = Instant::now();
            entry
                .file
                .read_exact_at(&mut out, offset)
                .map_err(|e| io_err("read", name, e))?;
            self.account(Dir::Read, take, t0);
        } else {
            self.account(Dir::Read, 0, Instant::now());
        }
        Ok(out)
    }

    /// # Panics
    ///
    /// Provisioning is infallible in the trait contract; an I/O error
    /// while installing the file (disk full, bad root) aborts with a
    /// message rather than silently corrupting experiment input.
    fn load(&self, name: &str, bytes: Vec<u8>) {
        let entry = self
            .lookup_or_create(name)
            .expect("load: open backing file");
        let mut len = entry.len.lock();
        entry
            .file
            .write_all_at(&bytes, 0)
            .expect("load: write backing file");
        entry
            .file
            .set_len(bytes.len() as u64)
            .expect("load: truncate backing file");
        *len = bytes.len() as u64;
    }

    fn snapshot(&self, name: &str) -> Option<Vec<u8>> {
        let entry = self.lookup(name).ok()??;
        let len = *entry.len.lock();
        let mut out = vec![0u8; len as usize];
        entry.file.read_exact_at(&mut out, 0).ok()?;
        Some(out)
    }

    fn len(&self, name: &str) -> Option<u64> {
        let entry = self.lookup(name).ok()??;
        let len = *entry.len.lock();
        Some(len)
    }

    fn exists(&self, name: &str) -> bool {
        self.lookup(name).map(|e| e.is_some()).unwrap_or(false)
    }

    fn delete(&self, name: &str) -> bool {
        let cached = self.files.write().remove(name).is_some();
        let removed = fs::remove_file(self.path_of(name)).is_ok();
        cached || removed
    }

    fn list(&self) -> Vec<String> {
        let Ok(dir) = fs::read_dir(&self.root) else {
            return Vec::new();
        };
        dir.filter_map(|e| e.ok())
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .filter_map(|e| e.file_name().into_string().ok())
            .collect()
    }

    fn stats(&self) -> DiskStats {
        self.counters.snapshot()
    }

    fn reset_stats(&self) {
        self.counters.reset()
    }

    fn fail_after_ops(&self, ops: u64) {
        OsDisk::fail_after_ops(self, ops)
    }

    /// Durability barrier: force completed writes down to the device.
    fn flush(&self) -> Result<(), PdmError> {
        let entries: Vec<(String, Arc<Entry>)> = self
            .files
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        for (name, entry) in entries {
            entry
                .file
                .sync_data()
                .map_err(|e| io_err("sync", &name, e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScratchDir;

    fn scratch_disk() -> (ScratchDir, Arc<OsDisk>) {
        let dir = ScratchDir::new("osdisk").expect("scratch dir");
        let disk = OsDisk::new(dir.path()).expect("os disk");
        (dir, disk)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (_dir, d) = scratch_disk();
        d.write_at("f", 0, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        d.read_at("f", 0, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn write_at_offset_grows_zero_filled() {
        let (_dir, d) = scratch_disk();
        d.write_at("f", 4, &[9]).unwrap();
        assert_eq!(d.len("f"), Some(5));
        let mut out = [1u8; 5];
        d.read_at("f", 0, &mut out).unwrap();
        assert_eq!(out, [0, 0, 0, 0, 9]);
    }

    #[test]
    fn append_returns_offsets() {
        let (_dir, d) = scratch_disk();
        assert_eq!(d.append("f", &[1, 2]).unwrap(), 0);
        assert_eq!(d.append("f", &[3]).unwrap(), 2);
        assert_eq!(d.len("f"), Some(3));
    }

    #[test]
    fn read_past_end_and_missing_file_fail() {
        let (_dir, d) = scratch_disk();
        let mut out = [0u8; 2];
        assert!(matches!(
            d.read_at("nope", 0, &mut out),
            Err(PdmError::NoSuchFile(_))
        ));
        d.write_at("f", 0, &[1]).unwrap();
        assert!(matches!(
            d.read_at("f", 0, &mut out),
            Err(PdmError::OutOfRange { .. })
        ));
    }

    #[test]
    fn read_up_to_short_reads() {
        let (_dir, d) = scratch_disk();
        d.write_at("f", 0, &[1, 2, 3]).unwrap();
        assert_eq!(d.read_up_to("f", 2, 10).unwrap(), vec![3]);
        assert_eq!(d.read_up_to("f", 5, 10).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn load_snapshot_cost_free_and_truncating() {
        let (_dir, d) = scratch_disk();
        d.load("f", vec![1; 100]);
        d.load("f", vec![2; 10]); // shrinks: stale tail must not survive
        assert_eq!(d.snapshot("f").unwrap(), vec![2; 10]);
        assert_eq!(d.stats(), DiskStats::default());
    }

    #[test]
    fn delete_list_exists() {
        let (_dir, d) = scratch_disk();
        d.write_at("a", 0, &[1]).unwrap();
        d.write_at("b", 0, &[2]).unwrap();
        let mut names = d.list();
        names.sort();
        assert_eq!(names, ["a", "b"]);
        assert!(d.exists("a"));
        assert!(d.delete("a"));
        assert!(!d.delete("a"));
        assert!(!d.exists("a"));
        assert_eq!(d.list(), ["b"]);
    }

    #[test]
    fn files_persist_across_handles() {
        let dir = ScratchDir::new("osdisk-reopen").expect("scratch dir");
        {
            let d = OsDisk::new(dir.path()).expect("os disk");
            d.write_at("f", 0, b"hello").unwrap();
        }
        let d = OsDisk::new(dir.path()).expect("os disk");
        assert_eq!(d.snapshot("f").unwrap(), b"hello");
        assert_eq!(d.len("f"), Some(5));
    }

    #[test]
    fn rejects_escaping_names() {
        let (_dir, d) = scratch_disk();
        assert!(matches!(d.write_at("a/b", 0, &[1]), Err(PdmError::Io(_))));
        assert!(matches!(d.write_at("..", 0, &[1]), Err(PdmError::Io(_))));
    }

    #[test]
    fn failure_injection_applies() {
        let (_dir, d) = scratch_disk();
        d.fail_after_ops(1);
        d.write_at("f", 0, &[1]).unwrap();
        assert_eq!(d.write_at("f", 0, &[2]), Err(PdmError::DiskFailed));
        // Provisioning hooks stay out-of-band.
        d.load("g", vec![7]);
        assert_eq!(d.snapshot("g").unwrap(), vec![7]);
    }

    #[test]
    fn stats_record_real_io() {
        let (_dir, d) = scratch_disk();
        d.write_at("f", 0, &[0; 100]).unwrap();
        let mut out = [0u8; 40];
        d.read_at("f", 0, &mut out).unwrap();
        let s = d.stats();
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_read, 40);
        assert_eq!(s.write_ops, 1);
        assert_eq!(s.read_ops, 1);
    }
}
