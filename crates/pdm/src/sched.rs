//! The I/O scheduler: read-ahead and write-behind on a dedicated thread.
//!
//! An [`IoScheduler`] wraps any [`Disk`] backend and earns overlap the way
//! an operating system does, but under the pipeline's control:
//!
//! * **Read-ahead** — every `read_at` predicts the next sequential reads
//!   (`offset + k·len` for `k = 1..=depth`) and queues them for the disk's
//!   I/O thread, which fetches into spare heap buffers while the stage
//!   consumes the current round's data.  A later read of a predicted
//!   offset is served from the prefetched copy (a *hit*); anything else
//!   falls through to a synchronous backend read (a *miss*).
//! * **Write-behind** — `write_at`/`append` enqueue an owned copy and
//!   return immediately, so the stage's buffer recycles sink→source
//!   without waiting on the backend.  The I/O thread drains the queue in
//!   arrival order, *coalescing* runs of writes to adjacent offsets of one
//!   file into single backend writes (the chunk framing in the sort's
//!   write stages produces exactly such runs).  The first failed deferred
//!   write is remembered and surfaces at the next [`flush`](Disk::flush)
//!   — the pass-end barrier every pipeline runs.
//!
//! Consistency: a read (or `len`/`snapshot`/`delete`/`load`) of a file
//! with queued writes first waits for those writes to drain, and a write
//! invalidates any prefetched data for its file, so the scheduler is
//! transparent — callers see exactly the backend's semantics, minus the
//! waiting.
//!
//! With a metrics registry attached, the scheduler reports
//! `disk/{label}/prefetch_hit`, `disk/{label}/prefetch_miss`, and the
//! `disk/{label}/writeback_queue_depth` gauge, which the bottleneck
//! analyzer folds into a prefetch hit rate.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use fg_core::metrics::{Counter, Gauge, MetricsRegistry};
use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::disk::{Disk, DiskRef, DiskStats};
use crate::PdmError;

/// A prefetch slot is identified by its file and starting offset.
type Key = (String, u64);

struct WriteOp {
    file: String,
    offset: u64,
    data: Vec<u8>,
}

struct FetchReq {
    file: String,
    offset: u64,
    len: usize,
}

/// Scheduler metric handles (see module docs for names).
struct SchedMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    queue_depth: Arc<Gauge>,
}

struct State {
    /// Deferred writes in arrival order.
    writes: VecDeque<WriteOp>,
    /// Queued + in-flight write count per file; a file absent here has no
    /// pending writes and is safe to read.
    file_pending: HashMap<String, usize>,
    /// Writes handed to the backend but not yet completed.
    inflight_writes: usize,
    /// Prefetch requests not yet started, with a mirror set for O(1)
    /// membership tests.
    fetch_queue: VecDeque<FetchReq>,
    queued: HashSet<Key>,
    /// The prefetch the I/O thread is performing right now, if any.
    in_flight_fetch: Option<Key>,
    /// In-flight prefetches invalidated by a write; their results are
    /// dropped on completion.
    poisoned: HashSet<Key>,
    /// Completed prefetches awaiting their read.
    fetched: HashMap<Key, Vec<u8>>,
    /// Logical file lengths (backend length + deferred writes applied),
    /// so `append` can hand out offsets without waiting for the queue.
    lens: HashMap<String, u64>,
    /// First deferred-write error; surfaced at `flush`.
    first_error: Option<PdmError>,
    shutdown: bool,
}

struct Shared {
    inner: DiskRef,
    state: Mutex<State>,
    /// Wakes the I/O thread (new work or shutdown).
    work_cv: Condvar,
    /// Wakes clients (writes drained, prefetch completed).
    idle_cv: Condvar,
    metrics: Option<SchedMetrics>,
    /// Flight-recorder ring for prefetch hit/miss spans (see
    /// [`IoScheduler::attach_trace`]); absent on untraced runs.
    ring: Mutex<Option<Arc<fg_core::SpanRing>>>,
    /// Bound on stored prefetches; surplus results are dropped.
    fetched_cap: usize,
}

impl Shared {
    fn set_queue_gauge(&self, st: &State) {
        if let Some(m) = &self.metrics {
            m.queue_depth
                .set((st.writes.len() + st.inflight_writes) as u64);
        }
    }

    fn logical_len(&self, st: &mut State, name: &str) -> u64 {
        if let Some(l) = st.lens.get(name) {
            return *l;
        }
        let l = self.inner.len(name).unwrap_or(0);
        st.lens.insert(name.to_string(), l);
        l
    }

    /// Drop every prefetch (stored, queued, or in flight) for `name`.
    fn invalidate_prefetch(&self, st: &mut State, name: &str) {
        st.fetched.retain(|k, _| k.0 != name);
        if !st.queued.is_empty() {
            st.fetch_queue.retain(|r| r.file != name);
            st.queued.retain(|k| k.0 != name);
        }
        if let Some(k) = &st.in_flight_fetch {
            if k.0 == name {
                st.poisoned.insert(k.clone());
            }
        }
    }

    /// Wait until `name` has no queued or in-flight writes.
    fn wait_file_drained<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        name: &str,
    ) -> MutexGuard<'a, State> {
        while st.file_pending.contains_key(name) {
            self.idle_cv.wait(&mut st);
        }
        st
    }

    /// Wait until no writes are queued or in flight at all.
    fn wait_all_drained<'a>(&'a self, mut st: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        while !st.writes.is_empty() || st.inflight_writes > 0 {
            self.idle_cv.wait(&mut st);
        }
        st
    }
}

/// Merge consecutive writes to adjacent offsets of the same file into
/// single backend writes, preserving arrival order (so overlapping writes
/// still land last-writer-wins).
fn coalesce(ops: Vec<WriteOp>) -> Vec<WriteOp> {
    let mut out: Vec<WriteOp> = Vec::with_capacity(ops.len());
    for op in ops {
        if let Some(prev) = out.last_mut() {
            if prev.file == op.file && prev.offset + prev.data.len() as u64 == op.offset {
                prev.data.extend_from_slice(&op.data);
                continue;
            }
        }
        out.push(op);
    }
    out
}

/// The largest read-ahead depth a scheduler will accept, from
/// construction or a later [`IoScheduler::set_depth`].  Bounds the
/// prefetch store so a runaway controller cannot buffer a whole file.
pub const MAX_IO_DEPTH: usize = 64;

/// A [`Disk`] wrapper that overlaps its backend's I/O with the caller:
/// read-ahead prefetching and coalescing write-behind on a dedicated I/O
/// thread per disk.  See the module docs for the full contract.
pub struct IoScheduler {
    shared: Arc<Shared>,
    /// How many sequential blocks ahead of each read stream to prefetch.
    /// Atomic so a live controller can retune it mid-run
    /// ([`set_depth`](IoScheduler::set_depth)).
    depth: AtomicUsize,
    /// Disk label for decisions and metrics (`d0`, …; `io` when unnamed).
    label: String,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl IoScheduler {
    /// Wrap `inner`, prefetching up to `depth` blocks ahead of every
    /// sequential read stream.  Fails with [`PdmError::Config`] if `depth`
    /// is zero or above [`MAX_IO_DEPTH`] — callers who want no scheduling
    /// should use the backend directly.
    pub fn new(inner: DiskRef, depth: usize) -> Result<Arc<Self>, PdmError> {
        Self::build(inner, depth, None, "io")
    }

    /// Like [`IoScheduler::new`], recording prefetch hit/miss counters and
    /// the write-behind queue-depth gauge into `registry` under
    /// `disk/{label}/…`.
    pub fn with_metrics(
        inner: DiskRef,
        depth: usize,
        registry: &MetricsRegistry,
        label: &str,
    ) -> Result<Arc<Self>, PdmError> {
        let metrics = SchedMetrics {
            hits: registry.counter(&format!("disk/{label}/prefetch_hit")),
            misses: registry.counter(&format!("disk/{label}/prefetch_miss")),
            queue_depth: registry.gauge(&format!("disk/{label}/writeback_queue_depth")),
        };
        Self::build(inner, depth, Some(metrics), label)
    }

    fn build(
        inner: DiskRef,
        depth: usize,
        metrics: Option<SchedMetrics>,
        label: &str,
    ) -> Result<Arc<Self>, PdmError> {
        if !(1..=MAX_IO_DEPTH).contains(&depth) {
            return Err(PdmError::Config(format!(
                "io scheduler depth must be in 1..={MAX_IO_DEPTH}, got {depth} \
                 (use the backend directly for unscheduled I/O)"
            )));
        }
        let shared = Arc::new(Shared {
            inner,
            state: Mutex::new(State {
                writes: VecDeque::new(),
                file_pending: HashMap::new(),
                inflight_writes: 0,
                fetch_queue: VecDeque::new(),
                queued: HashSet::new(),
                in_flight_fetch: None,
                poisoned: HashSet::new(),
                fetched: HashMap::new(),
                lens: HashMap::new(),
                first_error: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            metrics,
            ring: Mutex::new(None),
            // Sized for the ceiling, not the starting depth, so a live
            // depth raise never outgrows the store.
            fetched_cap: 8 * MAX_IO_DEPTH + 32,
        });
        let worker_shared = Arc::clone(&shared);
        let profile_name = format!("io/{label}");
        let worker = std::thread::Builder::new()
            .name("fg-io-sched".into())
            .spawn(move || {
                // Register with the resource profiler so read-ahead CPU
                // shows up as its own row, attributed to this scheduler.
                let _reg = fg_core::profile::register_current_thread(profile_name);
                worker_loop(&worker_shared)
            })
            .expect("spawn io scheduler thread");
        Ok(Arc::new(IoScheduler {
            shared,
            depth: AtomicUsize::new(depth),
            label: label.to_string(),
            worker: Mutex::new(Some(worker)),
        }))
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &DiskRef {
        &self.shared.inner
    }

    /// Current read-ahead depth.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Retune the read-ahead depth mid-run, clamped to
    /// `1..=`[`MAX_IO_DEPTH`].  Takes effect on the next read; already
    /// queued prefetches are unaffected.  Returns the applied depth.
    pub fn set_depth(&self, depth: usize) -> usize {
        let d = depth.clamp(1, MAX_IO_DEPTH);
        self.depth.store(d, Ordering::Relaxed);
        d
    }

    /// The scheduler's disk label (`d0`, …; `io` when constructed without
    /// metrics).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Register this scheduler with a flight recorder: every `read_at`
    /// logs a `prefetch-hit` or `prefetch-miss` span (on the
    /// [`IO_PIPELINE`](fg_core::trace::IO_PIPELINE) sentinel track, round
    /// = block index) into a ring named `io/{label}`, so traces show
    /// which reads went cold to the backend and when.
    pub fn attach_trace(&self, sink: &fg_core::TraceSink, label: &str) {
        *self.shared.ring.lock() = Some(sink.register_thread(format!("io/{label}")));
    }

    /// Queue read-ahead for the blocks a sequential reader at
    /// (`name`, `offset`, `len`) will want next.
    fn schedule_read_ahead(&self, name: &str, offset: u64, len: usize) {
        if len == 0 {
            return;
        }
        let sh = &self.shared;
        let mut st = sh.state.lock();
        let flen = sh.logical_len(&mut st, name);
        let mut notify = false;
        for k in 1..=self.depth() {
            let off = offset + (k * len) as u64;
            // Only whole blocks: a short tail read would mismatch the
            // consumer's exact-length request anyway.
            if off + len as u64 > flen {
                break;
            }
            let key = (name.to_string(), off);
            if st.fetched.contains_key(&key)
                || st.queued.contains(&key)
                || st.in_flight_fetch.as_ref() == Some(&key)
            {
                continue;
            }
            st.queued.insert(key);
            st.fetch_queue.push_back(FetchReq {
                file: name.to_string(),
                offset: off,
                len,
            });
            notify = true;
        }
        if notify {
            sh.work_cv.notify_one();
        }
    }
}

fn worker_loop(sh: &Shared) {
    enum Job {
        Writes(Vec<WriteOp>),
        Fetch(FetchReq),
        Exit,
    }
    loop {
        let job = {
            let mut st = sh.state.lock();
            loop {
                if !st.writes.is_empty() {
                    // Writes outrank prefetches: readers of these files are
                    // barred until they drain, while prefetches are
                    // speculative.
                    let batch: Vec<WriteOp> = st.writes.drain(..).collect();
                    st.inflight_writes = batch.len();
                    break Job::Writes(batch);
                }
                if let Some(req) = st.fetch_queue.pop_front() {
                    let key = (req.file.clone(), req.offset);
                    st.queued.remove(&key);
                    st.in_flight_fetch = Some(key);
                    break Job::Fetch(req);
                }
                if st.shutdown {
                    break Job::Exit;
                }
                sh.work_cv.wait(&mut st);
            }
        };
        match job {
            Job::Exit => return,
            Job::Writes(batch) => {
                let files: Vec<String> = batch.iter().map(|op| op.file.clone()).collect();
                let mut err = None;
                for op in coalesce(batch) {
                    if let Err(e) = sh.inner.write_at(&op.file, op.offset, &op.data) {
                        if err.is_none() {
                            err = Some(e);
                        }
                    }
                }
                let mut st = sh.state.lock();
                for f in files {
                    if let Some(n) = st.file_pending.get_mut(&f) {
                        *n -= 1;
                        if *n == 0 {
                            st.file_pending.remove(&f);
                        }
                    }
                }
                st.inflight_writes = 0;
                if let Some(e) = err {
                    if st.first_error.is_none() {
                        st.first_error = Some(e);
                    }
                }
                sh.set_queue_gauge(&st);
                sh.idle_cv.notify_all();
            }
            Job::Fetch(req) => {
                let res = sh.inner.read_up_to(&req.file, req.offset, req.len);
                let mut st = sh.state.lock();
                let key = (req.file, req.offset);
                let poisoned = st.poisoned.remove(&key);
                if !poisoned {
                    if let Ok(data) = res {
                        if st.fetched.len() < sh.fetched_cap {
                            st.fetched.insert(key.clone(), data);
                        }
                    }
                    // A failed prefetch is dropped: the consumer's own read
                    // takes the synchronous path and surfaces the error.
                }
                st.in_flight_fetch = None;
                sh.idle_cv.notify_all();
            }
        }
    }
}

impl Disk for IoScheduler {
    fn depth_actuator(self: Arc<Self>) -> Option<Arc<dyn fg_core::controller::DepthActuator>> {
        Some(self)
    }

    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), PdmError> {
        let sh = &self.shared;
        let mut st = sh.state.lock();
        sh.invalidate_prefetch(&mut st, name);
        let flen = sh.logical_len(&mut st, name);
        st.lens
            .insert(name.to_string(), flen.max(offset + data.len() as u64));
        st.writes.push_back(WriteOp {
            file: name.to_string(),
            offset,
            data: data.to_vec(),
        });
        *st.file_pending.entry(name.to_string()).or_insert(0) += 1;
        sh.set_queue_gauge(&st);
        sh.work_cv.notify_one();
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PdmError> {
        let sh = &self.shared;
        let mut st = sh.state.lock();
        sh.invalidate_prefetch(&mut st, name);
        let offset = sh.logical_len(&mut st, name);
        st.lens.insert(name.to_string(), offset + data.len() as u64);
        st.writes.push_back(WriteOp {
            file: name.to_string(),
            offset,
            data: data.to_vec(),
        });
        *st.file_pending.entry(name.to_string()).or_insert(0) += 1;
        sh.set_queue_gauge(&st);
        sh.work_cv.notify_one();
        Ok(offset)
    }

    fn read_at(&self, name: &str, offset: u64, out: &mut [u8]) -> Result<(), PdmError> {
        let sh = &self.shared;
        let ring = sh.ring.lock().clone();
        let t0 = ring.as_ref().map(|_| std::time::Instant::now());
        let key = (name.to_string(), offset);
        let mut hit = false;
        {
            let st = sh.state.lock();
            let mut st = sh.wait_file_drained(st, name);
            // A queued-but-unstarted prefetch for this exact block is
            // stolen: the synchronous read below beats waiting behind the
            // queue.
            if st.queued.remove(&key) {
                st.fetch_queue
                    .retain(|r| !(r.file == name && r.offset == offset));
            }
            while st.in_flight_fetch.as_ref() == Some(&key) {
                sh.idle_cv.wait(&mut st);
            }
            if let Some(data) = st.fetched.remove(&key) {
                if data.len() == out.len() {
                    out.copy_from_slice(&data);
                    hit = true;
                }
            }
        }
        let read = if hit {
            if let Some(m) = &sh.metrics {
                m.hits.inc();
            }
            Ok(())
        } else {
            let res = sh.inner.read_at(name, offset, out);
            if res.is_ok() {
                if let Some(m) = &sh.metrics {
                    m.misses.inc();
                }
            }
            res
        };
        if let (Some(r), Some(t0)) = (&ring, t0) {
            let kind = if hit {
                fg_core::TraceKind::PrefetchHit
            } else {
                fg_core::TraceKind::PrefetchMiss
            };
            let block = offset / out.len().max(1) as u64;
            r.record(
                kind,
                fg_core::trace::IO_PIPELINE,
                block,
                0,
                r.ns_of(t0),
                r.now_ns(),
            );
        }
        read?;
        self.schedule_read_ahead(name, offset, out.len());
        Ok(())
    }

    fn read_up_to(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>, PdmError> {
        let sh = &self.shared;
        {
            let st = sh.state.lock();
            drop(sh.wait_file_drained(st, name));
        }
        sh.inner.read_up_to(name, offset, len)
    }

    fn load(&self, name: &str, bytes: Vec<u8>) {
        let sh = &self.shared;
        {
            let st = sh.state.lock();
            let mut st = sh.wait_file_drained(st, name);
            sh.invalidate_prefetch(&mut st, name);
            st.lens.remove(name);
        }
        sh.inner.load(name, bytes)
    }

    fn snapshot(&self, name: &str) -> Option<Vec<u8>> {
        let sh = &self.shared;
        {
            let st = sh.state.lock();
            drop(sh.wait_file_drained(st, name));
        }
        sh.inner.snapshot(name)
    }

    fn len(&self, name: &str) -> Option<u64> {
        let sh = &self.shared;
        {
            let st = sh.state.lock();
            drop(sh.wait_file_drained(st, name));
        }
        sh.inner.len(name)
    }

    fn exists(&self, name: &str) -> bool {
        let sh = &self.shared;
        {
            let st = sh.state.lock();
            drop(sh.wait_file_drained(st, name));
        }
        sh.inner.exists(name)
    }

    fn delete(&self, name: &str) -> bool {
        let sh = &self.shared;
        {
            let st = sh.state.lock();
            let mut st = sh.wait_file_drained(st, name);
            sh.invalidate_prefetch(&mut st, name);
            st.lens.remove(name);
        }
        sh.inner.delete(name)
    }

    fn list(&self) -> Vec<String> {
        let sh = &self.shared;
        {
            let st = sh.state.lock();
            drop(sh.wait_all_drained(st));
        }
        sh.inner.list()
    }

    fn stats(&self) -> DiskStats {
        self.shared.inner.stats()
    }

    fn reset_stats(&self) {
        self.shared.inner.reset_stats()
    }

    fn fail_after_ops(&self, ops: u64) {
        self.shared.inner.fail_after_ops(ops)
    }

    fn flush(&self) -> Result<(), PdmError> {
        let sh = &self.shared;
        let first_error = {
            let st = sh.state.lock();
            let mut st = sh.wait_all_drained(st);
            st.first_error.take()
        };
        match first_error {
            Some(e) => Err(e),
            None => sh.inner.flush(),
        }
    }
}

impl fg_core::controller::DepthActuator for IoScheduler {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn io_depth(&self) -> usize {
        self.depth()
    }

    fn set_io_depth(&self, depth: usize) -> usize {
        self.set_depth(depth)
    }
}

impl Drop for IoScheduler {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        if let Some(h) = self.worker.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskCfg, SimDisk};

    fn sched(depth: usize) -> (Arc<SimDisk>, Arc<IoScheduler>) {
        let inner = SimDisk::new(DiskCfg::zero());
        let s = IoScheduler::new(inner.clone() as DiskRef, depth).unwrap();
        (inner, s)
    }

    #[test]
    fn zero_or_oversized_depth_is_a_config_error() {
        let inner = SimDisk::new(DiskCfg::zero());
        for bad in [0, MAX_IO_DEPTH + 1] {
            match IoScheduler::new(inner.clone() as DiskRef, bad) {
                Err(PdmError::Config(msg)) => assert!(msg.contains("depth"), "{msg}"),
                Err(other) => panic!("expected Config error for depth {bad}, got {other:?}"),
                Ok(_) => panic!("expected Config error for depth {bad}, got Ok"),
            }
        }
    }

    #[test]
    fn depth_is_retunable_and_clamped() {
        let (_inner, s) = sched(2);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.set_depth(8), 8);
        assert_eq!(s.depth(), 8);
        assert_eq!(s.set_depth(0), 1);
        assert_eq!(s.set_depth(usize::MAX), MAX_IO_DEPTH);
    }

    #[test]
    fn raised_depth_prefetches_further_ahead() {
        use fg_core::controller::DepthActuator;
        let reg = MetricsRegistry::new();
        let inner = SimDisk::new(DiskCfg::zero());
        let s = IoScheduler::with_metrics(inner as DiskRef, 1, &reg, "d7").unwrap();
        assert_eq!(DepthActuator::label(&*s), "d7");
        s.load("f", vec![0u8; 1024]);
        let mut buf = [0u8; 64];
        s.read_at("f", 0, &mut buf).unwrap();
        s.set_io_depth(4);
        assert_eq!(s.io_depth(), 4);
        // The retuned depth applies to the very next read's predictions.
        std::thread::sleep(std::time::Duration::from_millis(5));
        s.read_at("f", 64, &mut buf).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        for block in 2..6u64 {
            s.read_at("f", block * 64, &mut buf).unwrap();
        }
        let snap = reg.snapshot();
        let hits = snap.counter("disk/d7/prefetch_hit").unwrap_or(0);
        assert!(hits >= 4, "hits={hits}");
    }

    #[test]
    fn coalesce_merges_adjacent_runs() {
        let op = |file: &str, offset: u64, data: &[u8]| WriteOp {
            file: file.into(),
            offset,
            data: data.to_vec(),
        };
        let out = coalesce(vec![
            op("a", 0, &[1, 2]),
            op("a", 2, &[3]),
            op("a", 10, &[4]),
            op("b", 11, &[5]),
            op("a", 11, &[6]),
        ]);
        let got: Vec<(String, u64, Vec<u8>)> = out
            .into_iter()
            .map(|o| (o.file, o.offset, o.data))
            .collect();
        assert_eq!(
            got,
            vec![
                ("a".into(), 0, vec![1, 2, 3]),
                ("a".into(), 10, vec![4]),
                ("b".into(), 11, vec![5]),
                ("a".into(), 11, vec![6]),
            ]
        );
    }

    #[test]
    fn read_after_write_sees_data_without_flush() {
        let (_inner, s) = sched(2);
        s.write_at("f", 0, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        s.read_at("f", 0, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn sequential_reads_hit_the_prefetcher() {
        let reg = MetricsRegistry::new();
        let inner = SimDisk::new(DiskCfg::zero());
        let s = IoScheduler::with_metrics(inner as DiskRef, 2, &reg, "d0").unwrap();
        let data: Vec<u8> = (0..=255).collect();
        s.load("f", data.clone());
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        for block in 0..4 {
            s.read_at("f", block * 64, &mut buf).unwrap();
            got.extend_from_slice(&buf);
            // Simulate the stage's compute on the block: the gap the
            // prefetcher needs to get ahead (a back-to-back reader steals
            // its own predictions and stays on the synchronous path).
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(got, data);
        let snap = reg.snapshot();
        let hits = snap.counter("disk/d0/prefetch_hit").unwrap_or(0);
        let misses = snap.counter("disk/d0/prefetch_miss").unwrap_or(0);
        assert_eq!(hits + misses, 4);
        // The first read is always cold; everything after it was predicted.
        assert!(hits >= 3, "hits={hits} misses={misses}");
    }

    #[test]
    fn append_hands_out_offsets_immediately() {
        let (inner, s) = sched(1);
        assert_eq!(s.append("f", &[1, 2]).unwrap(), 0);
        assert_eq!(s.append("f", &[3]).unwrap(), 2);
        s.flush().unwrap();
        assert_eq!(inner.snapshot("f").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn deferred_write_error_surfaces_at_flush() {
        let (inner, s) = sched(1);
        inner.fail_after_ops(0);
        // Accepted immediately; the failure is the backend's to report.
        s.write_at("f", 0, &[1]).unwrap();
        assert_eq!(s.flush(), Err(PdmError::DiskFailed));
        // The error is consumed: the next pass starts clean.
        assert_eq!(s.flush(), Ok(()));
    }

    #[test]
    fn write_invalidates_prefetched_data() {
        let (_inner, s) = sched(4);
        s.load("f", vec![0u8; 64]);
        let mut buf = [0u8; 16];
        s.read_at("f", 0, &mut buf).unwrap(); // schedules 16..64
        s.write_at("f", 16, &[9; 16]).unwrap();
        s.read_at("f", 16, &mut buf).unwrap();
        assert_eq!(buf, [9; 16]);
    }

    #[test]
    fn snapshot_and_len_wait_for_writeback() {
        let (_inner, s) = sched(1);
        for i in 0..64u64 {
            s.write_at("f", i * 4, &[i as u8; 4]).unwrap();
        }
        assert_eq!(s.len("f"), Some(256));
        let snap = s.snapshot("f").unwrap();
        assert_eq!(snap.len(), 256);
        assert_eq!(&snap[252..], &[63, 63, 63, 63]);
    }

    #[test]
    fn coalescing_reduces_backend_write_ops() {
        // Stall the worker behind a first write so the rest queue up.
        let slow = SimDisk::new(DiskCfg::new(
            std::time::Duration::from_millis(20),
            f64::INFINITY,
        ));
        let s2 = IoScheduler::new(slow.clone() as DiskRef, 1).unwrap();
        for i in 0..8u64 {
            s2.write_at("f", i * 8, &[i as u8; 8]).unwrap();
        }
        s2.flush().unwrap();
        // 8 adjacent writes; the first may dispatch alone, the rest
        // coalesce into at most a couple of backend ops.
        assert!(
            slow.stats().write_ops < 8,
            "write_ops={}",
            slow.stats().write_ops
        );
        assert_eq!(slow.stats().bytes_written, 64);
    }

    #[test]
    fn works_against_os_disk() {
        let dir = crate::ScratchDir::new("sched-os").unwrap();
        let inner = crate::OsDisk::new(dir.path()).unwrap();
        let s = IoScheduler::new(inner as DiskRef, 2).unwrap();
        let data: Vec<u8> = (0..128u8).map(|b| b.wrapping_mul(7)).collect();
        for (i, chunk) in data.chunks(32).enumerate() {
            s.write_at("f", (i * 32) as u64, chunk).unwrap();
        }
        s.flush().unwrap();
        let mut buf = [0u8; 32];
        let mut got = Vec::new();
        for i in 0..4 {
            s.read_at("f", i * 32, &mut buf).unwrap();
            got.extend_from_slice(&buf);
        }
        assert_eq!(got, data);
    }
}
