//! Simulated per-node disks.
//!
//! Each cluster node owns one disk (the paper's nodes have one Ultra-320
//! SCSI drive each).  A [`SimDisk`] stores named files in memory and charges
//! every read/write a configurable cost (`latency + bytes/bandwidth`) as
//! real wall-clock sleep **while holding the disk arm**: concurrent I/O
//! requests against one disk serialize, exactly the property that makes the
//! "most heavily used disk" the pacing item of a dsort pass (§I).
//!
//! Stage threads blocked on disk I/O yield the CPU, so FG's overlap of I/O
//! with computation and communication is physically real in measurements.
//! Tests use [`DiskCfg::zero`] and run at memory speed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_core::metrics::{Counter, Histogram, MetricsRegistry};
use parking_lot::{Mutex, RwLock};

use crate::PdmError;

/// The operations every disk backend provides.
///
/// Pipelines hold disks as [`DiskRef`] (`Arc<dyn Disk>`) so the same sort
/// and application code runs against the in-memory [`SimDisk`] cost model,
/// a real-file [`OsDisk`](crate::OsDisk), or either one wrapped in the
/// overlapping [`IoScheduler`](crate::IoScheduler).
///
/// Semantics all backends share:
///
/// * files are flat named byte arrays under one per-node namespace;
/// * [`write_at`](Disk::write_at) past the end grows the file zero-filled;
/// * [`load`](Disk::load)/[`snapshot`](Disk::snapshot) are *out-of-band*
///   provisioning/verification hooks — they move bytes without charging
///   costs or touching the I/O counters, and they keep working after an
///   injected failure;
/// * [`flush`](Disk::flush) is a write barrier: when it returns, every
///   previously accepted write has reached the backend, and the first
///   error of any *deferred* write is returned here (backends without
///   deferred writes return `Ok(())`).
pub trait Disk: Send + Sync {
    /// Write `data` at byte `offset` of `name`, creating and growing the
    /// file (zero-filled) as needed.
    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), PdmError>;
    /// Append `data` to `name` (creating it), returning the offset the
    /// data landed at.
    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PdmError>;
    /// Read exactly `out.len()` bytes at `offset` of `name`.
    fn read_at(&self, name: &str, offset: u64, out: &mut [u8]) -> Result<(), PdmError>;
    /// Read up to `len` bytes at `offset` (short read at end of file).
    fn read_up_to(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>, PdmError>;
    /// Install a file's full contents without charging any cost — an
    /// out-of-band provisioning hook for experiment setup.
    fn load(&self, name: &str, bytes: Vec<u8>);
    /// Copy a file's full contents without charging any cost — the
    /// verification counterpart of [`Disk::load`].
    fn snapshot(&self, name: &str) -> Option<Vec<u8>>;
    /// Length of a file, or `None` if it does not exist.
    fn len(&self, name: &str) -> Option<u64>;
    /// Whether the file exists.
    fn exists(&self, name: &str) -> bool;
    /// Delete a file; returns whether it existed.
    fn delete(&self, name: &str) -> bool;
    /// Names of all files on the disk (unspecified order).
    fn list(&self) -> Vec<String>;
    /// Snapshot of the I/O counters.
    fn stats(&self) -> DiskStats;
    /// Reset the I/O counters (e.g. between experiment passes).
    fn reset_stats(&self);
    /// Inject a failure: after `ops` more successful operations, every
    /// read/write fails with [`PdmError::DiskFailed`].
    fn fail_after_ops(&self, ops: u64);
    /// Write barrier: block until every accepted write has reached the
    /// backend, surfacing the first deferred-write error.
    fn flush(&self) -> Result<(), PdmError> {
        Ok(())
    }
    /// The live read-ahead actuator behind this disk, if it has one.
    ///
    /// Plain backends have no tunable depth and return `None`; the
    /// [`IoScheduler`](crate::IoScheduler) wrapper returns itself so a
    /// closed-loop controller can retune its read-ahead at run time.
    fn depth_actuator(self: Arc<Self>) -> Option<Arc<dyn fg_core::controller::DepthActuator>> {
        None
    }
}

/// Shared handle to a disk backend, as the pipelines hold it.
pub type DiskRef = Arc<dyn Disk>;

/// Failure injection shared by all backends: a count of operations
/// remaining before the disk "dies" (`u64::MAX` = healthy).  Once it hits
/// zero every subsequent checked operation fails with
/// [`PdmError::DiskFailed`].
#[derive(Debug)]
pub(crate) struct FailGate {
    ops_until_failure: AtomicU64,
}

impl Default for FailGate {
    fn default() -> Self {
        FailGate {
            ops_until_failure: AtomicU64::new(u64::MAX),
        }
    }
}

impl FailGate {
    pub(crate) fn arm(&self, ops: u64) {
        self.ops_until_failure.store(ops, Ordering::SeqCst);
    }

    pub(crate) fn check(&self) -> Result<(), PdmError> {
        // Decrement-if-healthy; saturate at zero once dead.
        let mut cur = self.ops_until_failure.load(Ordering::SeqCst);
        loop {
            if cur == u64::MAX {
                return Ok(());
            }
            if cur == 0 {
                return Err(PdmError::DiskFailed);
            }
            match self.ops_until_failure.compare_exchange(
                cur,
                cur - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Disk cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskCfg {
    /// Fixed per-operation latency (seek + rotational).
    pub latency: Duration,
    /// Sustained transfer rate in bytes per second; `f64::INFINITY`
    /// disables the per-byte cost.
    pub bytes_per_sec: f64,
}

impl DiskCfg {
    /// A free disk (for tests): no latency, infinite bandwidth.
    pub fn zero() -> Self {
        DiskCfg {
            latency: Duration::ZERO,
            bytes_per_sec: f64::INFINITY,
        }
    }

    /// A disk with the given per-op latency and bandwidth.
    pub fn new(latency: Duration, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        DiskCfg {
            latency,
            bytes_per_sec,
        }
    }

    /// Wall-clock cost of one operation transferring `bytes`.
    pub fn cost(&self, bytes: usize) -> Duration {
        let transfer = if self.bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
        } else {
            Duration::ZERO
        };
        self.latency + transfer
    }
}

impl Default for DiskCfg {
    fn default() -> Self {
        DiskCfg::zero()
    }
}

/// Cumulative I/O counters of one disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Number of read operations.
    pub read_ops: u64,
    /// Number of write operations.
    pub write_ops: u64,
    /// Nanoseconds the disk arm was busy (simulated service time).
    pub busy_nanos: u64,
}

impl DiskStats {
    /// Simulated time this disk spent servicing requests.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos)
    }

    /// Total bytes moved in either direction.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) bytes_read: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
    pub(crate) read_ops: AtomicU64,
    pub(crate) write_ops: AtomicU64,
    pub(crate) busy_nanos: AtomicU64,
}

impl Counters {
    pub(crate) fn snapshot(&self) -> DiskStats {
        DiskStats {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.read_ops.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.busy_nanos.store(0, Ordering::Relaxed);
    }
}

/// Metric handles of one disk, resolved once at attachment.  Latencies are
/// measured wall time per operation *including* queueing behind other
/// requests for the disk arm, so the histograms expose contention, not just
/// the configured service cost.  Names carry the disk's label:
/// `disk/{label}/read_ns`, `disk/{label}/write_ns`,
/// `disk/{label}/bytes_read`, `disk/{label}/bytes_written`.
pub(crate) struct DiskMetrics {
    pub(crate) read_ns: Arc<Histogram>,
    pub(crate) write_ns: Arc<Histogram>,
    pub(crate) bytes_read: Arc<Counter>,
    pub(crate) bytes_written: Arc<Counter>,
}

impl DiskMetrics {
    pub(crate) fn new(registry: &MetricsRegistry, label: &str) -> Self {
        DiskMetrics {
            read_ns: registry.histogram(&format!("disk/{label}/read_ns")),
            write_ns: registry.histogram(&format!("disk/{label}/write_ns")),
            bytes_read: registry.counter(&format!("disk/{label}/bytes_read")),
            bytes_written: registry.counter(&format!("disk/{label}/bytes_written")),
        }
    }
}

/// Direction of one I/O operation, for metric recording.
#[derive(Clone, Copy)]
pub(crate) enum Dir {
    Read,
    Write,
}

impl DiskMetrics {
    /// Record one operation's wall time and byte count.
    pub(crate) fn record(&self, dir: Dir, bytes: usize, elapsed: Duration) {
        match dir {
            Dir::Read => {
                self.read_ns.record_duration(elapsed);
                self.bytes_read.add(bytes as u64);
            }
            Dir::Write => {
                self.write_ns.record_duration(elapsed);
                self.bytes_written.add(bytes as u64);
            }
        }
    }
}

/// An in-memory simulated disk holding named files.
pub struct SimDisk {
    cfg: DiskCfg,
    /// The disk arm: held (while sleeping the op cost) to serialize access.
    arm: Mutex<()>,
    files: RwLock<HashMap<String, Arc<Mutex<Vec<u8>>>>>,
    counters: Counters,
    /// Failure injection; see [`FailGate`].
    fail: FailGate,
    /// Metric handles; `None` for an uninstrumented disk, making every
    /// record site a single never-taken branch.
    metrics: Option<DiskMetrics>,
}

impl SimDisk {
    /// Create an empty disk with the given cost model.
    pub fn new(cfg: DiskCfg) -> Arc<Self> {
        Arc::new(SimDisk {
            cfg,
            arm: Mutex::new(()),
            files: RwLock::new(HashMap::new()),
            counters: Counters::default(),
            fail: FailGate::default(),
            metrics: None,
        })
    }

    /// Create an empty disk that additionally records per-operation latency
    /// histograms and byte counters into `registry`, under
    /// `disk/{label}/…` names (one label per disk, e.g. `d0`, `d1`).
    pub fn with_metrics(cfg: DiskCfg, registry: &MetricsRegistry, label: &str) -> Arc<Self> {
        Arc::new(SimDisk {
            cfg,
            arm: Mutex::new(()),
            files: RwLock::new(HashMap::new()),
            counters: Counters::default(),
            fail: FailGate::default(),
            metrics: Some(DiskMetrics::new(registry, label)),
        })
    }

    /// Inject a failure: after `ops` more successful operations, every
    /// read/write on this disk fails with [`PdmError::DiskFailed`] — for
    /// testing that errors propagate out of pipelines and across the
    /// cluster.
    pub fn fail_after_ops(&self, ops: u64) {
        self.fail.arm(ops);
    }

    fn check_alive(&self) -> Result<(), PdmError> {
        self.fail.check()
    }

    /// The disk's cost model.
    pub fn cfg(&self) -> DiskCfg {
        self.cfg
    }

    fn charge(&self, dir: Dir, bytes: usize) {
        let d = self.cfg.cost(bytes);
        if d.is_zero() {
            // Memory-speed disks (DiskCfg::zero) skip the clock reads, the
            // arm, and the busy-time bookkeeping entirely.  Byte counters
            // and (zero-duration) latency samples still record so
            // instrumented runs account for every operation.
            if let Some(m) = &self.metrics {
                m.record(dir, bytes, Duration::ZERO);
            }
            return;
        }
        self.counters
            .busy_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        let t0 = Instant::now();
        {
            // Hold the arm while the operation is "in flight".
            let _arm = self.arm.lock();
            std::thread::sleep(d);
        }
        if let Some(m) = &self.metrics {
            // Wall time including queueing behind the arm, so contention on
            // the most heavily used disk shows up in the tail.
            m.record(dir, bytes, t0.elapsed());
        }
    }

    fn file(&self, name: &str) -> Option<Arc<Mutex<Vec<u8>>>> {
        self.files.read().get(name).map(Arc::clone)
    }

    fn file_or_create(&self, name: &str) -> Arc<Mutex<Vec<u8>>> {
        if let Some(f) = self.file(name) {
            return f;
        }
        let mut files = self.files.write();
        Arc::clone(
            files
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(Vec::new()))),
        )
    }

    /// Write `data` at byte `offset` of `name`, creating and growing the
    /// file (zero-filled) as needed.
    pub fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), PdmError> {
        self.check_alive()?;
        let file = self.file_or_create(name);
        {
            let mut bytes = file.lock();
            let end = offset as usize + data.len();
            if bytes.len() < end {
                bytes.resize(end, 0);
            }
            bytes[offset as usize..end].copy_from_slice(data);
        }
        self.counters
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.counters.write_ops.fetch_add(1, Ordering::Relaxed);
        self.charge(Dir::Write, data.len());
        Ok(())
    }

    /// Append `data` to `name` (creating it), returning the offset the data
    /// landed at.
    pub fn append(&self, name: &str, data: &[u8]) -> Result<u64, PdmError> {
        self.check_alive()?;
        let file = self.file_or_create(name);
        let offset = {
            let mut bytes = file.lock();
            let offset = bytes.len() as u64;
            bytes.extend_from_slice(data);
            offset
        };
        self.counters
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.counters.write_ops.fetch_add(1, Ordering::Relaxed);
        self.charge(Dir::Write, data.len());
        Ok(offset)
    }

    /// Read exactly `out.len()` bytes at `offset` of `name`.
    pub fn read_at(&self, name: &str, offset: u64, out: &mut [u8]) -> Result<(), PdmError> {
        self.check_alive()?;
        let file = self
            .file(name)
            .ok_or_else(|| PdmError::NoSuchFile(name.to_string()))?;
        {
            let bytes = file.lock();
            let end = offset as usize + out.len();
            if end > bytes.len() {
                return Err(PdmError::OutOfRange {
                    file: name.to_string(),
                    offset,
                    len: out.len(),
                    file_len: bytes.len() as u64,
                });
            }
            out.copy_from_slice(&bytes[offset as usize..end]);
        }
        self.counters
            .bytes_read
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        self.counters.read_ops.fetch_add(1, Ordering::Relaxed);
        self.charge(Dir::Read, out.len());
        Ok(())
    }

    /// Read up to `len` bytes at `offset` (short read at end of file).
    pub fn read_up_to(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>, PdmError> {
        self.check_alive()?;
        let file = self
            .file(name)
            .ok_or_else(|| PdmError::NoSuchFile(name.to_string()))?;
        let data = {
            let bytes = file.lock();
            let start = (offset as usize).min(bytes.len());
            let end = (start + len).min(bytes.len());
            bytes[start..end].to_vec()
        };
        self.counters
            .bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.counters.read_ops.fetch_add(1, Ordering::Relaxed);
        self.charge(Dir::Read, data.len());
        Ok(data)
    }

    /// Install a file's full contents **without charging any cost** — an
    /// out-of-band provisioning hook for experiment setup (loading the
    /// input dataset is not part of any measured pass).
    pub fn load(&self, name: &str, bytes: Vec<u8>) {
        let file = self.file_or_create(name);
        *file.lock() = bytes;
    }

    /// Copy a file's full contents **without charging any cost** — the
    /// verification counterpart of [`SimDisk::load`].
    pub fn snapshot(&self, name: &str) -> Option<Vec<u8>> {
        self.file(name).map(|f| f.lock().clone())
    }

    /// Length of a file, or `None` if it does not exist.
    pub fn len(&self, name: &str) -> Option<u64> {
        self.file(name).map(|f| f.lock().len() as u64)
    }

    /// Whether the file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    /// Delete a file; returns whether it existed.
    pub fn delete(&self, name: &str) -> bool {
        self.files.write().remove(name).is_some()
    }

    /// Names of all files on the disk (unspecified order).
    pub fn list(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> DiskStats {
        self.counters.snapshot()
    }

    /// Reset the I/O counters (e.g. between experiment passes).
    pub fn reset_stats(&self) {
        self.counters.reset()
    }
}

// The trait impl delegates to the inherent methods above (inherent methods
// win during resolution, so there is no recursion), letting existing code
// that holds a concrete `Arc<SimDisk>` keep working unchanged while the
// pipelines hold `Arc<dyn Disk>`.
impl Disk for SimDisk {
    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), PdmError> {
        SimDisk::write_at(self, name, offset, data)
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PdmError> {
        SimDisk::append(self, name, data)
    }

    fn read_at(&self, name: &str, offset: u64, out: &mut [u8]) -> Result<(), PdmError> {
        SimDisk::read_at(self, name, offset, out)
    }

    fn read_up_to(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>, PdmError> {
        SimDisk::read_up_to(self, name, offset, len)
    }

    fn load(&self, name: &str, bytes: Vec<u8>) {
        SimDisk::load(self, name, bytes)
    }

    fn snapshot(&self, name: &str) -> Option<Vec<u8>> {
        SimDisk::snapshot(self, name)
    }

    fn len(&self, name: &str) -> Option<u64> {
        SimDisk::len(self, name)
    }

    fn exists(&self, name: &str) -> bool {
        SimDisk::exists(self, name)
    }

    fn delete(&self, name: &str) -> bool {
        SimDisk::delete(self, name)
    }

    fn list(&self) -> Vec<String> {
        SimDisk::list(self)
    }

    fn stats(&self) -> DiskStats {
        SimDisk::stats(self)
    }

    fn reset_stats(&self) {
        SimDisk::reset_stats(self)
    }

    fn fail_after_ops(&self, ops: u64) {
        SimDisk::fail_after_ops(self, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let d = SimDisk::new(DiskCfg::zero());
        d.write_at("f", 0, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        d.read_at("f", 0, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn write_at_offset_grows_zero_filled() {
        let d = SimDisk::new(DiskCfg::zero());
        d.write_at("f", 4, &[9]).unwrap();
        assert_eq!(d.len("f"), Some(5));
        let mut out = [1u8; 5];
        d.read_at("f", 0, &mut out).unwrap();
        assert_eq!(out, [0, 0, 0, 0, 9]);
    }

    #[test]
    fn append_returns_offsets() {
        let d = SimDisk::new(DiskCfg::zero());
        assert_eq!(d.append("f", &[1, 2]).unwrap(), 0);
        assert_eq!(d.append("f", &[3]).unwrap(), 2);
        assert_eq!(d.len("f"), Some(3));
    }

    #[test]
    fn read_missing_file_fails() {
        let d = SimDisk::new(DiskCfg::zero());
        let mut out = [0u8; 1];
        assert!(matches!(
            d.read_at("nope", 0, &mut out),
            Err(PdmError::NoSuchFile(_))
        ));
    }

    #[test]
    fn read_past_end_fails() {
        let d = SimDisk::new(DiskCfg::zero());
        d.write_at("f", 0, &[1]).unwrap();
        let mut out = [0u8; 2];
        assert!(matches!(
            d.read_at("f", 0, &mut out),
            Err(PdmError::OutOfRange { .. })
        ));
    }

    #[test]
    fn read_up_to_short_reads() {
        let d = SimDisk::new(DiskCfg::zero());
        d.write_at("f", 0, &[1, 2, 3]).unwrap();
        assert_eq!(d.read_up_to("f", 2, 10).unwrap(), vec![3]);
        assert_eq!(d.read_up_to("f", 5, 10).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn delete_and_exists() {
        let d = SimDisk::new(DiskCfg::zero());
        assert!(!d.exists("f"));
        d.write_at("f", 0, &[1]).unwrap();
        assert!(d.exists("f"));
        assert!(d.delete("f"));
        assert!(!d.delete("f"));
        assert!(!d.exists("f"));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let d = SimDisk::new(DiskCfg::zero());
        d.write_at("f", 0, &[0; 100]).unwrap();
        let mut out = [0u8; 40];
        d.read_at("f", 0, &mut out).unwrap();
        let s = d.stats();
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_read, 40);
        assert_eq!(s.write_ops, 1);
        assert_eq!(s.read_ops, 1);
        assert_eq!(s.bytes_total(), 140);
        d.reset_stats();
        assert_eq!(d.stats(), DiskStats::default());
    }

    #[test]
    fn metrics_record_latency_histograms_and_bytes() {
        let reg = MetricsRegistry::new();
        let d = SimDisk::with_metrics(DiskCfg::zero(), &reg, "d0");
        d.write_at("f", 0, &[0; 100]).unwrap();
        let mut out = [0u8; 40];
        d.read_at("f", 0, &mut out).unwrap();
        d.read_up_to("f", 0, 10).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("disk/d0/bytes_written"), Some(100));
        assert_eq!(snap.counter("disk/d0/bytes_read"), Some(50));
        assert_eq!(snap.histogram("disk/d0/write_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("disk/d0/read_ns").unwrap().count, 2);
    }

    #[test]
    fn uninstrumented_disk_registers_nothing() {
        let d = SimDisk::new(DiskCfg::zero());
        d.write_at("f", 0, &[1]).unwrap();
        // Only the plain counters exist; there is no registry to pollute.
        assert_eq!(d.stats().write_ops, 1);
    }

    #[test]
    fn cost_model_charges_busy_time() {
        let d = SimDisk::new(DiskCfg::new(Duration::from_millis(1), 1_000_000.0));
        let t0 = std::time::Instant::now();
        d.write_at("f", 0, &[0; 10_000]).unwrap(); // 1ms + 10ms
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(10), "{elapsed:?}");
        assert!(d.stats().busy() >= Duration::from_millis(10));
    }

    #[test]
    fn concurrent_ops_serialize_on_the_arm() {
        // Two threads each do a ~10ms write; serialized, total >= 20ms.
        let d = SimDisk::new(DiskCfg::new(Duration::from_millis(10), f64::INFINITY));
        let t0 = std::time::Instant::now();
        let d1 = Arc::clone(&d);
        let d2 = Arc::clone(&d);
        let h1 = std::thread::spawn(move || d1.write_at("a", 0, &[1]).unwrap());
        let h2 = std::thread::spawn(move || d2.write_at("b", 0, &[1]).unwrap());
        h1.join().unwrap();
        h2.join().unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(19),
            "{:?}",
            t0.elapsed()
        );
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use crate::PdmError;

    #[test]
    fn healthy_disk_never_fails() {
        let d = SimDisk::new(DiskCfg::zero());
        for _ in 0..1000 {
            d.write_at("f", 0, &[1]).unwrap();
        }
    }

    #[test]
    fn fails_after_injected_ops() {
        let d = SimDisk::new(DiskCfg::zero());
        d.fail_after_ops(3);
        d.write_at("f", 0, &[1]).unwrap();
        let mut out = [0u8; 1];
        d.read_at("f", 0, &mut out).unwrap();
        d.append("f", &[2]).unwrap();
        assert_eq!(d.write_at("f", 0, &[3]), Err(PdmError::DiskFailed));
        assert_eq!(d.read_at("f", 0, &mut out), Err(PdmError::DiskFailed));
        assert!(matches!(d.read_up_to("f", 0, 1), Err(PdmError::DiskFailed)));
        assert!(matches!(d.append("f", &[4]), Err(PdmError::DiskFailed)));
    }

    #[test]
    fn fail_immediately() {
        let d = SimDisk::new(DiskCfg::zero());
        d.fail_after_ops(0);
        assert_eq!(d.write_at("f", 0, &[1]), Err(PdmError::DiskFailed));
        // Cost-free provisioning and snapshots are out-of-band and keep
        // working (they model the experiment harness, not the disk).
        d.load("g", vec![1, 2, 3]);
        assert_eq!(d.snapshot("g").unwrap(), vec![1, 2, 3]);
    }
}
