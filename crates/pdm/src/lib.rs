//! # fg-pdm: a simulated Parallel Disk Model substrate
//!
//! Out-of-core programs in the FG papers target the Parallel Disk Model
//! (Vitter & Shriver): `P` disks, one per cluster node, data moved in
//! fixed-size blocks, final output *striped* round-robin across the disks.
//! This crate provides:
//!
//! * [`Disk`] — the backend trait the pipelines program against, held as
//!   [`DiskRef`] (`Arc<dyn Disk>`);
//! * [`SimDisk`] — an in-memory per-node disk whose reads and writes cost
//!   real wall-clock time under a configurable `latency + bytes/bandwidth`
//!   model and *serialize on the disk arm*, so unbalanced I/O shows up in
//!   measured pass times just as it does on hardware;
//! * [`OsDisk`] — a disk backed by real files under a root directory,
//!   served with positioned kernel I/O;
//! * [`IoScheduler`] — a wrapper over either backend adding read-ahead
//!   prefetching and coalescing write-behind on a dedicated I/O thread,
//!   with a [`flush`](Disk::flush) barrier that surfaces deferred-write
//!   errors at pass end;
//! * [`Striping`] — PDM striping arithmetic (global ↔ per-node coordinates)
//!   and a verification helper that reassembles the global stream.
//!
//! ```
//! use fg_pdm::{DiskCfg, SimDisk, Striping};
//!
//! let disks: Vec<_> = (0..4).map(|_| SimDisk::new(DiskCfg::zero())).collect();
//! let s = Striping::new(4, 8);
//! let data: Vec<u8> = (0..64).collect();
//! for (node, local_off, range) in s.split_range(0, data.len()) {
//!     disks[node].write_at("out", local_off, &data[range]).unwrap();
//! }
//! assert_eq!(s.assemble(&disks, "out", 64).unwrap(), data);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod disk;
mod os_disk;
mod sched;
mod scratch;
mod striping;

pub use disk::{Disk, DiskCfg, DiskRef, DiskStats, SimDisk};
pub use os_disk::OsDisk;
pub use sched::{IoScheduler, MAX_IO_DEPTH};
pub use scratch::ScratchDir;
pub use striping::Striping;

use std::fmt;

/// Errors from the simulated storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdmError {
    /// The disk has failed (injected via [`SimDisk::fail_after_ops`]).
    DiskFailed,
    /// The named file does not exist on this disk.
    NoSuchFile(String),
    /// A read extended past the end of the file.
    OutOfRange {
        /// File name.
        file: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Actual file length.
        file_len: u64,
    },
    /// An operating-system I/O error from a real-file backend.
    Io(String),
    /// An invalid configuration value (e.g. an I/O scheduler depth of 0).
    Config(String),
}

impl fmt::Display for PdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdmError::DiskFailed => write!(f, "disk failed (injected fault)"),
            PdmError::NoSuchFile(name) => write!(f, "no such file: {name}"),
            PdmError::OutOfRange {
                file,
                offset,
                len,
                file_len,
            } => write!(
                f,
                "read of {len} bytes at {offset} exceeds {file} (len {file_len})"
            ),
            PdmError::Io(msg) => write!(f, "I/O error: {msg}"),
            PdmError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for PdmError {}
