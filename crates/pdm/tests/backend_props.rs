//! Property-based tests across disk backends: any sequence of writes and
//! appends must leave byte-identical files on [`SimDisk`], [`OsDisk`], and
//! an [`IoScheduler`]-wrapped `OsDisk` (the scheduler is transparent —
//! read-ahead and write-behind change timing, never contents).

use proptest::collection::vec;
use proptest::prelude::*;

use fg_pdm::{Disk, DiskCfg, DiskRef, IoScheduler, OsDisk, ScratchDir, SimDisk};

proptest! {
    // Each case builds real files and a scheduler thread; keep the case
    // count modest so the suite stays quick on CI.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replaying one op sequence on all three backends produces the same
    /// bytes, with the cost-free SimDisk as the reference semantics.
    #[test]
    fn backends_store_identical_bytes(
        ops in vec(
            (any::<bool>(), 0u64..128, vec(any::<u8>(), 1..24), any::<bool>()),
            1..24,
        ),
    ) {
        let scratch = ScratchDir::new("backend-props").unwrap();
        let sim: DiskRef = SimDisk::new(DiskCfg::zero());
        let os: DiskRef = OsDisk::new(scratch.path().join("bare")).unwrap();
        let sched: DiskRef = IoScheduler::new(
            OsDisk::new(scratch.path().join("sched")).unwrap() as DiskRef,
            2,
        )
        .unwrap();
        let disks = [&sim, &os, &sched];
        for (is_append, off, data, second_file) in &ops {
            let name = if *second_file { "g" } else { "f" };
            for d in disks {
                if *is_append {
                    let a = d.append(name, data).unwrap();
                    let b = sim.len(name).unwrap() - data.len() as u64;
                    prop_assert_eq!(a, b, "append offsets diverged");
                } else {
                    d.write_at(name, *off, data).unwrap();
                }
            }
        }
        for d in disks {
            d.flush().unwrap();
        }
        for name in ["f", "g"] {
            let want = sim.snapshot(name);
            prop_assert_eq!(os.snapshot(name), want.clone(), "OsDisk diverged on {}", name);
            prop_assert_eq!(sched.snapshot(name), want, "IoScheduler diverged on {}", name);
        }
    }

    /// Sequential block reads through the scheduler return exactly the
    /// backend's bytes at every offset, prefetched or not.
    #[test]
    fn scheduled_reads_match_backend_bytes(
        blocks in 1usize..12,
        block_bytes in 1usize..64,
        depth in 1usize..5,
        seed in any::<u8>(),
    ) {
        let scratch = ScratchDir::new("backend-props-rd").unwrap();
        let inner = OsDisk::new(scratch.path()).unwrap();
        let data: Vec<u8> = (0..blocks * block_bytes)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect();
        inner.load("f", data.clone());
        let sched = IoScheduler::new(inner as DiskRef, depth).unwrap();
        let mut buf = vec![0u8; block_bytes];
        for b in 0..blocks {
            sched.read_at("f", (b * block_bytes) as u64, &mut buf).unwrap();
            prop_assert_eq!(
                &buf[..],
                &data[b * block_bytes..(b + 1) * block_bytes],
                "block {} diverged", b
            );
        }
    }
}
