//! Property-based tests for PDM striping arithmetic and the simulated disk.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use fg_pdm::{DiskCfg, SimDisk, Striping};

proptest! {
    /// Block location round-trips for any geometry.
    #[test]
    fn block_location_roundtrip(nodes in 1usize..12, block in 1usize..64, g in 0u64..10_000) {
        let s = Striping::new(nodes, block);
        let (n, l) = s.locate_block(g);
        prop_assert!(n < nodes);
        prop_assert_eq!(s.global_block_of(n, l), g);
    }

    /// locate_byte is consistent with locate_block.
    #[test]
    fn byte_location_consistent(nodes in 1usize..8, block in 1usize..32, off in 0u64..5_000) {
        let s = Striping::new(nodes, block);
        let (n, local) = s.locate_byte(off);
        let (bn, bl) = s.locate_block(off / block as u64);
        prop_assert_eq!(n, bn);
        prop_assert_eq!(local / block as u64, bl);
        prop_assert_eq!(local % block as u64, off % block as u64);
    }

    /// split_range covers exactly the requested range, in order, with no
    /// chunk crossing a block boundary.
    #[test]
    fn split_range_exact_cover(
        nodes in 1usize..8,
        block in 1usize..32,
        off in 0u64..1000,
        len in 0usize..200,
    ) {
        let s = Striping::new(nodes, block);
        let parts = s.split_range(off, len);
        let mut covered = 0usize;
        for (node, local, range) in &parts {
            prop_assert_eq!(range.start, covered);
            covered = range.end;
            prop_assert!(range.len() <= block);
            let (n, l) = s.locate_byte(off + range.start as u64);
            prop_assert_eq!((*node, *local), (n, l));
            // No block-boundary crossing.
            let start_block = (off + range.start as u64) / block as u64;
            let end_block = (off + range.end as u64 - 1) / block as u64;
            if !range.is_empty() {
                prop_assert_eq!(start_block, end_block);
            }
        }
        prop_assert_eq!(covered, len);
    }

    /// bytes_on_node partitions the total for any geometry.
    #[test]
    fn bytes_on_node_partitions(nodes in 1usize..10, block in 1usize..40, total in 0u64..10_000) {
        let s = Striping::new(nodes, block);
        let sum: u64 = (0..nodes).map(|n| s.bytes_on_node(total, n)).sum();
        prop_assert_eq!(sum, total);
    }

    /// Striped write + assemble round-trips arbitrary data.
    #[test]
    fn stripe_roundtrip(nodes in 1usize..6, block in 1usize..16, data in vec(any::<u8>(), 0..300)) {
        let s = Striping::new(nodes, block);
        let disks: Vec<Arc<SimDisk>> =
            (0..nodes).map(|_| SimDisk::new(DiskCfg::zero())).collect();
        for (node, local, range) in s.split_range(0, data.len()) {
            disks[node].write_at("f", local, &data[range]).unwrap();
        }
        if data.is_empty() {
            // assemble requires files to exist; trivially fine.
            return Ok(());
        }
        let got = s.assemble(&disks, "f", data.len() as u64).unwrap();
        prop_assert_eq!(got, data);
    }

    /// Disk write/read round-trips at arbitrary offsets.
    #[test]
    fn disk_write_read_roundtrip(
        writes in vec((0u64..500, vec(any::<u8>(), 1..40)), 1..10)
    ) {
        let d = SimDisk::new(DiskCfg::zero());
        // Model the file contents alongside.
        let mut model: Vec<u8> = Vec::new();
        for (off, data) in &writes {
            let end = *off as usize + data.len();
            if model.len() < end {
                model.resize(end, 0);
            }
            model[*off as usize..end].copy_from_slice(data);
            d.write_at("f", *off, data).unwrap();
        }
        let mut out = vec![0u8; model.len()];
        d.read_at("f", 0, &mut out).unwrap();
        prop_assert_eq!(out, model);
    }
}
