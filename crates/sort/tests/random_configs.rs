//! Randomized end-to-end sweeps: dsort and csort must verify on arbitrary
//! small configurations (node counts, block geometries, distributions).

use proptest::prelude::*;

use fg_sort::config::SortConfig;
use fg_sort::csort::run_csort;
use fg_sort::dsort::run_dsort;
use fg_sort::input::provision;
use fg_sort::keygen::KeyDist;
use fg_sort::verify::{verify_output, Strictness};

fn dist_strategy() -> impl Strategy<Value = KeyDist> {
    prop_oneof![
        Just(KeyDist::Uniform),
        Just(KeyDist::AllEqual),
        Just(KeyDist::StdNormal),
        Just(KeyDist::Poisson),
        (1usize..4).prop_map(|shift| KeyDist::Shifted { shift }),
        (50u8..100).prop_map(|hot_percent| KeyDist::HotKey { hot_percent }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// dsort sorts any configuration with arbitrary block/run geometry.
    #[test]
    fn dsort_sorts_random_configs(
        nodes in 1usize..5,
        records_exp in 8u32..11,            // 256..1024 records/node
        block_records in 16usize..128,
        runs_per_buf in 2usize..5,
        dist in dist_strategy(),
        seed in any::<u64>(),
    ) {
        let mut cfg = SortConfig::test_default(nodes, 1usize << records_exp);
        cfg.block_bytes = block_records * 16;
        cfg.run_bytes = cfg.block_bytes * runs_per_buf;
        cfg.vertical_buf_bytes = (cfg.block_bytes / 2).max(16);
        cfg.dist = dist;
        cfg.seed = seed;
        prop_assume!(cfg.validate().is_ok());
        let disks = provision(&cfg);
        run_dsort(&cfg, &disks).expect("dsort");
        verify_output(&cfg, &disks, Strictness::Exact).expect("verified");
    }

    /// csort sorts any configuration whose geometry admits a matrix.
    #[test]
    fn csort_sorts_random_configs(
        nodes in 1usize..5,
        records_exp in 9u32..12,            // 512..2048 records/node
        dist in dist_strategy(),
        seed in any::<u64>(),
    ) {
        let cfg = {
            let mut c = SortConfig::test_default(nodes, 1usize << records_exp);
            c.dist = dist;
            c.seed = seed;
            c
        };
        // Not every (N, P) admits a columnsort matrix (e.g. odd P with
        // power-of-two data cannot satisfy s | r); skip those draws.
        prop_assume!(fg_sort::config::Matrix::choose(cfg.total_records(), nodes).is_ok());
        let disks = provision(&cfg);
        run_csort(&cfg, &disks).expect("csort");
        verify_output(&cfg, &disks, Strictness::Exact).expect("verified");
    }
}
