//! Property-based tests (proptest) on the sorting substrates' invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use fg_sort::chunks;
use fg_sort::columnsort::{boundary_merge, columnsort, sort_columns, transpose, untranspose};
use fg_sort::kernels::{sort_records_using, Kernel, SortScratch};
use fg_sort::merge::{merge_runs, LoserTree};
use fg_sort::record::{partition_of, ExtKey, RecordFormat};

/// Build records with distinct payloads so stability is observable.
fn records_with_payloads(f: RecordFormat, keys: &[u64]) -> Vec<u8> {
    let rb = f.record_bytes;
    let mut bytes = vec![0u8; keys.len() * rb];
    for (i, &k) in keys.iter().enumerate() {
        f.set_key(&mut bytes[i * rb..(i + 1) * rb], k);
        bytes[i * rb + 8] = i as u8;
        bytes[i * rb + 9] = (i >> 8) as u8;
    }
    bytes
}

proptest! {
    /// Columnsort sorts any input meeting Leighton's geometry (r = 12,
    /// s = 3 is the smallest interesting valid shape; larger shapes too).
    #[test]
    fn columnsort_sorts(data in vec(any::<u64>(), 36)) {
        let mut d = data.clone();
        let mut expect = data;
        expect.sort_unstable();
        columnsort(&mut d, 12, 3).unwrap();
        prop_assert_eq!(d, expect);
    }

    #[test]
    fn columnsort_sorts_with_duplicates(data in vec(0u64..8, 128)) {
        let mut d = data.clone();
        let mut expect = data;
        expect.sort_unstable();
        columnsort(&mut d, 32, 4).unwrap();
        prop_assert_eq!(d, expect);
    }

    /// transpose/untranspose are inverse permutations for any geometry.
    #[test]
    fn transpose_roundtrip(r in 1usize..20, s in 1usize..8, seed in any::<u64>()) {
        let n = r * s;
        let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1)).collect();
        let mut d = data.clone();
        transpose(&mut d, r, s);
        untranspose(&mut d, r, s);
        prop_assert_eq!(d, data);
    }

    /// transpose is a permutation (multiset preserved).
    #[test]
    fn transpose_is_permutation(r in 1usize..16, s in 1usize..8) {
        let n = r * s;
        let data: Vec<u64> = (0..n as u64).collect();
        let mut d = data.clone();
        transpose(&mut d, r, s);
        let mut sorted = d;
        sorted.sort_unstable();
        prop_assert_eq!(sorted, data);
    }

    /// Sorting columns then boundary windows never unsorts a fully sorted
    /// sequence (idempotence of the last steps on sorted input).
    #[test]
    fn final_steps_preserve_sorted(mut data in vec(any::<u64>(), 24)) {
        data.sort_unstable();
        let mut d = data.clone();
        sort_columns(&mut d, 12, 2);
        boundary_merge(&mut d, 12, 2);
        prop_assert_eq!(d, data);
    }

    /// The loser tree merges arbitrary sorted lanes into the global sort.
    #[test]
    fn loser_tree_merges(lanes in vec(vec(0u64..1000, 0..30), 1..10)) {
        let mut lanes = lanes;
        for lane in &mut lanes {
            lane.sort_unstable();
        }
        let mut expect: Vec<u64> = lanes.iter().flatten().copied().collect();
        expect.sort_unstable();

        let mut cursors = vec![0usize; lanes.len()];
        let head = |lane: &Vec<u64>, c: usize| lane.get(c).map(|&k| (k, 0));
        let mut tree = LoserTree::new(
            lanes.iter().zip(&cursors).map(|(l, &c)| head(l, c)).collect(),
        );
        let mut got = Vec::new();
        while let Some((lane, (key, _))) = tree.winner() {
            got.push(key);
            cursors[lane] += 1;
            tree.replace(lane, head(&lanes[lane], cursors[lane]));
        }
        prop_assert_eq!(got, expect);
    }

    /// merge_runs over records equals sorting the concatenation.
    #[test]
    fn merge_runs_matches_sort(lanes in vec(vec(any::<u64>(), 0..20), 0..6)) {
        let f = RecordFormat::REC16;
        let mut all_keys: Vec<u64> = Vec::new();
        let runs: Vec<Vec<u8>> = lanes
            .iter()
            .map(|keys| {
                let mut keys = keys.clone();
                keys.sort_unstable();
                all_keys.extend_from_slice(&keys);
                let mut bytes = vec![0u8; keys.len() * 16];
                for (i, &k) in keys.iter().enumerate() {
                    f.set_key(&mut bytes[i * 16..(i + 1) * 16], k);
                }
                bytes
            })
            .collect();
        all_keys.sort_unstable();
        let run_refs: Vec<&[u8]> = runs.iter().map(|r| r.as_slice()).collect();
        let merged = merge_runs(f, &run_refs);
        let got: Vec<u64> = f.records(&merged).map(|r| f.key(r)).collect();
        prop_assert_eq!(got, all_keys);
    }

    /// Chunk streams round-trip arbitrary payload sets.
    #[test]
    fn chunks_roundtrip(items in vec((any::<u64>(), any::<u64>(), vec(any::<u8>(), 0..50)), 0..10)) {
        let mut buf = Vec::new();
        for (a, b, data) in &items {
            chunks::push_chunk(&mut buf, *a, *b, data);
        }
        let parsed = chunks::parse_chunks(&buf).unwrap();
        prop_assert_eq!(parsed.len(), items.len());
        for (chunk, (a, b, data)) in parsed.iter().zip(&items) {
            prop_assert_eq!(chunk.a, *a);
            prop_assert_eq!(chunk.b, *b);
            prop_assert_eq!(chunk.data, data.as_slice());
        }
    }

    /// Coalesced writes reproduce the same file contents as direct writes.
    #[test]
    fn coalesce_preserves_file_image(
        runs in vec((0u64..200, vec(any::<u8>(), 1..20)), 0..12)
    ) {
        // Reference: apply sorted-by-offset writes directly.
        let apply = |writes: &[(u64, Vec<u8>)]| {
            let mut file = vec![0u8; 512];
            for (off, data) in writes {
                let off = *off as usize;
                file[off..off + data.len()].copy_from_slice(data);
            }
            file
        };
        // Skip overlapping inputs: coalescing guarantees order only for
        // non-overlapping runs (which is what the sorts produce).
        let mut sorted = runs.clone();
        sorted.sort_by_key(|(o, _)| *o);
        let overlapping = sorted
            .windows(2)
            .any(|w| w[0].0 + w[0].1.len() as u64 > w[1].0);
        prop_assume!(!overlapping);

        let direct = apply(&sorted);
        let coalesced = chunks::coalesce_writes(runs);
        let via_coalesce = apply(&coalesced);
        prop_assert_eq!(direct, via_coalesce);
        // And coalescing never produces adjacent mergeable runs.
        for w in coalesced.windows(2) {
            prop_assert!(w[0].0 + w[0].1.len() as u64 != w[1].0);
        }
    }

    /// Any permutation of adjacent chunk frames coalesces back into the
    /// maximal runs: one emitted write per gap-separated group, carrying
    /// the group's bytes in offset order, regardless of arrival order.
    #[test]
    fn permuted_adjacent_frames_coalesce_maximally(
        spec in vec((1u64..16, vec(1usize..12, 1..5)), 1..5),
        shuffle_seed in any::<u64>(),
    ) {
        // Lay out gap-separated groups of adjacent frames; byte values
        // record file position so placement errors are visible.
        let mut frames: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut expected: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut cursor = 0u64;
        for (gap, frame_lens) in &spec {
            cursor += gap;
            let start = cursor;
            let mut group = Vec::new();
            for &len in frame_lens {
                let bytes: Vec<u8> = (0..len).map(|i| (cursor + i as u64) as u8).collect();
                frames.push((cursor, bytes.clone()));
                group.extend_from_slice(&bytes);
                cursor += len as u64;
            }
            expected.push((start, group));
        }
        // Fisher–Yates with a seeded xorshift: an arbitrary permutation.
        let mut rng = shuffle_seed | 1;
        for i in (1..frames.len()).rev() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            frames.swap(i, (rng % (i as u64 + 1)) as usize);
        }
        let mut payload = Vec::new();
        for (off, data) in &frames {
            chunks::push_chunk(&mut payload, *off, 0, data);
        }
        let mut runs = Vec::new();
        let mut scratch = Vec::new();
        let mut got: Vec<(u64, Vec<u8>)> = Vec::new();
        chunks::for_each_coalesced_write::<fg_sort::SortError>(
            &payload,
            &mut runs,
            &mut scratch,
            |off, data| {
                got.push((off, data.to_vec()));
                Ok(())
            },
        )
        .unwrap();
        prop_assert_eq!(&got, &expected);
        // Maximality: no emitted run is mergeable with its successor.
        for w in got.windows(2) {
            prop_assert!(w[0].0 + w[0].1.len() as u64 != w[1].0);
        }
    }

    /// ExtKey serialization round-trips and preserves order.
    #[test]
    fn extkey_roundtrip_and_order(
        a in (any::<u64>(), any::<u32>(), any::<u64>()),
        b in (any::<u64>(), any::<u32>(), any::<u64>()),
    ) {
        let ka = ExtKey { key: a.0, node: a.1, seq: a.2 };
        let kb = ExtKey { key: b.0, node: b.1, seq: b.2 };
        prop_assert_eq!(ExtKey::from_bytes(&ka.to_bytes()).unwrap(), ka);
        // Order agrees with the tuple order.
        prop_assert_eq!(ka < kb, (a.0, a.1, a.2) < (b.0, b.1, b.2));
    }

    /// partition_of respects splitter boundaries for any sorted splitters.
    #[test]
    fn partition_respects_splitters(
        mut splitter_keys in vec(any::<u64>(), 1..8),
        probe in (any::<u64>(), any::<u32>(), any::<u64>()),
    ) {
        splitter_keys.sort_unstable();
        let splitters: Vec<ExtKey> = splitter_keys
            .iter()
            .map(|&key| ExtKey { key, node: 0, seq: 0 })
            .collect();
        let e = ExtKey { key: probe.0, node: probe.1, seq: probe.2 };
        let p = partition_of(&splitters, e);
        prop_assert!(p <= splitters.len());
        if p > 0 {
            prop_assert!(splitters[p - 1] < e);
        }
        if p < splitters.len() {
            prop_assert!(e <= splitters[p]);
        }
    }

    /// sort_bytes sorts and preserves the record multiset.
    #[test]
    fn sort_bytes_sorts_any_records(keys in vec(any::<u64>(), 0..100)) {
        let f = RecordFormat::REC16;
        let mut bytes = vec![0u8; keys.len() * 16];
        for (i, &k) in keys.iter().enumerate() {
            f.set_key(&mut bytes[i * 16..(i + 1) * 16], k);
            bytes[i * 16 + 12] = i as u8; // payload identity
        }
        let before = f.multiset_fingerprint(&bytes);
        let mut aux = Vec::new();
        f.sort_bytes(&mut bytes, &mut aux);
        prop_assert!(f.is_sorted(&bytes));
        prop_assert_eq!(f.multiset_fingerprint(&bytes), before);
    }

    /// The radix kernel is byte-identical to the stable comparison kernel
    /// — including duplicate-key stability via the index tiebreak — on
    /// both record formats.  Narrow key ranges force duplicates and
    /// degenerate (skippable) high digits.
    #[test]
    fn radix_kernel_is_byte_identical_to_comparison(
        keys in vec(0u64..32, 0..400),
        wide in any::<bool>(),
    ) {
        for f in [RecordFormat::REC16, RecordFormat::REC64] {
            let keys: Vec<u64> = if wide {
                // Spread across all eight digits too.
                keys.iter().map(|&k| k.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect()
            } else {
                keys.clone()
            };
            let pristine = records_with_payloads(f, &keys);
            let mut via_radix = pristine.clone();
            let mut via_cmp = pristine;
            let mut scratch = SortScratch::new();
            sort_records_using(f, &mut via_radix, &mut scratch, Kernel::Radix);
            sort_records_using(f, &mut via_cmp, &mut scratch, Kernel::Comparison);
            prop_assert_eq!(&via_radix, &via_cmp);
        }
    }

    /// Batched (galloping) merge output equals a scalar one-record-at-a-
    /// time LoserTree oracle under random lane contents and exhaustion
    /// patterns — byte-identical, so equal keys resolve to the same lane.
    #[test]
    fn batched_merge_matches_scalar_oracle(lanes in vec(vec(0u64..40, 0..50), 1..8)) {
        let f = RecordFormat::REC16;
        let rb = f.record_bytes;
        let runs: Vec<Vec<u8>> = lanes
            .iter()
            .enumerate()
            .map(|(lane, keys)| {
                let mut keys = keys.clone();
                keys.sort_unstable();
                let mut bytes = records_with_payloads(f, &keys);
                // Stamp the lane so cross-lane ties are distinguishable.
                for rec in bytes.chunks_exact_mut(rb) {
                    rec[10] = lane as u8;
                }
                bytes
            })
            .collect();
        let run_refs: Vec<&[u8]> = runs.iter().map(|r| r.as_slice()).collect();

        // Scalar oracle: one winner/replace per record.
        let mut offsets = vec![0usize; runs.len()];
        let head = |run: &[u8], off: usize| -> Option<(u64, u64)> {
            (off < run.len()).then(|| (f.key(&run[off..off + rb]), 0))
        };
        let mut tree = LoserTree::new(
            runs.iter().zip(&offsets).map(|(r, &o)| head(r, o)).collect(),
        );
        let mut oracle = Vec::new();
        while let Some((lane, _)) = tree.winner() {
            let off = offsets[lane];
            oracle.extend_from_slice(&runs[lane][off..off + rb]);
            offsets[lane] += rb;
            tree.replace(lane, head(&runs[lane], offsets[lane]));
        }

        // merge_runs takes the batched MergeRun path.
        let batched = merge_runs(f, &run_refs);
        prop_assert_eq!(&batched, &oracle);
    }
}
