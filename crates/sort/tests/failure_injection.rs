//! Failure injection: a disk that dies mid-run must surface as a clean
//! error from the whole stack — FG program torn down, cluster poisoned,
//! the run function returning `Err` instead of hanging or panicking.

use fg_sort::config::SortConfig;
use fg_sort::csort::run_csort;
use fg_sort::dsort::run_dsort;
use fg_sort::dsort_linear::run_dsort_linear;
use fg_sort::input::provision;
use fg_sort::SortError;

#[test]
fn dsort_surfaces_disk_failure() {
    let cfg = SortConfig::test_default(4, 2048);
    let disks = provision(&cfg);
    // Node 2's disk dies after a handful of operations (mid pass 1).
    disks[2].fail_after_ops(10);
    let err = run_dsort(&cfg, &disks).expect_err("must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("disk failed"),
        "error should carry the root cause: {msg}"
    );
}

#[test]
fn csort_surfaces_disk_failure() {
    let cfg = SortConfig::test_default(4, 4096);
    let disks = provision(&cfg);
    disks[0].fail_after_ops(3);
    let err = run_csort(&cfg, &disks).expect_err("must fail");
    assert!(err.to_string().contains("disk failed"), "{err}");
}

#[test]
fn dsort_linear_surfaces_disk_failure() {
    let cfg = SortConfig::test_default(3, 1536);
    let disks = provision(&cfg);
    disks[1].fail_after_ops(5);
    let err = run_dsort_linear(&cfg, &disks).expect_err("must fail");
    assert!(err.to_string().contains("disk failed"), "{err}");
}

#[test]
fn failure_late_in_run_still_clean() {
    // Die during pass 2 (after the input has been fully distributed).
    let cfg = SortConfig::test_default(2, 2048);
    let disks = provision(&cfg);
    // Pass 1 on 2 nodes with these sizes takes well under 200 ops; allow
    // enough to get into pass 2's reads.
    disks[0].fail_after_ops(60);
    let result = run_dsort(&cfg, &disks);
    match result {
        Err(SortError::Comm(m)) => assert!(m.contains("disk failed"), "{m}"),
        Err(other) => {
            assert!(other.to_string().contains("disk failed"), "{other}")
        }
        Ok(_) => panic!("run must not succeed with a dead disk"),
    }
}

#[test]
fn healthy_run_unaffected_by_injection_api() {
    let cfg = SortConfig::test_default(2, 1024);
    let disks = provision(&cfg);
    disks[0].fail_after_ops(u64::MAX); // explicit "healthy"
    run_dsort(&cfg, &disks).expect("healthy run succeeds");
}
