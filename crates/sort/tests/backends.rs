//! Cross-backend end-to-end runs: the same seed must produce byte-identical
//! sorted output whether the disks are in-memory [`SimDisk`]s, real-file
//! `OsDisk`s, or scheduler-wrapped `OsDisk`s (`io_depth > 0`).  The disk
//! backend is an execution substrate, never part of the algorithm.

use fg_pdm::{ScratchDir, Striping};
use fg_sort::config::{DiskBackend, SortConfig};
use fg_sort::csort::run_csort;
use fg_sort::dsort::run_dsort;
use fg_sort::input::try_provision;
use fg_sort::keygen::KeyDist;
use fg_sort::verify::{verify_output, Strictness, OUTPUT_FILE};

/// Run `sort` on `cfg`'s backend and return the assembled striped output.
fn sorted_output(
    cfg: &SortConfig,
    sort: impl Fn(&SortConfig, &[fg_pdm::DiskRef]) -> Result<(), fg_sort::SortError>,
) -> Vec<u8> {
    let disks = try_provision(cfg).expect("provision");
    sort(cfg, &disks).expect("sort run");
    verify_output(cfg, &disks, Strictness::Exact).expect("verified output");
    Striping::new(cfg.nodes, cfg.block_bytes)
        .assemble(&disks, OUTPUT_FILE, cfg.total_bytes())
        .expect("assemble output")
}

fn os_cfg(base: &SortConfig, scratch: &ScratchDir, tag: &str, io_depth: usize) -> SortConfig {
    let mut cfg = base.clone();
    cfg.backend = DiskBackend::Os {
        dir: scratch.path().join(tag),
    };
    cfg.io_depth = io_depth;
    cfg
}

#[test]
fn dsort_output_identical_across_backends() {
    let scratch = ScratchDir::new("backends-dsort").unwrap();
    let mut base = SortConfig::test_default(4, 1024);
    base.dist = KeyDist::StdNormal;
    let run = |cfg: &SortConfig, disks: &[fg_pdm::DiskRef]| run_dsort(cfg, disks).map(|_| ());

    let sim = sorted_output(&base, run);
    let os = sorted_output(&os_cfg(&base, &scratch, "bare", 0), run);
    let scheduled = sorted_output(&os_cfg(&base, &scratch, "sched", 3), run);
    assert_eq!(sim, os, "sim and os backends diverged");
    assert_eq!(sim, scheduled, "scheduler changed dsort's output");
}

#[test]
fn csort_output_identical_across_backends() {
    let scratch = ScratchDir::new("backends-csort").unwrap();
    let base = SortConfig::test_default(2, 768);

    let run = |cfg: &SortConfig, disks: &[fg_pdm::DiskRef]| run_csort(cfg, disks).map(|_| ());
    let sim = sorted_output(&base, run);
    let os = sorted_output(&os_cfg(&base, &scratch, "bare", 0), run);
    let scheduled = sorted_output(&os_cfg(&base, &scratch, "sched", 2), run);
    assert_eq!(sim, os, "sim and os backends diverged");
    assert_eq!(sim, scheduled, "scheduler changed csort's output");
}

#[test]
fn os_backend_reuses_dirty_directory() {
    // Provisioning must scrub stale files left by an earlier run in the
    // same --dir before loading fresh input.
    let scratch = ScratchDir::new("backends-reuse").unwrap();
    let cfg = os_cfg(&SortConfig::test_default(2, 512), &scratch, "d", 2);
    for _ in 0..2 {
        let disks = try_provision(&cfg).expect("provision");
        run_dsort(&cfg, &disks).expect("dsort run");
        verify_output(&cfg, &disks, Strictness::Fingerprint).expect("verified output");
    }
}
