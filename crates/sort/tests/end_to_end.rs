//! End-to-end tests: full dsort, csort, and dsort-linear runs on the
//! simulated cluster, verified sorted ∧ striped ∧ permutation-preserving.

use std::sync::Arc;

use fg_core::MetricsRegistry;
use fg_sort::config::SortConfig;
use fg_sort::csort::run_csort;
use fg_sort::dsort::{run_dsort, run_dsort_with, DsortOptions};
use fg_sort::dsort_linear::run_dsort_linear;
use fg_sort::input::{provision, provision_with_metrics};
use fg_sort::keygen::KeyDist;
use fg_sort::verify::{verify_output, Strictness};

fn check_dsort(cfg: &SortConfig) {
    let disks = provision(cfg);
    let report = run_dsort(cfg, &disks).expect("dsort run");
    verify_output(cfg, &disks, Strictness::Exact).expect("dsort output");
    let total: u64 = report.partition_records.iter().sum();
    assert_eq!(total, cfg.total_records() as u64);
}

fn check_csort(cfg: &SortConfig) {
    let disks = provision(cfg);
    run_csort(cfg, &disks).expect("csort run");
    verify_output(cfg, &disks, Strictness::Exact).expect("csort output");
}

fn check_dsort_linear(cfg: &SortConfig) {
    let disks = provision(cfg);
    run_dsort_linear(cfg, &disks).expect("dsort-linear run");
    verify_output(cfg, &disks, Strictness::Exact).expect("dsort-linear output");
}

#[test]
fn dsort_uniform_4_nodes() {
    check_dsort(&SortConfig::test_default(4, 4096));
}

#[test]
fn dsort_all_equal_keys() {
    let mut cfg = SortConfig::test_default(4, 2048);
    cfg.dist = KeyDist::AllEqual;
    check_dsort(&cfg);
}

#[test]
fn dsort_std_normal() {
    let mut cfg = SortConfig::test_default(4, 2048);
    cfg.dist = KeyDist::StdNormal;
    check_dsort(&cfg);
}

#[test]
fn dsort_poisson() {
    let mut cfg = SortConfig::test_default(4, 2048);
    cfg.dist = KeyDist::Poisson;
    check_dsort(&cfg);
}

#[test]
fn dsort_single_node() {
    check_dsort(&SortConfig::test_default(1, 2048));
}

#[test]
fn dsort_two_nodes_shifted_adversarial() {
    let mut cfg = SortConfig::test_default(2, 2048);
    cfg.dist = KeyDist::Shifted { shift: 1 };
    check_dsort(&cfg);
}

#[test]
fn dsort_hotkey_adversarial() {
    let mut cfg = SortConfig::test_default(4, 2048);
    cfg.dist = KeyDist::HotKey { hot_percent: 90 };
    check_dsort(&cfg);
}

#[test]
fn dsort_without_virtual_reads_matches() {
    let cfg = SortConfig::test_default(3, 3072);
    let disks = provision(&cfg);
    let report = run_dsort_with(
        &cfg,
        &disks,
        DsortOptions {
            virtual_reads: false,
            ..DsortOptions::default()
        },
    )
    .expect("dsort run");
    verify_output(&cfg, &disks, Strictness::Exact).expect("output");
    // Non-virtual pass 2 spawns at least 3 threads per run pipeline
    // (stage + source + sink); virtual keeps it flat.
    let runs: u64 = report.runs_per_node.iter().sum();
    let threads: u64 = report.pass2_threads.iter().sum();
    assert!(threads > runs, "expected per-run threads, got {report:?}");
}

#[test]
fn dsort_with_metrics_collects_comm_and_disk_metrics() {
    let cfg = SortConfig::test_default(3, 1536);
    let registry = Arc::new(MetricsRegistry::new());
    let disks = provision_with_metrics(&cfg, &registry);
    let report = run_dsort_with(
        &cfg,
        &disks,
        DsortOptions {
            metrics: Some(Arc::clone(&registry)),
            ..DsortOptions::default()
        },
    )
    .expect("dsort run");
    verify_output(&cfg, &disks, Strictness::Exact).expect("output");

    let m = &report.metrics;
    // Comm: per-peer byte counters agree with the fabric's accounting,
    // and every node timed the collectives at least once.
    let fabric_bytes: u64 = report.bytes_sent.iter().sum();
    let metric_bytes: u64 = m
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("comm/bytes/"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(fabric_bytes, metric_bytes);
    // Collective latencies are labelled per rank: every node timed its own
    // barrier calls.
    for rank in 0..cfg.nodes {
        let h = m.histogram(&format!("comm/barrier_ns/r{rank}")).unwrap();
        assert!(h.count >= 1, "rank {rank} recorded no barriers");
    }
    // Disk: each labeled disk's byte counters match its own stats.
    for (rank, disk) in disks.iter().enumerate() {
        let stats = disk.stats();
        assert_eq!(
            m.counter(&format!("disk/d{rank}/bytes_read")),
            Some(stats.bytes_read)
        );
        assert_eq!(
            m.counter(&format!("disk/d{rank}/bytes_written")),
            Some(stats.bytes_written)
        );
        assert!(m.histogram(&format!("disk/d{rank}/read_ns")).unwrap().count > 0);
    }
}

#[test]
fn dsort_observed_builds_cluster_report_and_cross_rank_trace() {
    let mut cfg = SortConfig::test_default(4, 2048);
    let sink = fg_core::TraceSink::new();
    cfg.trace_sink = Some(Arc::clone(&sink));
    let disks = provision(&cfg);
    let report = run_dsort_with(
        &cfg,
        &disks,
        DsortOptions {
            observe: true,
            ..DsortOptions::default()
        },
    )
    .expect("dsort run");
    verify_output(&cfg, &disks, Strictness::Exact).expect("output");

    // Every rank's FG reports and registry snapshot are in the merged
    // cluster report.
    let cluster = report.cluster.as_ref().expect("cluster report");
    assert_eq!(cluster.nodes, cfg.nodes);
    assert_eq!(cluster.ranks.len(), cfg.nodes);
    for r in &cluster.ranks {
        assert_eq!(r.reports.len(), 2, "rank {} pass reports", r.rank);
        assert!(r.wall > std::time::Duration::ZERO);
        assert!(
            r.collective_ns() > 0,
            "rank {} timed no collectives",
            r.rank
        );
    }
    // The traffic matrix accounts for every byte the fabric moved.
    let matrix_total: u64 = cluster.traffic_matrix().iter().flatten().sum();
    let fabric_total: u64 = report.bytes_sent.iter().sum();
    assert_eq!(matrix_total, fabric_total);
    // The cluster diagnosis runs off the same report (balanced input:
    // nothing should scream).
    let d = fg_core::diagnose_cluster(cluster);
    assert_eq!(d.ranks.len(), cfg.nodes);

    // The merged Chrome trace has one track group per rank and at least
    // one flow that crosses rank boundaries (a pass-1 send stitched to a
    // remote comm-recv, or a collective spanning all ranks).
    let trace = sink.to_chrome_trace();
    let j = fg_core::Json::parse(&trace).expect("chrome trace is JSON");
    let events = j
        .get("traceEvents")
        .and_then(|e| e.as_arr().map(<[_]>::to_vec))
        .unwrap();
    let mut node_pids = std::collections::HashSet::new();
    for e in &events {
        if e.get("name").and_then(fg_core::Json::as_str) == Some("process_name") {
            node_pids.insert(e.get("pid").and_then(fg_core::Json::as_u64).unwrap());
        }
    }
    assert_eq!(node_pids.len(), cfg.nodes, "one track group per rank");
    // Group flow events by id; a cross-rank flow touches >= 2 pids.
    let mut flow_pids: std::collections::HashMap<String, std::collections::HashSet<u64>> =
        std::collections::HashMap::new();
    for e in &events {
        if matches!(
            e.get("ph").and_then(fg_core::Json::as_str),
            Some("s") | Some("t") | Some("f")
        ) {
            let id = e
                .get("id")
                .and_then(fg_core::Json::as_str)
                .unwrap()
                .to_string();
            let pid = e.get("pid").and_then(fg_core::Json::as_u64).unwrap();
            flow_pids.entry(id).or_default().insert(pid);
        }
    }
    assert!(
        flow_pids.values().any(|pids| pids.len() >= 2),
        "no flow crosses rank boundaries"
    );
}

#[test]
fn dsort_odd_sizes_partial_blocks() {
    // records_per_node chosen so the last block is partial.
    let mut cfg = SortConfig::test_default(3, 1000);
    cfg.block_bytes = 96 * 16;
    cfg.run_bytes = 96 * 16 * 2;
    check_dsort(&cfg);
}

#[test]
fn csort_uniform_4_nodes() {
    check_csort(&SortConfig::test_default(4, 4096));
}

#[test]
fn csort_all_equal() {
    let mut cfg = SortConfig::test_default(4, 4096);
    cfg.dist = KeyDist::AllEqual;
    check_csort(&cfg);
}

#[test]
fn csort_poisson_two_nodes() {
    let mut cfg = SortConfig::test_default(2, 2048);
    cfg.dist = KeyDist::Poisson;
    check_csort(&cfg);
}

#[test]
fn csort_sixteen_nodes_small() {
    check_csort(&SortConfig::test_default(16, 1024));
}

#[test]
fn csort_with_sort_workers() {
    // Farmed sort stages (Program::workers) must leave the lockstep
    // communication stages downstream correct: the output is still exactly
    // sorted, striped, and a permutation of the input.
    let mut cfg = SortConfig::test_default(4, 4096);
    cfg.workers = 3;
    check_csort(&cfg);
    cfg.dist = KeyDist::Poisson;
    check_csort(&cfg);
}

#[test]
fn dsort_sixteen_nodes_small() {
    check_dsort(&SortConfig::test_default(16, 1024));
}

#[test]
fn dsort_linear_uniform() {
    check_dsort_linear(&SortConfig::test_default(4, 2048));
}

#[test]
fn dsort_linear_all_equal() {
    let mut cfg = SortConfig::test_default(3, 1536);
    cfg.dist = KeyDist::AllEqual;
    check_dsort_linear(&cfg);
}

#[test]
fn all_three_sorts_agree_on_key_sequence() {
    let mut cfg = SortConfig::test_default(4, 2048);
    cfg.dist = KeyDist::Poisson;
    // Exact strictness compares key sequences against the reference sort,
    // so running all three with it proves they agree with each other.
    check_dsort(&cfg);
    check_csort(&cfg);
    check_dsort_linear(&cfg);
}

#[test]
fn dsort_partitions_within_balance_bound() {
    // The paper: "In our experiments, all partition sizes were at most 10%
    // greater than the average."  Verify with generous margin at small
    // sample sizes for the benign distributions.
    for dist in [KeyDist::Uniform, KeyDist::AllEqual] {
        let mut cfg = SortConfig::test_default(4, 8192);
        cfg.dist = dist;
        cfg.oversample = 32;
        let disks = provision(&cfg);
        let report = run_dsort(&cfg, &disks).expect("dsort");
        let avg = cfg.records_per_node as f64;
        for (i, &p) in report.partition_records.iter().enumerate() {
            assert!(
                (p as f64) < avg * 1.35,
                "{dist:?} partition {i} = {p}, avg = {avg}: {:?}",
                report.partition_records
            );
        }
    }
}

mod csort4_tests {
    use super::*;
    use fg_sort::csort4::run_csort4;

    fn check_csort4(cfg: &SortConfig) {
        let disks = provision(cfg);
        run_csort4(cfg, &disks).expect("csort4 run");
        verify_output(cfg, &disks, Strictness::Exact).expect("csort4 output");
    }

    #[test]
    fn csort4_uniform_4_nodes() {
        check_csort4(&SortConfig::test_default(4, 4096));
    }

    #[test]
    fn csort4_all_equal() {
        let mut cfg = SortConfig::test_default(4, 4096);
        cfg.dist = KeyDist::AllEqual;
        check_csort4(&cfg);
    }

    #[test]
    fn csort4_poisson_two_nodes() {
        let mut cfg = SortConfig::test_default(2, 2048);
        cfg.dist = KeyDist::Poisson;
        check_csort4(&cfg);
    }

    #[test]
    fn csort4_single_node() {
        check_csort4(&SortConfig::test_default(1, 4096));
    }

    #[test]
    fn csort4_sixteen_nodes() {
        check_csort4(&SortConfig::test_default(16, 1024));
    }

    #[test]
    fn csort4_with_sort_workers() {
        let mut cfg = SortConfig::test_default(4, 4096);
        cfg.workers = 3;
        check_csort4(&cfg);
    }

    #[test]
    fn csort4_does_more_io_than_csort3() {
        let cfg = SortConfig::test_default(4, 4096);
        let disks3 = provision(&cfg);
        let c3 = run_csort(&cfg, &disks3).expect("csort3");
        let disks4 = provision(&cfg);
        let c4 = run_csort4(&cfg, &disks4).expect("csort4");
        let io3: u64 = c3.disk_stats.iter().map(|s| s.bytes_total()).sum();
        let io4: u64 = c4.disk_stats.iter().map(|s| s.bytes_total()).sum();
        let ratio = io4 as f64 / io3 as f64;
        assert!(
            (1.2..1.5).contains(&ratio),
            "four passes should do ~4/3 the I/O of three: {ratio:.2}"
        );
    }
}
