//! CI-enforced form of the "steady-state rounds allocate nothing" claim:
//! this test binary installs the tracking allocator
//! ([`fg_core::FgAlloc`]), warms a sort kernel once (scratch growth is
//! by-design allocation), and then asserts that every further sort round
//! performs **zero** heap allocations.  Integration tests are separate
//! binaries, so installing the global allocator here affects nothing
//! else in the workspace.

use fg_sort::kernels::SortScratch;
use fg_sort::record::RecordFormat;

#[global_allocator]
static FG_ALLOC: fg_core::FgAlloc = fg_core::FgAlloc;

/// Refill `bytes` with deterministic pseudo-random keys, in place — the
/// refill itself must not allocate or it would pollute the measurement.
fn refill(fmt: RecordFormat, bytes: &mut [u8], seed: u64) {
    let mut x = seed | 1;
    let rb = fmt.record_bytes;
    for i in 0..bytes.len() / rb {
        // xorshift64
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        fmt.set_key(&mut bytes[i * rb..(i + 1) * rb], x);
    }
}

fn assert_steady_state(fmt: RecordFormat) {
    let records = 4096;
    let mut data = vec![0u8; records * fmt.record_bytes];
    let mut scratch = SortScratch::new();

    // Warmup round: the scratch grows to the working size here, and only
    // here.  Tagged so a resource report attributes it as setup.
    let warmup = fg_core::register_tag("sort/warmup");
    refill(fmt, &mut data, 0xFEED);
    fg_core::with_tag(warmup, || {
        fmt.sort_bytes_with(&mut data, &mut scratch);
    });

    // Steady state: same buffer size, fresh keys each round; the kernel
    // must reuse its scratch and never touch the heap.
    for round in 0..3u64 {
        refill(fmt, &mut data, 0xBEEF ^ round);
        fg_core::assert_steady_state_alloc_free("kernel-sort", || {
            fmt.sort_bytes_with(&mut data, &mut scratch);
        });
    }

    // Sanity: the sort actually sorted.
    let keys: Vec<u64> = fmt.records(&data).map(|r| fmt.key(r)).collect();
    assert!(keys.windows(2).all(|w| w[0] <= w[1]), "output not sorted");
}

#[test]
fn warmed_kernel_sort_is_alloc_free_in_steady_state() {
    // The assertion only bites when the wrapper really is the global
    // allocator; building `data` above guarantees at least one recorded
    // allocation, so this must hold here.
    let _ = vec![0u8; 16];
    assert!(
        fg_core::alloc::installed(),
        "FgAlloc should be installed in this test binary"
    );
    assert_steady_state(RecordFormat::REC16);
    assert_steady_state(RecordFormat::REC64);
}
