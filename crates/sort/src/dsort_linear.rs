//! dsort-linear: the ablation the paper's conclusion calls for.
//!
//! "An obvious question would be how much faster dsort runs with multiple
//! pipelines on each node compared with an implementation restricted to
//! single, linear pipelines on each node" (§VIII).  This module is that
//! restricted implementation:
//!
//! * **Pass 1** is one linear pipeline `read → permute → exchange → sort →
//!   write`.  Without disjoint send/receive pipelines, distribution must be
//!   synchronous: every round, all nodes exchange that round's records with
//!   a blocking `alltoallv`, so a node's send rate is locked to its receive
//!   rate and to every other node's progress.  Each round's received batch
//!   becomes one sorted run (runs are smaller and more numerous than
//!   dsort's, and their sizes vary with the data).
//! * **Pass 2** is one linear pipeline `merge-read → exchange → write`.
//!   Without intersecting pipelines there is no read-ahead on the runs: the
//!   merge stage performs synchronous disk reads inline.  Without disjoint
//!   pipelines the striping exchange is again a per-round `alltoallv`,
//!   padded to the cluster-wide maximum round count so the collective
//!   stays aligned.
//!
//! The "extensive bookkeeping" the paper predicts shows up as exactly this
//! padding, carry, and lockstep logic.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_cluster::{Cluster, ClusterCfg, ClusterError, Communicator};
use fg_core::{map_stage, PipelineCfg, Program, Rounds};
use fg_pdm::{DiskRef, Striping};
use parking_lot::Mutex;

use crate::chunks::{self, CHUNK_HEADER_BYTES};
use crate::config::SortConfig;
use crate::dsort::sampling;
use crate::input::INPUT_FILE;
use crate::merge::LoserTree;
use crate::record::{partition_of, ExtKey};
use crate::verify::OUTPUT_FILE;
use crate::SortError;

/// Runs file for the linear variant.
pub const RUNS_FILE: &str = "dsort_linear_runs";

/// Timings from one dsort-linear run.
#[derive(Debug, Clone)]
pub struct DsortLinearReport {
    /// Max-across-nodes wall time of the sampling phase.
    pub sampling: Duration,
    /// Max-across-nodes wall time of pass 1.
    pub pass1: Duration,
    /// Max-across-nodes wall time of pass 2.
    pub pass2: Duration,
}

impl DsortLinearReport {
    /// Total wall time.
    pub fn total(&self) -> Duration {
        self.sampling + self.pass1 + self.pass2
    }
}

/// Run the single-linear-pipeline dsort variant.
pub fn run_dsort_linear(
    cfg: &SortConfig,
    disks: &[DiskRef],
) -> Result<DsortLinearReport, SortError> {
    cfg.validate()?;
    if disks.len() != cfg.nodes {
        return Err(SortError::Config(format!(
            "need {} disks, got {}",
            cfg.nodes,
            disks.len()
        )));
    }
    let cfg = cfg.clone();
    let disks_arc: Vec<DiskRef> = disks.to_vec();

    let run = Cluster::run(
        ClusterCfg {
            nodes: cfg.nodes,
            net: cfg.net,
        },
        move |node| -> Result<[Duration; 3], ClusterError> {
            let rank = node.rank();
            let comm = node.comm().clone();
            let disk = Arc::clone(&disks_arc[rank]);

            comm.barrier()?;
            let t0 = Instant::now();
            let splitters =
                sampling::select_splitters(&cfg, rank, &comm, &disk).map_err(ClusterError::from)?;
            comm.barrier()?;
            let sampling_ns = comm.allreduce_max(t0.elapsed().as_nanos() as u64)?;

            comm.barrier()?;
            let t1 = Instant::now();
            let (run_lens, received) =
                pass1_linear(&cfg, rank, &comm, &disk, &splitters).map_err(ClusterError::from)?;
            comm.barrier()?;
            let pass1_ns = comm.allreduce_max(t1.elapsed().as_nanos() as u64)?;

            comm.barrier()?;
            let t2 = Instant::now();
            let partitions = comm.allgather_u64(received)?;
            let rank_offset: u64 = partitions[..rank].iter().sum();
            pass2_linear(
                &cfg,
                rank,
                &comm,
                &disk,
                &run_lens,
                rank_offset,
                &partitions,
            )
            .map_err(ClusterError::from)?;
            comm.barrier()?;
            let pass2_ns = comm.allreduce_max(t2.elapsed().as_nanos() as u64)?;

            Ok([
                Duration::from_nanos(sampling_ns),
                Duration::from_nanos(pass1_ns),
                Duration::from_nanos(pass2_ns),
            ])
        },
    )
    .map_err(|e| SortError::Comm(e.to_string()))?;

    let t = run.results[0];
    Ok(DsortLinearReport {
        sampling: t[0],
        pass1: t[1],
        pass2: t[2],
    })
}

/// Pass 1 on one node: synchronous distribution, one run per round.
fn pass1_linear(
    cfg: &SortConfig,
    rank: usize,
    comm: &Communicator,
    disk: &DiskRef,
    splitters: &[ExtKey],
) -> Result<(Vec<u64>, u64), SortError> {
    let nodes = cfg.nodes;
    let rb = cfg.record.record_bytes;
    let input_bytes = cfg.bytes_per_node() as usize;
    let nblocks = input_bytes.div_ceil(cfg.block_bytes) as u64;
    // Worst case a node receives everything every round.
    let buf_bytes = nodes * cfg.block_bytes + nodes * CHUNK_HEADER_BYTES + 64;

    let mut prog = Program::new(format!("dsortlin-p1-n{rank}"));
    cfg.instrument(&mut prog);

    let read_disk = Arc::clone(disk);
    let block_bytes = cfg.block_bytes;
    let read = prog.add_stage(
        "read",
        map_stage(move |buf, _ctx| {
            let off = buf.round() * block_bytes as u64;
            let want = block_bytes.min(input_bytes - off as usize);
            read_disk
                .read_at(INPUT_FILE, off, &mut buf.space_mut()[..want])
                .map_err(SortError::from)?;
            buf.set_filled(want);
            Ok(())
        }),
    );

    let fmt = cfg.record;
    let splits = splitters.to_vec();
    let records_per_block = cfg.records_per_block();
    let permute = prog.add_stage(
        "permute",
        map_stage(move |buf, ctx| {
            let base_seq = buf.round() * records_per_block as u64;
            let n = fmt.count(buf.filled());
            let mut groups: Vec<Vec<u8>> = vec![Vec::new(); nodes];
            for (i, rec) in fmt.records(buf.filled()).enumerate() {
                let e = ExtKey {
                    key: fmt.key(rec),
                    node: rank as u32,
                    seq: base_seq + i as u64,
                };
                groups[partition_of(&splits, e)].extend_from_slice(rec);
            }
            let mut packed = Vec::with_capacity(buf.len() + nodes * CHUNK_HEADER_BYTES);
            for (d, g) in groups.iter().enumerate() {
                chunks::push_chunk(&mut packed, d as u64, 0, g);
            }
            let _ = (ctx, n);
            buf.copy_from(&packed);
            Ok(())
        }),
    );

    // exchange: blocking alltoallv per round — send rate chained to receive
    // rate, all nodes in lockstep.
    let comm2 = comm.clone();
    let exchange = prog.add_stage(
        "exchange",
        map_stage(move |buf, _ctx| {
            let mut parts: Vec<Vec<u8>> = vec![Vec::new(); nodes];
            for chunk in chunks::iter_chunks(buf.filled()) {
                let chunk = chunk?;
                parts[chunk.a as usize] = chunk.data.to_vec();
            }
            let received = comm2.alltoallv(parts).map_err(SortError::from)?;
            buf.clear();
            for part in received {
                let n = buf.append(&part);
                debug_assert_eq!(n, part.len(), "linear pass-1 buffer overflow");
            }
            Ok(())
        }),
    );

    let fmt2 = cfg.record;
    let sort = prog.add_stage("sort", {
        let mut scratch = cfg.sort_scratch();
        map_stage(move |buf, _ctx| {
            fmt2.sort_bytes_with(buf.filled_mut(), &mut scratch);
            Ok(())
        })
    });

    let run_lens = Arc::new(Mutex::new(Vec::<u64>::new()));
    let rl = Arc::clone(&run_lens);
    let received_total = Arc::new(Mutex::new(0u64));
    let rt = Arc::clone(&received_total);
    let write_disk = Arc::clone(disk);
    let write = prog.add_stage(
        "write",
        map_stage(move |buf, _ctx| {
            if !buf.is_empty() {
                write_disk
                    .append(RUNS_FILE, buf.filled())
                    .map_err(SortError::from)?;
                rl.lock().push(buf.len() as u64);
                *rt.lock() += (buf.len() / rb) as u64;
            }
            Ok(())
        }),
    );

    prog.add_pipeline(
        PipelineCfg::new("pass1", cfg.pipeline_buffers, buf_bytes).rounds(Rounds::Count(nblocks)),
        &[read, permute, exchange, sort, write],
    )?;
    prog.run()?;
    // Write barrier: pass 2 reads the run file this pass appended.
    disk.flush().map_err(SortError::from)?;

    let lens = run_lens.lock().clone();
    let total = *received_total.lock();
    Ok((lens, total))
}

/// Pass 2 on one node: inline synchronous merge, lockstep striping.
#[allow(clippy::too_many_arguments)]
fn pass2_linear(
    cfg: &SortConfig,
    rank: usize,
    comm: &Communicator,
    disk: &DiskRef,
    run_lens: &[u64],
    rank_offset: u64,
    partitions: &[u64],
) -> Result<(), SortError> {
    let nodes = cfg.nodes;
    let rb = cfg.record.record_bytes;
    let block = cfg.block_bytes;
    // Lockstep round count: enough rounds for the largest partition.
    let max_records = partitions.iter().copied().max().unwrap_or(0);
    let rounds = (max_records * rb as u64).div_ceil(block as u64).max(1);
    let striping = Striping::new(nodes, block);
    let buf_bytes = nodes * block + nodes * 4 * CHUNK_HEADER_BYTES + 64;

    let mut prog = Program::new(format!("dsortlin-p2-n{rank}"));
    cfg.instrument(&mut prog);

    // merge-read: synchronous inline k-way merge, one output block per
    // round (possibly empty padding rounds at the end).
    let merge_disk = Arc::clone(disk);
    let fmt = cfg.record;
    let run_lens_v = run_lens.to_vec();
    let mergeread = prog.add_stage("mergeread", {
        let offsets: Vec<u64> = {
            let mut acc = 0u64;
            run_lens_v
                .iter()
                .map(|&l| {
                    let o = acc;
                    acc += l;
                    o
                })
                .collect()
        };
        let mut consumed: Vec<u64> = vec![0; run_lens_v.len()];
        // Head record cache per run (read one record at a time:
        // deliberately unbuffered — this is the no-read-ahead ablation,
        // but reading record-by-record would be absurd even for the
        // baseline, so keep a one-block cache per run, refilled
        // synchronously in the pipeline's only thread).
        let mut caches: Vec<Vec<u8>> = vec![Vec::new(); run_lens_v.len()];
        let mut cache_pos: Vec<usize> = vec![0; run_lens_v.len()];
        let mut tree: Option<LoserTree> = None;
        let mut batch_policy = crate::merge::BatchPolicy::new();
        let mut produced = 0u64;
        map_stage(move |buf, _ctx| {
            let k = run_lens_v.len();
            // Synchronously refill a run's cache; returns head key or None.
            let mut refill = |j: usize,
                              caches: &mut Vec<Vec<u8>>,
                              cache_pos: &mut Vec<usize>|
             -> Result<Option<u64>, SortError> {
                if cache_pos[j] < caches[j].len() {
                    return Ok(Some(fmt.key(&caches[j][cache_pos[j]..])));
                }
                let remaining = run_lens_v[j] - consumed[j];
                if remaining == 0 {
                    return Ok(None);
                }
                let want = (block as u64).min(remaining) as usize;
                let data = merge_disk.read_up_to(RUNS_FILE, offsets[j] + consumed[j], want)?;
                consumed[j] += data.len() as u64;
                caches[j] = data;
                cache_pos[j] = 0;
                if caches[j].is_empty() {
                    Ok(None)
                } else {
                    Ok(Some(fmt.key(&caches[j][..])))
                }
            };
            if tree.is_none() && k > 0 {
                let mut heads = Vec::with_capacity(k);
                for j in 0..k {
                    heads.push(refill(j, &mut caches, &mut cache_pos)?.map(|key| (key, 0)));
                }
                tree = Some(LoserTree::new(heads));
            }
            buf.clear();
            buf.meta = rank_offset + produced;
            // One stripe block of output per round (the buffer itself is
            // larger: it must also hold the round's *received* pieces).
            while buf.len() < block {
                let (lane, _) = match tree.as_ref().and_then(|t| t.winner()) {
                    Some(w) => w,
                    None => break,
                };
                // MergeRun fast path: batch every cached record of this
                // lane that still beats the runner-up, capped to the
                // block's remaining space.  The policy backs off to scalar
                // steps while the runs interleave too finely to batch.
                let pos = cache_pos[lane];
                let avail = &caches[lane][pos..];
                let run = batch_policy.merge_run(tree.as_ref().expect("tree"), fmt, avail);
                let n = run.min((block - buf.len()) / rb).max(1);
                buf.append(&avail[..n * rb]);
                cache_pos[lane] += n * rb;
                produced += n as u64;
                let next = refill(lane, &mut caches, &mut cache_pos)?.map(|key| (key, 0));
                tree.as_mut().expect("tree").replace(lane, next);
            }
            let _ = offsets.len();
            Ok(())
        })
    });

    // exchange: per-round alltoallv of stripe pieces (padded rounds send
    // nothing but still participate).
    let comm2 = comm.clone();
    let exchange = prog.add_stage(
        "exchange",
        map_stage(move |buf, _ctx| {
            let goff = buf.meta * rb as u64;
            let mut parts: Vec<Vec<u8>> = vec![Vec::new(); nodes];
            {
                let data = buf.filled();
                for (dest, _local, range) in striping.split_range(goff, data.len()) {
                    chunks::push_chunk(
                        &mut parts[dest],
                        goff + range.start as u64,
                        0,
                        &data[range],
                    );
                }
            }
            let received = comm2.alltoallv(parts).map_err(SortError::from)?;
            buf.clear();
            for part in received {
                let n = buf.append(&part);
                debug_assert_eq!(n, part.len(), "linear pass-2 buffer overflow");
            }
            Ok(())
        }),
    );

    let write_disk = Arc::clone(disk);
    let striping_w = Striping::new(nodes, block);
    let write = prog.add_stage("write", {
        let mut relocated: Vec<u8> = Vec::new();
        let mut runs = Vec::new();
        let mut scratch = Vec::new();
        map_stage(move |buf, _ctx| {
            relocated.clear();
            for chunk in chunks::iter_chunks(buf.filled()) {
                let chunk = chunk?;
                let (dest, local) = striping_w.locate_byte(chunk.a);
                debug_assert_eq!(dest, rank);
                chunks::push_chunk(&mut relocated, local, 0, chunk.data);
            }
            chunks::for_each_coalesced_write(&relocated, &mut runs, &mut scratch, |off, data| {
                write_disk
                    .write_at(OUTPUT_FILE, off, data)
                    .map_err(SortError::from)?;
                Ok(())
            })
        })
    });

    prog.add_pipeline(
        PipelineCfg::new("pass2", cfg.pipeline_buffers, buf_bytes).rounds(Rounds::Count(rounds)),
        &[mergeread, exchange, write],
    )?;
    prog.run()?;
    disk.flush().map_err(SortError::from)?;
    Ok(())
}
