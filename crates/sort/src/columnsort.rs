//! Leighton's columnsort: the in-memory reference implementation.
//!
//! Columnsort arranges `N = r·s` values as an `r × s` matrix (stored
//! column-major, `r ≥ 2(s−1)²`, `s | r`, `r` even) and sorts it into
//! column-major order in eight steps.  Odd steps sort every column; even
//! steps permute:
//!
//! * step 2 "transpose": read the entries column-major, write them back
//!   row-major;
//! * step 4 "untranspose": the inverse;
//! * steps 6 & 8 "shift by half a column" and back.
//!
//! A key simplification for steps 5–8 (exactly the coalescing that turns
//! four passes into three in csort, §III): shifting down by `r/2`, sorting
//! each shifted column, and shifting back is equivalent to sorting each
//! *boundary window* — the linear (column-major) range
//! `[c·r − r/2, c·r + r/2)` straddling each column boundary `c`.  The
//! windows are disjoint, so they can be sorted independently — which is why
//! the distributed pass 3 needs only one half-column exchange per column.
//!
//! This module is the ground truth for the distributed csort's arithmetic
//! and is exercised by property tests against `slice::sort`.

use crate::SortError;

/// The permutation of step 2: entries read in column-major order are
/// written back in row-major order.  `data` is column-major `r × s`.
pub fn transpose(data: &mut [u64], r: usize, s: usize) {
    debug_assert_eq!(data.len(), r * s);
    let mut out = vec![0u64; data.len()];
    for (p, &v) in data.iter().enumerate() {
        // p-th element in column-major reading order lands at row-major
        // position p = (row p/s, col p%s); store column-major.
        let row = p / s;
        let col = p % s;
        out[col * r + row] = v;
    }
    data.copy_from_slice(&out);
}

/// The permutation of step 4: the inverse of [`transpose`].
pub fn untranspose(data: &mut [u64], r: usize, s: usize) {
    debug_assert_eq!(data.len(), r * s);
    let mut out = vec![0u64; data.len()];
    for (p, out_v) in out.iter_mut().enumerate() {
        let row = p / s;
        let col = p % s;
        *out_v = data[col * r + row];
    }
    data.copy_from_slice(&out);
}

/// Odd steps: sort every column individually.
pub fn sort_columns(data: &mut [u64], r: usize, s: usize) {
    debug_assert_eq!(data.len(), r * s);
    for col in 0..s {
        data[col * r..(col + 1) * r].sort_unstable();
    }
}

/// Steps 6–8 fused: sort every boundary window
/// `[c·r − r/2, c·r + r/2)` for `c = 1..s`.
pub fn boundary_merge(data: &mut [u64], r: usize, s: usize) {
    debug_assert_eq!(data.len(), r * s);
    let half = r / 2;
    for c in 1..s {
        data[c * r - half..c * r + half].sort_unstable();
    }
}

/// Validate columnsort's geometric requirements.
pub fn check_geometry(n: usize, r: usize, s: usize) -> Result<(), SortError> {
    let err = |m: String| Err(SortError::Config(m));
    if r * s != n {
        return err(format!("r*s = {} != n = {n}", r * s));
    }
    if s == 0 || r == 0 {
        return err("degenerate matrix".into());
    }
    if s > 1 {
        if !r.is_multiple_of(s) {
            return err(format!("s = {s} must divide r = {r}"));
        }
        if !r.is_multiple_of(2) {
            return err(format!("r = {r} must be even"));
        }
        if r < 2 * (s - 1) * (s - 1) {
            return err(format!("r = {r} < 2(s-1)^2 = {}", 2 * (s - 1) * (s - 1)));
        }
    }
    Ok(())
}

/// Full eight-step columnsort of `data` (column-major `r × s`); sorts into
/// column-major order.
pub fn columnsort(data: &mut [u64], r: usize, s: usize) -> Result<(), SortError> {
    check_geometry(data.len(), r, s)?;
    sort_columns(data, r, s); // step 1
    if s == 1 {
        return Ok(()); // a single column is already fully sorted
    }
    transpose(data, r, s); // step 2
    sort_columns(data, r, s); // step 3
    untranspose(data, r, s); // step 4
    sort_columns(data, r, s); // step 5
    boundary_merge(data, r, s); // steps 6-8
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, seed: u64, max: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0..max)).collect()
    }

    #[test]
    fn transpose_deals_columns_round_robin() {
        // r=4, s=2, column-major [0,1,2,3 | 4,5,6,7].
        let mut d: Vec<u64> = (0..8).collect();
        transpose(&mut d, 4, 2);
        // Reading column-major order 0..8, writing row-major into 4x2:
        // rows: (0,1),(2,3),(4,5),(6,7) -> column-major [0,2,4,6 | 1,3,5,7].
        assert_eq!(d, vec![0, 2, 4, 6, 1, 3, 5, 7]);
    }

    #[test]
    fn untranspose_inverts_transpose() {
        let orig = random_data(6 * 3, 42, 1000);
        let mut d = orig.clone();
        transpose(&mut d, 6, 3);
        untranspose(&mut d, 6, 3);
        assert_eq!(d, orig);
    }

    #[test]
    fn sort_columns_only_touches_columns() {
        let mut d = vec![3, 1, 2, 9, 7, 8];
        sort_columns(&mut d, 3, 2);
        assert_eq!(d, vec![1, 2, 3, 7, 8, 9]);
    }

    #[test]
    fn boundary_merge_sorts_disjoint_windows() {
        // r=4, s=2: window at boundary = positions 2..6.
        let mut d = vec![0, 1, 9, 8, 3, 2, 10, 11];
        boundary_merge(&mut d, 4, 2);
        assert_eq!(d, vec![0, 1, 2, 3, 8, 9, 10, 11]);
    }

    #[test]
    fn geometry_validation() {
        assert!(check_geometry(8, 4, 2).is_ok());
        assert!(check_geometry(8, 3, 2).is_err()); // r*s mismatch
        assert!(check_geometry(12, 6, 2).is_ok());
        assert!(check_geometry(6, 3, 2).is_err()); // r odd
        assert!(check_geometry(8, 2, 4).is_err()); // r < 2(s-1)^2
        assert!(check_geometry(5, 5, 1).is_ok()); // single column: anything
    }

    #[test]
    fn sorts_exactly_at_the_leighton_bound() {
        // s = 3: need r >= 2*4 = 8 and 3 | r and r even -> r = 12 works
        // (r = 8 fails 3 | r).
        let n = 12 * 3;
        for seed in 0..20 {
            let mut d = random_data(n, seed, 50); // many duplicates
            let mut expect = d.clone();
            expect.sort_unstable();
            columnsort(&mut d, 12, 3).unwrap();
            assert_eq!(d, expect, "seed {seed}");
        }
    }

    #[test]
    fn sorts_larger_matrices() {
        for (r, s) in [(32usize, 4usize), (128, 8), (512, 16)] {
            let mut d = random_data(r * s, 7, u64::MAX);
            let mut expect = d.clone();
            expect.sort_unstable();
            columnsort(&mut d, r, s).unwrap();
            assert_eq!(d, expect, "r={r} s={s}");
        }
    }

    #[test]
    fn sorts_single_column() {
        let mut d = random_data(17, 3, 100);
        let mut expect = d.clone();
        expect.sort_unstable();
        columnsort(&mut d, 17, 1).unwrap();
        assert_eq!(d, expect);
    }

    #[test]
    fn sorts_all_equal_input() {
        let mut d = vec![7u64; 12 * 3];
        columnsort(&mut d, 12, 3).unwrap();
        assert!(d.iter().all(|&x| x == 7));
    }
}
