//! csort: three-pass out-of-core columnsort (the baseline, §III).
//!
//! The `N` records form an `r × s` column-major matrix; column `j` is owned
//! by node `j mod P` and handled in its round `j div P`.  Node `q`'s local
//! input file supplies its own columns: local chunk `t` is global column
//! `t·P + q`.  Each pass runs **one single linear FG pipeline per node** —
//! the only shape csort needs, because its communication is balanced and
//! its I/O pattern oblivious:
//!
//! * **Pass 1** (steps 1–2): `read → sort → communicate → permute → write`.
//!   After sorting, record `i` of column `c` belongs to column `i mod s` of
//!   the transposed matrix; the communicate stage exchanges the records
//!   with a balanced `alltoallv` (every node sends and receives exactly `r`
//!   records per round).  Because the *next* odd step re-sorts every
//!   column, only column membership matters, so the permute/write stages
//!   append each round's incoming records contiguously to the destination
//!   column's region of the intermediate file.
//! * **Pass 2** (steps 3–4): identical shape; after sorting, record `i`
//!   belongs to column `i div (r/s)` of the untransposed matrix.
//! * **Pass 3** (steps 5–8, coalesced): `read → sort → exchange-halves →
//!   merge → stripe → write`.  After the step-5 sort, steps 6–8 reduce to
//!   sorting each disjoint *boundary window* `[c·r − r/2, c·r + r/2)` (see
//!   [`crate::columnsort`]): the owner of column `c` sends its sorted
//!   column's larger half to the owner of column `c+1` (a balanced
//!   `sendrecv`-style exchange), merges the half it receives with its own
//!   smaller half, and the merged window — a contiguous run of the final
//!   sorted sequence at known global ranks — is exchanged once more
//!   (balanced `alltoallv`) to land, striped, on the cluster's disks.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_cluster::{Cluster, ClusterCfg, ClusterError, Communicator};
use fg_core::{map_stage, PipelineCfg, Program, Rounds};
use fg_pdm::{DiskRef, DiskStats, Striping};

use crate::chunks::{self, CHUNK_HEADER_BYTES};
use crate::config::{Matrix, SortConfig};
use crate::input::INPUT_FILE;
use crate::verify::OUTPUT_FILE;
use crate::SortError;

/// Intermediate file after pass 1.
pub const M1_FILE: &str = "csort_m1";
/// Intermediate file after pass 2.
pub const M2_FILE: &str = "csort_m2";

/// Timings and counters from one csort run.
#[derive(Debug, Clone)]
pub struct CsortReport {
    /// Max-across-nodes wall time of each pass.
    pub pass: [Duration; 3],
    /// Total wall time (sum of passes).
    pub total: Duration,
    /// Per-node disk stats accumulated over the whole run.
    pub disk_stats: Vec<DiskStats>,
    /// Per-node bytes sent over the interconnect.
    pub bytes_sent: Vec<u64>,
    /// The matrix geometry used.
    pub matrix: Matrix,
}

/// Run csort on the provisioned `disks` (one per node, each holding
/// `input`); leaves striped output in `output` on every disk.
pub fn run_csort(cfg: &SortConfig, disks: &[DiskRef]) -> Result<CsortReport, SortError> {
    cfg.validate()?;
    if disks.len() != cfg.nodes {
        return Err(SortError::Config(format!(
            "need {} disks, got {}",
            cfg.nodes,
            disks.len()
        )));
    }
    let matrix = Matrix::choose(cfg.total_records(), cfg.nodes)?;
    let cfg = cfg.clone();
    let disks_arc: Vec<DiskRef> = disks.to_vec();

    let run = Cluster::run(
        ClusterCfg {
            nodes: cfg.nodes,
            net: cfg.net,
        },
        move |node| -> Result<[Duration; 3], ClusterError> {
            let q = node.rank();
            let comm = node.comm().clone();
            let disk = Arc::clone(&disks_arc[q]);
            // Group each node's pipeline spans under its own track in the
            // merged Chrome export.
            let mut cfg = cfg.clone();
            cfg.trace_group = Some(q as u32);
            let mut times = [Duration::ZERO; 3];
            for (pass_idx, pass_no) in [1u8, 2, 3].into_iter().enumerate() {
                comm.barrier()?;
                let t0 = Instant::now();
                match pass_no {
                    1 => pass12(1, &cfg, matrix, q, &comm, &disk).map_err(ClusterError::from)?,
                    2 => pass12(2, &cfg, matrix, q, &comm, &disk).map_err(ClusterError::from)?,
                    _ => pass3(&cfg, matrix, q, &comm, &disk).map_err(ClusterError::from)?,
                }
                comm.barrier()?;
                let nanos = comm.allreduce_max(t0.elapsed().as_nanos() as u64)?;
                times[pass_idx] = Duration::from_nanos(nanos);
            }
            Ok(times)
        },
    )
    .map_err(|e| SortError::Comm(e.to_string()))?;

    let times = run.results[0];
    Ok(CsortReport {
        pass: times,
        total: times.iter().sum(),
        disk_stats: disks.iter().map(|d| d.stats()).collect(),
        bytes_sent: run.traffic.iter().map(|t| t.bytes_sent).collect(),
        matrix,
    })
}

/// Bytes of one full column of records.
fn col_bytes(cfg: &SortConfig, m: Matrix) -> usize {
    m.r * cfg.record.record_bytes
}

/// Buffer-pool size for a (possibly farmed) pipeline: each sort worker
/// holds a buffer in flight, so the pool must exceed the worker count or
/// replication just starves the pool.  Sized to the *declared* farm width
/// ([`SortConfig::farm_capacity`]) so a controller growing the farm never
/// outruns the pool.
pub(crate) fn effective_buffers(cfg: &SortConfig) -> usize {
    cfg.pipeline_buffers.max(cfg.farm_capacity() + 2)
}

/// The pass pipeline's configuration: `effective_buffers` in the pool,
/// with headroom for controller-driven pool growth when autotuning.
pub(crate) fn pass_pipeline(
    cfg: &SortConfig,
    name: &str,
    buf_bytes: usize,
    rounds: u64,
) -> PipelineCfg {
    let buffers = effective_buffers(cfg);
    let mut pc = PipelineCfg::new(name, buffers, buf_bytes).rounds(Rounds::Count(rounds));
    if cfg.autotune.is_some() {
        pc = pc.max_buffers(buffers * 2);
    }
    pc
}

/// Add the in-core sort stage, farmed across `cfg.workers` replicas when
/// asked.  Each replica owns its kernel scratch ([`crate::kernels`]), so
/// steady-state rounds allocate nothing; `Program::workers`' ordered
/// emission keeps the lockstep communication stages downstream correct.
///
/// When the tracking allocator is installed
/// ([`fg_core::FgAlloc`]), each replica's **first** sort call — the one
/// that grows its scratch to the working size — is attributed to the
/// `sort/warmup` tag, so the steady-state `sort` tag counting every later
/// round stays at zero allocations.  That split is what lets the resource
/// report (and the CI smoke job) assert the hot loop is alloc-free
/// without exempting the by-design warmup growth.
pub(crate) fn add_sort_stage(prog: &mut Program, cfg: &SortConfig) -> fg_core::StageId {
    let fmt = cfg.record;
    let metrics = cfg.metrics.clone();
    let make = move || {
        let mut scratch = match &metrics {
            Some(reg) => crate::kernels::SortScratch::with_registry(reg),
            None => crate::kernels::SortScratch::new(),
        };
        let mut warmed = false;
        map_stage(
            move |buf: &mut fg_core::Buffer, _ctx: &mut fg_core::StageCtx| {
                if !warmed {
                    warmed = true;
                    if fg_core::alloc::installed() {
                        let warmup = fg_core::register_tag("sort/warmup");
                        return fg_core::with_tag(warmup, || {
                            fmt.sort_bytes_with(buf.filled_mut(), &mut scratch);
                            Ok(())
                        });
                    }
                }
                fmt.sort_bytes_with(buf.filled_mut(), &mut scratch);
                Ok(())
            },
        )
    };
    if cfg.farm_capacity() > 1 {
        prog.workers("sort", cfg.farm_capacity(), move |_i| make())
    } else {
        prog.add_stage("sort", make())
    }
}

/// Passes 1 and 2: `read → sort → communicate → permute → write` over a
/// single linear pipeline of `s/P` rounds.  Shared with the four-pass
/// variant ([`crate::csort4`]), whose first two passes are identical.
pub(crate) fn pass12(
    pass_no: u8,
    cfg: &SortConfig,
    m: Matrix,
    q: usize,
    comm: &Communicator,
    disk: &DiskRef,
) -> Result<(), SortError> {
    let rb = cfg.record.record_bytes;
    let cbytes = col_bytes(cfg, m);
    // Per round a node receives r records in at most s chunks.
    let buf_bytes = cbytes + m.s * CHUNK_HEADER_BYTES + 64;
    let rounds = m.cols_per_node() as u64;
    let (in_file, out_file) = match pass_no {
        1 => (INPUT_FILE, M1_FILE),
        _ => (M1_FILE, M2_FILE),
    };

    let mut prog = Program::new(format!("csort-p{pass_no}-n{q}"));
    cfg.instrument_with_disks(&mut prog, std::slice::from_ref(disk));

    // read: local chunk t of the input file is column t*P + q.
    let read_disk = Arc::clone(disk);
    let in_name = in_file.to_string();
    let read = prog.add_stage(
        "read",
        map_stage(move |buf, _ctx| {
            let t = buf.round();
            read_disk
                .read_at(&in_name, t * cbytes as u64, &mut buf.space_mut()[..cbytes])
                .map_err(SortError::from)?;
            buf.set_filled(cbytes);
            Ok(())
        }),
    );

    // sort: odd columnsort step (1 or 3), farmed when cfg.workers > 1.
    let sort = add_sort_stage(&mut prog, cfg);

    // communicate: balanced alltoallv; the same buffer is conveyed (§I:
    // "with balanced communication ... we can convey to the successor the
    // same buffer that the stage accepted").
    let comm2 = comm.clone();
    let nodes = m.nodes;
    let (r, s) = (m.r, m.s);
    let chunk_records = r / s;
    let communicate = prog.add_stage(
        "communicate",
        map_stage(move |buf, _ctx| {
            let t = buf.round() as usize;
            let c = m.col_of_round(q, t); // my column this round
            let mut parts: Vec<Vec<u8>> = vec![Vec::new(); nodes];
            {
                let data = buf.filled();
                for d in 0..s {
                    // Records of sorted column c destined for column d.
                    let dest_node = m.owner(d);
                    let mut run = Vec::with_capacity(chunk_records * rb);
                    match pass_no {
                        1 => {
                            // transpose: record i -> column i mod s
                            let mut i = d;
                            while i < r {
                                run.extend_from_slice(&data[i * rb..(i + 1) * rb]);
                                i += s;
                            }
                        }
                        _ => {
                            // untranspose: record i -> column i div (r/s)
                            let start = d * chunk_records;
                            run.extend_from_slice(&data[start * rb..(start + chunk_records) * rb]);
                        }
                    }
                    chunks::push_chunk(&mut parts[dest_node], d as u64, c as u64, &run);
                }
            }
            let received = comm2.alltoallv(parts).map_err(SortError::from)?;
            buf.clear();
            for part in received {
                let copied = buf.append(&part);
                debug_assert_eq!(copied, part.len(), "communicate buffer overflow");
            }
            Ok(())
        }),
    );

    // permute: translate (dest column, source column) headers into file
    // offsets.  Column d's region of the output file is
    // [local_index(d)*r, ...); round t's incoming records for d are
    // appended at t * (P * r/s) records into that region.
    let permute = prog.add_stage("permute", {
        // Persistent scratch: the repacked payload and the bytes already
        // appended to each destination region this round.  Each sender
        // contributed chunk_records records; they stack in sender order
        // (source column / P order is irrelevant: the next pass re-sorts).
        let mut packed: Vec<u8> = Vec::new();
        let mut appended: Vec<(usize, usize)> = Vec::new(); // (base, bytes)
        map_stage(move |buf, _ctx| {
            let t = buf.round() as usize;
            let per_round_per_col = nodes * chunk_records; // records
            packed.clear();
            appended.clear();
            for chunk in chunks::iter_chunks(buf.filled()) {
                let chunk = chunk?;
                let d = chunk.a as usize;
                debug_assert_eq!(m.owner(d), q, "chunk routed to wrong node");
                let base = (m.local_index(d) * r + t * per_round_per_col) * rb;
                let within = match appended.iter_mut().find(|(b, _)| *b == base) {
                    Some((_, w)) => w,
                    None => {
                        appended.push((base, 0));
                        &mut appended.last_mut().expect("just pushed").1
                    }
                };
                // Rewrite as a (file offset, data) chunk for the writer.
                chunks::push_chunk(&mut packed, (base + *within) as u64, 0, chunk.data);
                *within += chunk.data.len();
            }
            buf.copy_from(&packed);
            Ok(())
        })
    });

    // write: issue the positioned writes, coalesced without copying each
    // chunk out of the buffer first.
    let write_disk = Arc::clone(disk);
    let out_name = out_file.to_string();
    let write = prog.add_stage("write", {
        let mut runs = Vec::new();
        let mut scratch = Vec::new();
        map_stage(move |buf, _ctx| {
            chunks::for_each_coalesced_write(buf.filled(), &mut runs, &mut scratch, |off, data| {
                write_disk
                    .write_at(&out_name, off, data)
                    .map_err(SortError::from)?;
                Ok(())
            })
        })
    });

    prog.add_pipeline(
        pass_pipeline(cfg, "pass", buf_bytes, rounds),
        &[read, sort, communicate, permute, write],
    )?;
    prog.run()?;
    // Write barrier: the next pass reads this pass's output, so any
    // write-behind must land (and surface its deferred errors) here.
    disk.flush().map_err(SortError::from)?;
    Ok(())
}

/// Pass 3: steps 5–8 coalesced —
/// `read → sort → exchange-halves → merge → stripe → write`.
fn pass3(
    cfg: &SortConfig,
    m: Matrix,
    q: usize,
    comm: &Communicator,
    disk: &DiskRef,
) -> Result<(), SortError> {
    let rb = cfg.record.record_bytes;
    let cbytes = col_bytes(cfg, m);
    let half = m.r / 2 * rb;
    let rounds = m.cols_per_node() as u64;
    // A buffer holds a merged window (r records), plus the extra half
    // window w(s) on the last column, plus chunk headers for striping.
    let window_cap = cbytes + half;
    // The stripe exchange is balanced only on average; a node can receive
    // up to a block of slack from each sender, so size for it.
    let max_chunks = window_cap / cfg.block_bytes + 2 * m.nodes + 4;
    let buf_bytes = window_cap + m.nodes * cfg.block_bytes + max_chunks * CHUNK_HEADER_BYTES + 64;
    let (r, s, nodes) = (m.r, m.s, m.nodes);

    let mut prog = Program::new(format!("csort-p3-n{q}"));
    cfg.instrument_with_disks(&mut prog, std::slice::from_ref(disk));

    let read_disk = Arc::clone(disk);
    let read = prog.add_stage(
        "read",
        map_stage(move |buf, _ctx| {
            let t = buf.round();
            read_disk
                .read_at(M2_FILE, t * cbytes as u64, &mut buf.space_mut()[..cbytes])
                .map_err(SortError::from)?;
            buf.set_filled(cbytes);
            Ok(())
        }),
    );

    // sort: step 5, farmed when cfg.workers > 1; replicas own their scratch.
    let fmt = cfg.record;
    let sort = add_sort_stage(&mut prog, cfg);

    // exchange-halves: after the step-5 sort, send my column's larger half
    // to the owner of column c+1 and receive the larger half of column c-1;
    // the buffer leaves holding the *merge input* for window w(c):
    // [received larger half of c-1][my smaller half], plus — only for the
    // last column — my own larger half retained for window w(s).
    let comm3 = comm.clone();
    let exchange = prog.add_stage(
        "exchange",
        map_stage(move |buf, ctx| {
            let t = buf.round() as usize;
            let c = m.col_of_round(q, t);
            let last = c == s - 1;
            {
                let data = buf.filled();
                if !last {
                    comm3
                        .send(m.owner(c + 1), (c + 1) as u64, data[half..].to_vec())
                        .map_err(SortError::from)?;
                }
            }
            let received: Vec<u8> = if c > 0 {
                comm3
                    .recv(Some(m.owner(c - 1)), c as u64)
                    .map_err(SortError::from)?
                    .payload
            } else {
                Vec::new()
            };
            // Assemble [received][smaller half][(last only) larger half].
            let aux = ctx.aux(buf.capacity());
            let mut len = 0usize;
            aux[..received.len()].copy_from_slice(&received);
            len += received.len();
            aux[len..len + half].copy_from_slice(&buf.filled()[..half]);
            len += half;
            if last {
                aux[len..len + half].copy_from_slice(&buf.filled()[half..]);
                len += half;
            }
            buf.copy_from(&aux[..len]);
            Ok(())
        }),
    );

    // merge: step 7 — merge the two sorted halves of window w(c) (the
    // trailing extra half for w(s) is already sorted and stays in place).
    let merge = prog.add_stage(
        "merge",
        map_stage(move |buf, ctx| {
            let t = buf.round() as usize;
            let c = m.col_of_round(q, t);
            let window = if c > 0 { 2 * half } else { half };
            debug_assert!(buf.len() >= window);
            if c > 0 {
                let aux = ctx.aux(window);
                merge_two_sorted(fmt, &buf.filled()[..window], half, aux);
                buf.filled_mut()[..window].copy_from_slice(&aux[..window]);
            }
            Ok(())
        }),
    );

    // stripe: window w(c) covers global ranks [c·r − r/2, c·r + r/2)
    // (clamped); split it across the cluster's disks in PDM order and
    // exchange (balanced alltoallv).  The last column also carries w(s).
    let comm4 = comm.clone();
    let striping = Striping::new(nodes, cfg.block_bytes);
    let stripe = prog.add_stage(
        "stripe",
        map_stage(move |buf, _ctx| {
            let t = buf.round() as usize;
            let c = m.col_of_round(q, t);
            let start_rank = if c == 0 { 0 } else { c * r - r / 2 };
            let mut parts: Vec<Vec<u8>> = vec![Vec::new(); nodes];
            {
                let data = buf.filled();
                let goff = start_rank as u64 * rb as u64;
                for (dest, local, range) in striping.split_range(goff, data.len()) {
                    let _ = local;
                    let gchunk = goff + range.start as u64;
                    chunks::push_chunk(&mut parts[dest], gchunk, 0, &data[range]);
                }
            }
            let received = comm4.alltoallv(parts).map_err(SortError::from)?;
            buf.clear();
            for part in received {
                let copied = buf.append(&part);
                debug_assert_eq!(copied, part.len(), "stripe buffer overflow");
            }
            Ok(())
        }),
    );

    let write_disk = Arc::clone(disk);
    let striping_w = Striping::new(nodes, cfg.block_bytes);
    let write = prog.add_stage("write", {
        // Rewrite global stripe offsets as local ones in place (headers
        // only), then coalesce straight out of the buffer.
        let mut relocated: Vec<u8> = Vec::new();
        let mut runs = Vec::new();
        let mut scratch = Vec::new();
        map_stage(move |buf, _ctx| {
            relocated.clear();
            for chunk in chunks::iter_chunks(buf.filled()) {
                let chunk = chunk?;
                let (dest, local) = striping_w.locate_byte(chunk.a);
                debug_assert_eq!(dest, q, "stripe chunk landed on wrong node");
                chunks::push_chunk(&mut relocated, local, 0, chunk.data);
            }
            chunks::for_each_coalesced_write(&relocated, &mut runs, &mut scratch, |off, data| {
                write_disk
                    .write_at(OUTPUT_FILE, off, data)
                    .map_err(SortError::from)?;
                Ok(())
            })
        })
    });

    prog.add_pipeline(
        pass_pipeline(cfg, "pass3", buf_bytes, rounds),
        &[read, sort, exchange, merge, stripe, write],
    )?;
    prog.run()?;
    disk.flush().map_err(SortError::from)?;
    Ok(())
}

/// Merge `data` (two sorted runs: `[0, split_bytes)` and
/// `[split_bytes, len)`) into `out[..len]`.
///
/// Gallops ([`crate::kernels::run_len`]): instead of one key comparison
/// and one `memcpy` per record, each iteration finds the whole run of
/// records the leading side contributes and copies it at once — on the
/// nearly-sorted boundary windows of pass 3 this collapses to a handful
/// of bulk copies.
pub(crate) fn merge_two_sorted(
    fmt: crate::record::RecordFormat,
    data: &[u8],
    split_bytes: usize,
    out: &mut [u8],
) {
    let rb = fmt.record_bytes;
    let (a, b) = data.split_at(split_bytes);
    let (mut i, mut j, mut o) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        // Ties favor `a` (the run holding the earlier global ranks).
        let bkey = fmt.key(&b[j..]);
        let run = crate::kernels::run_len(fmt, &a[i..], |k| k <= bkey) * rb;
        if run > 0 {
            out[o..o + run].copy_from_slice(&a[i..i + run]);
            i += run;
            o += run;
            if i == a.len() {
                break;
            }
        }
        // `a`'s (new) head strictly beats `b`'s, so `b` contributes at
        // least one record here — the loop always makes progress.
        let akey = fmt.key(&a[i..]);
        let run = crate::kernels::run_len(fmt, &b[j..], |k| k < akey) * rb;
        out[o..o + run].copy_from_slice(&b[j..j + run]);
        j += run;
        o += run;
    }
    if i < a.len() {
        out[o..o + a.len() - i].copy_from_slice(&a[i..]);
        o += a.len() - i;
    }
    if j < b.len() {
        out[o..o + b.len() - j].copy_from_slice(&b[j..]);
        o += b.len() - j;
    }
    debug_assert_eq!(o, data.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordFormat;

    #[test]
    fn merge_two_sorted_runs() {
        let f = RecordFormat::REC16;
        let mk = |keys: &[u64]| {
            let mut out = vec![0u8; keys.len() * 16];
            for (i, &k) in keys.iter().enumerate() {
                f.set_key(&mut out[i * 16..(i + 1) * 16], k);
            }
            out
        };
        let mut data = mk(&[1, 4, 9]);
        data.extend_from_slice(&mk(&[2, 4, 8]));
        let mut out = vec![0u8; data.len()];
        merge_two_sorted(f, &data, 3 * 16, &mut out);
        let keys: Vec<u64> = f.records(&out).map(|r| f.key(r)).collect();
        assert_eq!(keys, vec![1, 2, 4, 4, 8, 9]);
    }

    #[test]
    fn merge_empty_first_run() {
        let f = RecordFormat::REC16;
        let mut data = vec![0u8; 32];
        f.set_key(&mut data[0..16], 3);
        f.set_key(&mut data[16..32], 5);
        let mut out = vec![0u8; 32];
        merge_two_sorted(f, &data, 0, &mut out);
        assert_eq!(out, data);
    }
}
