//! dsort pass 1: partitioning and distribution (§V, Figure 6).
//!
//! Communication in this pass is *unbalanced*: how much a node sends at any
//! moment almost certainly differs from how much it receives.  Each node
//! therefore runs **two disjoint FG pipelines**:
//!
//! * the **send pipeline** `read → permute → send` streams the node's local
//!   input: the permute stage groups each block's records by destination
//!   partition (splitters compared against *extended* keys, out of place
//!   via the auxiliary buffer), and the send stage doles the groups out to
//!   their target nodes;
//! * the **receive pipeline** `receive → sort → write` assembles incoming
//!   records into run-sized buffers, sorts each (by the original,
//!   non-extended keys), and appends it to the node's run file — one sorted
//!   run per buffer.
//!
//! The pipelines progress at independent rates; only messages connect them.
//! The receive pipeline's length is data-dependent, so it runs
//! `UntilStopped`: after a `DONE` marker from every sender and an empty
//! carry, the receive stage conveys the final partial run and stops the
//! pipeline.

use std::sync::Arc;

use fg_cluster::Communicator;
use fg_core::{map_stage, PipelineCfg, Program, Rounds, Stage, StageCtx};
use fg_pdm::DiskRef;
use parking_lot::Mutex;

use crate::chunks::{self, CHUNK_HEADER_BYTES};
use crate::config::SortConfig;
use crate::input::INPUT_FILE;
use crate::record::{partition_of, ExtKey};
use crate::SortError;

/// Message tag for pass-1 traffic.
pub const TAG_PASS1: u64 = 0x0D50_0001;
/// First payload byte: record data follows.
pub const MSG_DATA: u8 = 0;
/// First payload byte: the sender has finished pass 1.
pub const MSG_DONE: u8 = 1;

/// Name of the file holding this node's sorted runs.
pub const RUNS_FILE: &str = "dsort_runs";

/// Outcome of pass 1 on one node.
#[derive(Debug, Clone)]
pub struct Pass1Out {
    /// Byte length of each sorted run, in file order.
    pub run_lens: Vec<u64>,
    /// Records this node's partition received.
    pub received_records: u64,
    /// OS threads the pass's FG program spawned.
    pub threads: usize,
    /// The FG report of this node's pass-1 program.
    pub report: fg_core::Report,
}

/// Run pass 1 on node `rank`.
pub fn pass1(
    cfg: &SortConfig,
    rank: usize,
    comm: &Communicator,
    disk: &DiskRef,
    splitters: &[ExtKey],
) -> Result<Pass1Out, SortError> {
    let nodes = cfg.nodes;
    let rb = cfg.record.record_bytes;
    let input_bytes = cfg.bytes_per_node() as usize;
    let nblocks = input_bytes.div_ceil(cfg.block_bytes) as u64;
    let send_buf = cfg.block_bytes + nodes * CHUNK_HEADER_BYTES + 64;

    let mut prog = Program::new(format!("dsort-p1-n{rank}"));
    cfg.instrument(&mut prog);

    // ---- send pipeline ----
    let read_disk = Arc::clone(disk);
    let block_bytes = cfg.block_bytes;
    let read = prog.add_stage(
        "read",
        map_stage(move |buf, _ctx| {
            let off = buf.round() * block_bytes as u64;
            let want = block_bytes.min(input_bytes - off as usize);
            read_disk
                .read_at(INPUT_FILE, off, &mut buf.space_mut()[..want])
                .map_err(SortError::from)?;
            buf.set_filled(want);
            Ok(())
        }),
    );

    let fmt = cfg.record;
    let splits = splitters.to_vec();
    let records_per_block = cfg.records_per_block();
    let permute = prog.add_stage(
        "permute",
        map_stage(move |buf, _ctx| {
            // Destination partition of each record, via extended keys.
            let n = fmt.count(buf.filled());
            let base_seq = buf.round() * records_per_block as u64;
            let mut dest = vec![0usize; n];
            let mut counts = vec![0usize; nodes];
            for (i, rec) in fmt.records(buf.filled()).enumerate() {
                let e = ExtKey {
                    key: fmt.key(rec),
                    node: rank as u32,
                    seq: base_seq + i as u64,
                };
                let d = partition_of(&splits, e);
                dest[i] = d;
                counts[d] += 1;
            }
            // Group records by destination, out of place (the auxiliary-
            // buffer pattern), and rewrite the buffer as (dest, records)
            // chunks.
            let mut groups: Vec<Vec<u8>> =
                counts.iter().map(|&c| Vec::with_capacity(c * rb)).collect();
            for (i, rec) in fmt.records(buf.filled()).enumerate() {
                groups[dest[i]].extend_from_slice(rec);
            }
            let mut packed = Vec::with_capacity(buf.len() + nodes * CHUNK_HEADER_BYTES);
            for (d, group) in groups.iter().enumerate() {
                if !group.is_empty() {
                    chunks::push_chunk(&mut packed, d as u64, 0, group);
                }
            }
            buf.copy_from(&packed);
            Ok(())
        }),
    );

    let comm_send = comm.clone();
    let send = prog.add_stage(
        "send",
        Box::new(move |ctx: &mut StageCtx| {
            while let Some(buf) = ctx.accept()? {
                // Propagate the buffer's trace id with each chunk so the
                // receiving rank's comm-recv span joins this buffer's flow
                // in the merged Chrome export.
                let trace_id = buf.trace_id();
                for chunk in chunks::iter_chunks(buf.filled()) {
                    let chunk = chunk?;
                    let mut payload = Vec::with_capacity(1 + chunk.data.len());
                    payload.push(MSG_DATA);
                    payload.extend_from_slice(chunk.data);
                    comm_send
                        .send_traced(chunk.a as usize, TAG_PASS1, payload, trace_id)
                        .map_err(SortError::from)?;
                }
                ctx.convey(buf)?;
            }
            // All local input distributed: tell every node.
            for dst in 0..nodes {
                comm_send
                    .send(dst, TAG_PASS1, vec![MSG_DONE])
                    .map_err(SortError::from)?;
            }
            Ok(())
        }) as Box<dyn Stage>,
    );

    // ---- receive pipeline ----
    let received_records = Arc::new(Mutex::new(0u64));
    let comm_recv = comm.clone();
    let rr = Arc::clone(&received_records);
    let receive = prog.add_stage(
        "receive",
        Box::new(move |ctx: &mut StageCtx| {
            let pid = ctx.pipelines().next().expect("receive pipeline");
            let mut carry: Vec<u8> = Vec::new();
            let mut dones = 0usize;
            loop {
                let mut buf = match ctx.accept()? {
                    Some(b) => b,
                    None => return Ok(()),
                };
                buf.clear();
                while buf.remaining() > 0 {
                    if !carry.is_empty() {
                        let n = buf.append(&carry);
                        carry.drain(..n);
                        continue;
                    }
                    if dones == nodes {
                        break;
                    }
                    let msg = comm_recv.recv(None, TAG_PASS1).map_err(SortError::from)?;
                    match msg.payload.first() {
                        Some(&MSG_DONE) => dones += 1,
                        Some(&MSG_DATA) => {
                            let data = &msg.payload[1..];
                            let n = buf.append(data);
                            carry.extend_from_slice(&data[n..]);
                        }
                        _ => return Err(SortError::Corrupt("empty pass-1 message".into()).into()),
                    }
                }
                if buf.is_empty() {
                    ctx.discard(buf)?;
                } else {
                    *rr.lock() += (buf.len() / rb) as u64;
                    ctx.convey(buf)?;
                }
                if dones == nodes && carry.is_empty() {
                    ctx.stop(pid)?;
                    return Ok(());
                }
            }
        }) as Box<dyn Stage>,
    );

    let fmt2 = cfg.record;
    let sort = prog.add_stage("sort", {
        let mut scratch = cfg.sort_scratch();
        map_stage(move |buf, _ctx| {
            fmt2.sort_bytes_with(buf.filled_mut(), &mut scratch);
            Ok(())
        })
    });

    let run_lens = Arc::new(Mutex::new(Vec::<u64>::new()));
    let rl = Arc::clone(&run_lens);
    let write_disk = Arc::clone(disk);
    let write = prog.add_stage(
        "write",
        map_stage(move |buf, _ctx| {
            write_disk
                .append(RUNS_FILE, buf.filled())
                .map_err(SortError::from)?;
            rl.lock().push(buf.len() as u64);
            Ok(())
        }),
    );

    prog.add_pipeline(
        PipelineCfg::new("send", cfg.pipeline_buffers, send_buf).rounds(Rounds::Count(nblocks)),
        &[read, permute, send],
    )?;
    prog.add_pipeline(
        PipelineCfg::new("recv", cfg.pipeline_buffers, cfg.run_bytes).rounds(Rounds::UntilStopped),
        &[receive, sort, write],
    )?;
    let report = prog.run()?;
    // Write barrier: pass 2 reads the run file this pass appended behind
    // any write-behind queue; surface deferred errors here.
    disk.flush().map_err(SortError::from)?;

    let out = Pass1Out {
        run_lens: run_lens.lock().clone(),
        received_records: *received_records.lock(),
        threads: report.threads_spawned,
        report,
    };
    Ok(out)
}
