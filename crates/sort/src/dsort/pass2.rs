//! dsort pass 2: merging, load-balancing, and striping (§V, Figure 7).
//!
//! Each node merges its sorted runs into one sorted stream and the streams
//! are re-striped across the cluster.  The pipeline structure combines both
//! FG extensions:
//!
//! * **k intersecting vertical pipelines** — one per sorted run — feed the
//!   common **merge stage**.  Their `read` stages are **virtual**: FG runs
//!   all of them (and their sources and sinks) on three shared threads, no
//!   matter how many runs pass 1 produced (§IV, Figure 5(b)).  Vertical
//!   buffers are small; the single horizontal pipeline's buffers are large
//!   (§IV: "buffers in the vertical pipelines might be relatively small ...
//!   the horizontal pipeline's can be much larger").
//! * The merge stage fills horizontal buffers with globally-ranked output
//!   (this node's merged stream covers ranks `[offset, offset + n)` where
//!   `offset` comes from an exchange of partition sizes) and a **send
//!   stage** splits each buffer along PDM stripe boundaries and doles the
//!   pieces out — unbalanced communication again, so a **disjoint receive
//!   pipeline** (`receive → write`) accepts whatever stripe pieces arrive
//!   and writes them to the local stripe file.

use std::sync::Arc;

use fg_cluster::Communicator;
use fg_core::{map_stage, Buffer, PipelineCfg, Program, Rounds, Stage, StageCtx};
use fg_pdm::{DiskRef, Striping};

use crate::chunks::{self, CHUNK_HEADER_BYTES};
use crate::config::SortConfig;
use crate::dsort::pass1::RUNS_FILE;
use crate::merge::LoserTree;
use crate::verify::OUTPUT_FILE;
use crate::SortError;

/// Message tag for pass-2 traffic.
pub const TAG_PASS2: u64 = 0x0D50_0002;
/// First payload byte: a stripe piece follows (8-byte global offset, data).
pub const MSG_DATA: u8 = 0;
/// First payload byte: the sender has finished pass 2.
pub const MSG_DONE: u8 = 1;

/// Outcome of pass 2 on one node.
#[derive(Debug, Clone)]
pub struct Pass2Out {
    /// OS threads the pass's FG program spawned (experiment A2 measures
    /// how virtual stages keep this flat as the run count grows).
    pub threads: usize,
    /// Number of vertical (run) pipelines merged.
    pub runs_merged: usize,
    /// The FG report of this node's pass-2 program.
    pub report: fg_core::Report,
}

/// Run pass 2 on node `rank`.  `run_lens` are this node's sorted run
/// lengths from pass 1; `rank_offset` is the global rank of this node's
/// first merged record; `total_records` the cluster-wide record count.
pub fn pass2(
    cfg: &SortConfig,
    rank: usize,
    comm: &Communicator,
    disk: &DiskRef,
    run_lens: &[u64],
    rank_offset: u64,
    use_virtual_reads: bool,
) -> Result<Pass2Out, SortError> {
    let nodes = cfg.nodes;
    let rb = cfg.record.record_bytes;
    let k = run_lens.len();
    let vert_buf = cfg.vertical_buf_bytes;
    let striping = Striping::new(nodes, cfg.block_bytes);

    let mut prog = Program::new(format!("dsort-p2-n{rank}"));
    cfg.instrument(&mut prog);

    // ---- vertical read stage(s) ----
    // Run j occupies bytes [run_off[j], run_off[j] + run_lens[j]) of the
    // runs file; the read stage streams it in vertical-buffer chunks.
    let mut run_off = Vec::with_capacity(k);
    let mut acc = 0u64;
    for &l in run_lens {
        run_off.push(acc);
        acc += l;
    }

    let make_reader = |lane_fixed: Option<usize>| {
        let disk = Arc::clone(disk);
        let run_off = run_off.clone();
        let run_lens = run_lens.to_vec();
        let mut cursors = vec![0u64; k];
        map_stage(move |buf: &mut Buffer, ctx: &mut StageCtx| {
            let lane = match lane_fixed {
                Some(l) => l,
                None => ctx.lane(buf.pipeline())?,
            };
            let want = (vert_buf as u64).min(run_lens[lane] - cursors[lane]) as usize;
            disk.read_at(
                RUNS_FILE,
                run_off[lane] + cursors[lane],
                &mut buf.space_mut()[..want],
            )
            .map_err(SortError::from)?;
            cursors[lane] += want as u64;
            buf.set_filled(want);
            Ok(())
        })
    };

    let read_ids: Vec<_> = if use_virtual_reads {
        if k > 0 {
            vec![prog.add_virtual_stage("read", make_reader(None))]
        } else {
            vec![]
        }
    } else {
        (0..k)
            .map(|j| prog.add_stage(format!("read{j}"), make_reader(Some(j))))
            .collect()
    };

    // ---- merge stage (common to all verticals + the horizontal) ----
    let fmt = cfg.record;
    let batch_hist = cfg
        .metrics
        .as_ref()
        .map(|r| r.histogram("kernel/merge_batch_records"));
    let merge = prog.add_stage(
        "merge",
        Box::new(move |ctx: &mut StageCtx| {
            let pids: Vec<_> = ctx.pipelines().collect();
            let (verticals, horizontal) = pids.split_at(pids.len() - 1);
            let verticals = verticals.to_vec();
            let horizontal = horizontal[0];
            let k = verticals.len();

            // Current head buffer + byte offset per vertical.
            let mut heads: Vec<Option<(Buffer, usize)>> = Vec::with_capacity(k);
            let next_head = |ctx: &mut StageCtx,
                             v: fg_core::PipelineId|
             -> fg_core::Result<Option<(Buffer, usize)>> {
                loop {
                    match ctx.accept_from(v)? {
                        None => return Ok(None),
                        Some(b) if b.is_empty() => ctx.discard(b)?,
                        Some(b) => return Ok(Some((b, 0))),
                    }
                }
            };
            for &v in &verticals {
                let h = next_head(ctx, v)?;
                heads.push(h);
            }
            let mut tree = if k > 0 {
                Some(LoserTree::new(
                    heads
                        .iter()
                        .map(|h| h.as_ref().map(|(b, off)| (fmt.key(&b.filled()[*off..]), 0)))
                        .collect(),
                ))
            } else {
                None
            };

            let mut out = ctx
                .accept_from(horizontal)?
                .expect("horizontal source supplies empty buffers");
            out.clear();
            let mut produced = 0u64; // records emitted so far
            out.meta = rank_offset; // global rank of this buffer's first record

            let mut policy = crate::merge::BatchPolicy::new();
            while let Some((lane, _)) = tree.as_ref().and_then(|t| t.winner()) {
                let (buf, off) = heads[lane].take().expect("winner lane has a head");
                // MergeRun fast path: emit every buffered record of this
                // lane that still beats the tree's runner-up in one copy,
                // capped by the output buffer's space, instead of one
                // record (and one tree replay) at a time.  The policy
                // backs off to scalar steps while the runs interleave too
                // finely to batch.
                let avail = &buf.filled()[off..];
                let run = policy.merge_run(tree.as_ref().expect("tree exists"), fmt, avail);
                let n = run.min(out.remaining() / rb).max(1);
                out.append(&avail[..n * rb]);
                if let Some(h) = &batch_hist {
                    h.record(n as u64);
                }
                produced += n as u64;
                let noff = off + n * rb;
                if noff < buf.len() {
                    heads[lane] = Some((buf, noff));
                } else {
                    ctx.discard(buf)?;
                    heads[lane] = next_head(ctx, verticals[lane])?;
                }
                let next_key = heads[lane]
                    .as_ref()
                    .map(|(b, o)| (fmt.key(&b.filled()[*o..]), 0));
                tree.as_mut().expect("tree exists").replace(lane, next_key);

                if out.remaining() == 0 {
                    ctx.convey(out)?;
                    out = ctx
                        .accept_from(horizontal)?
                        .expect("horizontal source stopped early");
                    out.clear();
                    out.meta = rank_offset + produced;
                }
            }
            if out.is_empty() {
                ctx.discard(out)?;
            } else {
                ctx.convey(out)?;
            }
            ctx.stop(horizontal)?;
            Ok(())
        }) as Box<dyn Stage>,
    );

    // ---- horizontal send stage ----
    let comm_send = comm.clone();
    let send = prog.add_stage(
        "send",
        Box::new(move |ctx: &mut StageCtx| {
            while let Some(buf) = ctx.accept()? {
                let goff = buf.meta * rb as u64;
                let data = buf.filled();
                for (dest, _local, range) in striping.split_range(goff, data.len()) {
                    let mut payload = Vec::with_capacity(9 + range.len());
                    payload.push(MSG_DATA);
                    payload.extend_from_slice(&(goff + range.start as u64).to_le_bytes());
                    payload.extend_from_slice(&data[range]);
                    comm_send
                        .send(dest, TAG_PASS2, payload)
                        .map_err(SortError::from)?;
                }
                ctx.convey(buf)?;
            }
            for dst in 0..nodes {
                comm_send
                    .send(dst, TAG_PASS2, vec![MSG_DONE])
                    .map_err(SortError::from)?;
            }
            Ok(())
        }) as Box<dyn Stage>,
    );

    // ---- receive pipeline ----
    let comm_recv = comm.clone();
    let receive = prog.add_stage(
        "receive",
        Box::new(move |ctx: &mut StageCtx| {
            let pid = ctx.pipelines().next().expect("receive pipeline");
            let mut dones = 0usize;
            let mut pending: Option<(u64, Vec<u8>)> = None;
            loop {
                let mut buf = match ctx.accept()? {
                    Some(b) => b,
                    None => return Ok(()),
                };
                buf.clear();
                loop {
                    if let Some((goff, data)) = pending.take() {
                        if chunks::chunk_size(data.len()) > buf.remaining() {
                            pending = Some((goff, data));
                            break; // convey this buffer, chunk goes in next
                        }
                        let mut packed = Vec::with_capacity(chunks::chunk_size(data.len()));
                        chunks::push_chunk(&mut packed, goff, 0, &data);
                        let n = buf.append(&packed);
                        debug_assert_eq!(n, packed.len());
                        continue;
                    }
                    if dones == nodes {
                        break;
                    }
                    let msg = comm_recv.recv(None, TAG_PASS2).map_err(SortError::from)?;
                    match msg.payload.first() {
                        Some(&MSG_DONE) => dones += 1,
                        Some(&MSG_DATA) => {
                            if msg.payload.len() < 9 {
                                return Err(
                                    SortError::Corrupt("short pass-2 data message".into()).into()
                                );
                            }
                            let goff =
                                u64::from_le_bytes(msg.payload[1..9].try_into().expect("8 bytes"));
                            pending = Some((goff, msg.payload[9..].to_vec()));
                        }
                        _ => return Err(SortError::Corrupt("empty pass-2 message".into()).into()),
                    }
                }
                if buf.is_empty() {
                    ctx.discard(buf)?;
                } else {
                    ctx.convey(buf)?;
                }
                if dones == nodes && pending.is_none() {
                    ctx.stop(pid)?;
                    return Ok(());
                }
            }
        }) as Box<dyn Stage>,
    );

    let write_disk = Arc::clone(disk);
    let striping_w = Striping::new(nodes, cfg.block_bytes);
    let write = prog.add_stage("write", {
        let mut relocated: Vec<u8> = Vec::new();
        let mut runs = Vec::new();
        let mut scratch = Vec::new();
        map_stage(move |buf, _ctx| {
            relocated.clear();
            for chunk in chunks::iter_chunks(buf.filled()) {
                let chunk = chunk?;
                let (dest, local) = striping_w.locate_byte(chunk.a);
                debug_assert_eq!(dest, rank, "stripe piece landed on wrong node");
                chunks::push_chunk(&mut relocated, local, 0, chunk.data);
            }
            chunks::for_each_coalesced_write(&relocated, &mut runs, &mut scratch, |off, data| {
                write_disk
                    .write_at(OUTPUT_FILE, off, data)
                    .map_err(SortError::from)?;
                Ok(())
            })
        })
    });

    // ---- pipelines ----
    for (j, &len) in run_lens.iter().enumerate() {
        let rounds = len.div_ceil(vert_buf as u64);
        let stage = if use_virtual_reads {
            read_ids[0]
        } else {
            read_ids[j]
        };
        prog.add_pipeline(
            PipelineCfg::new(format!("run{j}"), cfg.vertical_buffers, vert_buf)
                .rounds(Rounds::Count(rounds)),
            &[stage, merge],
        )?;
    }
    prog.add_pipeline(
        PipelineCfg::new("merged", cfg.pipeline_buffers, cfg.block_bytes)
            .rounds(Rounds::UntilStopped),
        &[merge, send],
    )?;
    let recv_buf = 2 * cfg.block_bytes + 2 * CHUNK_HEADER_BYTES + 64;
    prog.add_pipeline(
        PipelineCfg::new("recv", cfg.pipeline_buffers, recv_buf).rounds(Rounds::UntilStopped),
        &[receive, write],
    )?;
    let report = prog.run()?;
    // Write barrier: verification reads the striped output after the run.
    disk.flush().map_err(SortError::from)?;

    Ok(Pass2Out {
        threads: report.threads_spawned,
        runs_merged: k,
        report,
    })
}
