//! Splitter selection by oversampling (§V, "Selecting splitters").
//!
//! Each node samples `oversample · P` records from its local input at
//! random positions, extends their keys with `(origin node, origin index)`
//! to make them unique, and sends them to node 0.  Node 0 sorts the pooled
//! samples and picks the `P−1` extended keys at evenly spaced ranks; these
//! are broadcast to every node.  With extended keys, even an all-equal-keys
//! input partitions evenly — the paper reports all partition sizes within
//! 10% of the average, which experiment T2 reproduces.

use fg_cluster::Communicator;
use fg_pdm::DiskRef;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SortConfig;
use crate::input::INPUT_FILE;
use crate::record::ExtKey;
use crate::SortError;

/// Sample local records and agree on `P−1` splitters cluster-wide.
pub fn select_splitters(
    cfg: &SortConfig,
    rank: usize,
    comm: &Communicator,
    disk: &DiskRef,
) -> Result<Vec<ExtKey>, SortError> {
    let nodes = cfg.nodes;
    let rb = cfg.record.record_bytes;
    let samples_here = (cfg.oversample * nodes).min(cfg.records_per_node);

    // Deterministic sample positions, distinct per node.
    const SAMPLE_SALT: u64 = 0x5A3B_1E00_0000_0001;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ SAMPLE_SALT ^ (rank as u64) << 32);
    let mut mine = Vec::with_capacity(samples_here);
    let mut rec = vec![0u8; rb];
    for _ in 0..samples_here {
        let idx = rng.random_range(0..cfg.records_per_node) as u64;
        disk.read_at(INPUT_FILE, idx * rb as u64, &mut rec)?;
        mine.push(ExtKey {
            key: cfg.record.key(&rec),
            node: rank as u32,
            seq: idx,
        });
    }

    // Pool at node 0, pick splitters, broadcast.
    let mut payload = Vec::with_capacity(mine.len() * ExtKey::BYTES);
    for e in &mine {
        payload.extend_from_slice(&e.to_bytes());
    }
    let gathered = comm.gather(0, payload)?;
    let splitter_bytes = if let Some(parts) = gathered {
        let mut pool: Vec<ExtKey> = Vec::new();
        for part in parts {
            if part.len() % ExtKey::BYTES != 0 {
                return Err(SortError::Corrupt("ragged sample payload".into()));
            }
            for raw in part.chunks_exact(ExtKey::BYTES) {
                pool.push(ExtKey::from_bytes(raw)?);
            }
        }
        // Selection, not a full sort: the splitter ranks are known up
        // front, so partition the pool once per rank with
        // `select_nth_unstable` — expected linear total work — instead of
        // sorting all `oversample · P²` samples.  Each selection leaves
        // `pool[..at]` ≤ `pool[at]` ≤ `pool[at+1..]`, so later (larger)
        // ranks only need to search the suffix.
        let mut out = Vec::with_capacity((nodes - 1) * ExtKey::BYTES);
        let mut done = 0usize; // everything before `done` is already placed
        let mut prev: Option<(usize, ExtKey)> = None;
        for i in 1..nodes {
            let at = (i * pool.len() / nodes).min(pool.len() - 1);
            let key = match prev {
                Some((prev_at, prev_key)) if prev_at == at => prev_key,
                _ => {
                    let (_, nth, _) = pool[done..].select_nth_unstable(at - done);
                    let key = *nth;
                    done = at + 1;
                    key
                }
            };
            out.extend_from_slice(&key.to_bytes());
            prev = Some((at, key));
        }
        out
    } else {
        Vec::new()
    };
    let bytes = comm.broadcast(0, &splitter_bytes)?;
    if bytes.len() != (nodes - 1) * ExtKey::BYTES {
        return Err(SortError::Corrupt(format!(
            "expected {} splitters, got {} bytes",
            nodes - 1,
            bytes.len()
        )));
    }
    let splitters: Vec<ExtKey> = bytes
        .chunks_exact(ExtKey::BYTES)
        .map(ExtKey::from_bytes)
        .collect::<Result<_, _>>()?;
    debug_assert!(splitters.windows(2).all(|w| w[0] <= w[1]));
    Ok(splitters)
}
