//! dsort: the paper's two-pass out-of-core distribution sort (§V).
//!
//! Phases, per node, with cluster-wide barriers and max-reductions around
//! each so reported times match the paper's per-pass accounting:
//!
//! 1. **Sampling** (preprocessing): select `P−1` splitters by oversampling
//!    with extended keys ([`sampling`]).
//! 2. **Pass 1**: partition and distribute — disjoint send/receive FG
//!    pipelines ([`pass1`]); each node ends with sorted runs on disk.
//! 3. **Pass 2**: merge runs (intersecting pipelines, virtual read stages),
//!    load-balance, and stripe the output ([`pass2`]).

pub mod pass1;
pub mod pass2;
pub mod sampling;

use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_cluster::{Cluster, ClusterCfg, ClusterError, ClusterObs};
use fg_core::cluster_report::{ClusterReport, RankReport};
use fg_core::metrics::{MetricsRegistry, MetricsSnapshot};
use fg_pdm::{DiskRef, DiskStats};

use crate::config::SortConfig;
use crate::SortError;

/// Timings and counters from one dsort run.
#[derive(Debug, Clone)]
pub struct DsortReport {
    /// Max-across-nodes wall time of the sampling phase.
    pub sampling: Duration,
    /// Max-across-nodes wall time of pass 1.
    pub pass1: Duration,
    /// Max-across-nodes wall time of pass 2.
    pub pass2: Duration,
    /// Records each node's partition received (T2's balance data).
    pub partition_records: Vec<u64>,
    /// Sorted runs each node merged in pass 2.
    pub runs_per_node: Vec<u64>,
    /// OS threads each node's pass-2 FG program spawned (A2's data).
    pub pass2_threads: Vec<u64>,
    /// Per-node disk stats accumulated over the whole run.
    pub disk_stats: Vec<DiskStats>,
    /// Per-node bytes sent over the interconnect.
    pub bytes_sent: Vec<u64>,
    /// Node 0's FG reports for both passes (with spans when
    /// `SortConfig::trace` was set) — render with
    /// [`fg_core::Report::render_gantt`].
    pub node0_reports: Option<(fg_core::Report, fg_core::Report)>,
    /// Snapshot of the metrics registry passed via
    /// [`DsortOptions::metrics`] (`comm/…` traffic and collective
    /// latencies, plus `disk/…` I/O when the disks were provisioned with
    /// [`provision_with_metrics`](crate::input::provision_with_metrics));
    /// empty when no registry was attached.
    pub metrics: MetricsSnapshot,
    /// The merged cluster report (every rank's FG reports, wall time, and
    /// registry snapshot) when the run was launched with
    /// [`DsortOptions::observe`]; feed it to
    /// [`fg_core::diagnose_cluster`] for straggler/skew analysis.
    pub cluster: Option<ClusterReport>,
}

impl DsortReport {
    /// Total wall time (sampling + both passes).
    pub fn total(&self) -> Duration {
        self.sampling + self.pass1 + self.pass2
    }
}

/// Options tweaking dsort's structure (for ablations) and instrumentation.
#[derive(Debug, Clone)]
pub struct DsortOptions {
    /// Use virtual vertical read stages in pass 2 (the default).  Disabled
    /// by ablation A2 to measure the thread explosion virtual stages avoid.
    pub virtual_reads: bool,
    /// When set, every node's communicator records per-peer traffic and
    /// collective latencies into this registry, and
    /// [`DsortReport::metrics`] carries the final snapshot.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Full per-node observability: each rank gets its *own* metrics
    /// registry (its FG programs and communicator record into it), every
    /// rank's FG reports are collected, and [`DsortReport::cluster`]
    /// carries the merged [`ClusterReport`].  When the config also sets a
    /// `trace_sink`, each rank's spans land in that rank's track group and
    /// sends carry their buffer's trace id across the wire.  Supersedes
    /// [`DsortOptions::metrics`] when both are set.
    pub observe: bool,
}

impl Default for DsortOptions {
    fn default() -> Self {
        DsortOptions {
            virtual_reads: true,
            metrics: None,
            observe: false,
        }
    }
}

/// Run dsort on the provisioned `disks`; leaves striped output in
/// `output` on every disk.
pub fn run_dsort(cfg: &SortConfig, disks: &[DiskRef]) -> Result<DsortReport, SortError> {
    run_dsort_with(cfg, disks, DsortOptions::default())
}

/// [`run_dsort`] with explicit structural options.
pub fn run_dsort_with(
    cfg: &SortConfig,
    disks: &[DiskRef],
    opts: DsortOptions,
) -> Result<DsortReport, SortError> {
    cfg.validate()?;
    if disks.len() != cfg.nodes {
        return Err(SortError::Config(format!(
            "need {} disks, got {}",
            cfg.nodes,
            disks.len()
        )));
    }
    let cfg = cfg.clone();
    let disks_arc: Vec<DiskRef> = disks.to_vec();

    #[derive(Debug)]
    struct NodeOut {
        times: [Duration; 3],
        wall: Duration,
        partitions: Vec<u64>,
        runs: Vec<u64>,
        threads: Vec<u64>,
        reports: Option<(fg_core::Report, fg_core::Report)>,
    }

    let cluster_cfg = ClusterCfg {
        nodes: cfg.nodes,
        net: cfg.net,
    };
    let registry = opts.metrics.clone();
    let virtual_reads = opts.virtual_reads;
    let observed = opts.observe;
    let trace_sink = cfg.trace_sink.clone();
    let node_fn = move |node: fg_cluster::NodeCtx| -> Result<NodeOut, ClusterError> {
        let rank = node.rank();
        let comm = node.comm().clone();
        let disk = Arc::clone(&disks_arc[rank]);
        let wall_start = Instant::now();
        // Observed runs give each rank its own registry and track group:
        // the rank's FG programs record next to its communicator.
        let cfg = if observed {
            let mut cfg = cfg.clone();
            cfg.metrics = node.registry().cloned();
            cfg.trace_group = Some(rank as u32);
            cfg
        } else {
            cfg.clone()
        };

        // Phase 0: sampling.
        comm.barrier()?;
        let t0 = Instant::now();
        let splitters =
            sampling::select_splitters(&cfg, rank, &comm, &disk).map_err(ClusterError::from)?;
        comm.barrier()?;
        let sampling_ns = comm.allreduce_max(t0.elapsed().as_nanos() as u64)?;

        // Pass 1: partition and distribute.
        comm.barrier()?;
        let t1 = Instant::now();
        let p1 = pass1::pass1(&cfg, rank, &comm, &disk, &splitters).map_err(ClusterError::from)?;
        comm.barrier()?;
        let pass1_ns = comm.allreduce_max(t1.elapsed().as_nanos() as u64)?;

        // Pass 2: merge, load-balance, stripe.  The exchange of
        // partition sizes (needed for global rank offsets) is part of
        // the pass.
        comm.barrier()?;
        let t2 = Instant::now();
        let partitions = comm.allgather_u64(p1.received_records)?;
        let rank_offset: u64 = partitions[..rank].iter().sum(); // records
        let p2 = pass2::pass2(
            &cfg,
            rank,
            &comm,
            &disk,
            &p1.run_lens,
            rank_offset,
            virtual_reads,
        )
        .map_err(ClusterError::from)?;
        comm.barrier()?;
        let pass2_ns = comm.allreduce_max(t2.elapsed().as_nanos() as u64)?;

        let runs = comm.allgather_u64(p1.run_lens.len() as u64)?;
        let threads = comm.allgather_u64(p2.threads as u64)?;

        Ok(NodeOut {
            times: [
                Duration::from_nanos(sampling_ns),
                Duration::from_nanos(pass1_ns),
                Duration::from_nanos(pass2_ns),
            ],
            wall: wall_start.elapsed(),
            partitions,
            runs,
            threads,
            reports: (rank == 0 || observed).then(|| (p1.report.clone(), p2.report.clone())),
        })
    };
    let run = if observed {
        let mut obs = ClusterObs::per_node(cluster_cfg.nodes);
        if let Some(sink) = &trace_sink {
            obs = obs.with_trace(Arc::clone(sink));
        }
        Cluster::run_observed(cluster_cfg, obs, node_fn)
    } else {
        match registry {
            Some(reg) => Cluster::run_with_metrics(cluster_cfg, reg, node_fn),
            None => Cluster::run(cluster_cfg, node_fn),
        }
    }
    .map_err(|e| SortError::Comm(e.to_string()))?;

    let cluster = observed.then(|| {
        let mut cr = ClusterReport::new(cluster_cfg.nodes);
        for (rank, out) in run.results.iter().enumerate() {
            let reports = out
                .reports
                .as_ref()
                .map(|(p1, p2)| vec![p1.clone(), p2.clone()])
                .unwrap_or_default();
            cr.push(RankReport {
                rank,
                wall: out.wall,
                reports,
                metrics: run.node_metrics.get(rank).cloned().unwrap_or_default(),
            });
        }
        cr
    });
    let node0 = &run.results[0];
    Ok(DsortReport {
        sampling: node0.times[0],
        pass1: node0.times[1],
        pass2: node0.times[2],
        partition_records: node0.partitions.clone(),
        runs_per_node: node0.runs.clone(),
        pass2_threads: node0.threads.clone(),
        disk_stats: disks.iter().map(|d| d.stats()).collect(),
        bytes_sent: run.traffic.iter().map(|t| t.bytes_sent).collect(),
        node0_reports: run.results[0].reports.clone(),
        metrics: run.metrics,
        cluster,
    })
}
