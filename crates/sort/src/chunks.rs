//! Self-describing chunked payloads.
//!
//! Communication stages move *placed* data: a run of record bytes plus
//! where those bytes belong (a destination column and row, or a global
//! offset in the striped output).  Rather than making every receiver
//! re-derive placement arithmetic, senders prefix each run with a small
//! header.  A payload is a sequence of chunks:
//!
//! ```text
//! [a: u64 LE][b: u64 LE][len: u64 LE][data: len bytes]  ...repeated...
//! ```
//!
//! The meaning of `a` and `b` is up to the protocol using the codec (e.g.
//! `a` = destination column, `b` = destination row; or `a` = global byte
//! offset, `b` unused).

use crate::SortError;

/// One placed run of bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk<'a> {
    /// First placement word (protocol-defined).
    pub a: u64,
    /// Second placement word (protocol-defined).
    pub b: u64,
    /// The data.
    pub data: &'a [u8],
}

/// Bytes of overhead per chunk.
pub const CHUNK_HEADER_BYTES: usize = 24;

/// Append a chunk to `out`.
pub fn push_chunk(out: &mut Vec<u8>, a: u64, b: u64, data: &[u8]) {
    out.extend_from_slice(&a.to_le_bytes());
    out.extend_from_slice(&b.to_le_bytes());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(data);
}

/// Size a chunk of `len` data bytes occupies.
pub fn chunk_size(len: usize) -> usize {
    CHUNK_HEADER_BYTES + len
}

/// Iterate over the chunks of a payload.
pub fn iter_chunks(bytes: &[u8]) -> ChunkIter<'_> {
    ChunkIter { bytes, off: 0 }
}

/// Iterator over [`Chunk`]s; yields an error item on malformed input.
pub struct ChunkIter<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Iterator for ChunkIter<'a> {
    type Item = Result<Chunk<'a>, SortError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.off == self.bytes.len() {
            return None;
        }
        let bad = |what: &str| {
            Some(Err(SortError::Corrupt(format!(
                "chunk stream: {what} at offset {}",
                self.bytes.len()
            ))))
        };
        if self.off + CHUNK_HEADER_BYTES > self.bytes.len() {
            self.off = self.bytes.len();
            return bad("truncated header");
        }
        let word = |i: usize| {
            u64::from_le_bytes(
                self.bytes[self.off + i * 8..self.off + (i + 1) * 8]
                    .try_into()
                    .expect("8 bytes"),
            )
        };
        let (a, b, len) = (word(0), word(1), word(2) as usize);
        let start = self.off + CHUNK_HEADER_BYTES;
        let end = match start.checked_add(len) {
            Some(e) if e <= self.bytes.len() => e,
            _ => {
                self.off = self.bytes.len();
                return bad("truncated data");
            }
        };
        self.off = end;
        Some(Ok(Chunk {
            a,
            b,
            data: &self.bytes[start..end],
        }))
    }
}

/// Collect all chunks, failing on the first malformed one.
pub fn parse_chunks(bytes: &[u8]) -> Result<Vec<Chunk<'_>>, SortError> {
    iter_chunks(bytes).collect()
}

/// Coalesce positioned writes: given `(offset, data)` runs, sort by offset
/// and merge runs that are adjacent in the file, so a write stage issues
/// one large disk operation instead of many small ones (positioned-write
/// batching, as any real implementation's write stage would do).
///
/// Overlapping runs are *not* merged; they are issued as separate writes
/// in **offset order** (not input order), so callers must not rely on any
/// particular overlap outcome.  The sorts never produce overlapping writes.
pub fn coalesce_writes(mut runs: Vec<(u64, Vec<u8>)>) -> Vec<(u64, Vec<u8>)> {
    runs.retain(|(_, d)| !d.is_empty());
    runs.sort_by_key(|(off, _)| *off);
    let mut out: Vec<(u64, Vec<u8>)> = Vec::with_capacity(runs.len());
    for (off, data) in runs {
        match out.last_mut() {
            Some((last_off, last_data)) if *last_off + last_data.len() as u64 == off => {
                last_data.extend_from_slice(&data);
            }
            _ => out.push((off, data)),
        }
    }
    out
}

/// Allocation-free variant of [`coalesce_writes`] for write stages on the
/// hot path: walk the chunk-framed `payload` (with `a` = file offset),
/// coalesce offset-adjacent runs, and hand each maximal positioned write to
/// `emit`.  A run with no adjacent neighbor is emitted straight out of
/// `payload` without copying; only genuinely mergeable groups are gathered
/// into `scratch`.  `runs` and `scratch` are caller-owned and reused across
/// rounds, so a warmed-up round allocates nothing.
///
/// Overlap semantics match [`coalesce_writes`]: overlapping runs are issued
/// separately in offset order.
pub fn for_each_coalesced_write<E: From<SortError>>(
    payload: &[u8],
    runs: &mut Vec<(u64, std::ops::Range<usize>)>,
    scratch: &mut Vec<u8>,
    mut emit: impl FnMut(u64, &[u8]) -> Result<(), E>,
) -> Result<(), E> {
    runs.clear();
    for chunk in iter_chunks(payload) {
        let chunk = chunk.map_err(E::from)?;
        if chunk.data.is_empty() {
            continue;
        }
        let start = chunk.data.as_ptr() as usize - payload.as_ptr() as usize;
        runs.push((chunk.a, start..start + chunk.data.len()));
    }
    runs.sort_unstable_by_key(|(off, _)| *off);
    let mut i = 0;
    while i < runs.len() {
        let off = runs[i].0;
        let mut end_off = off + runs[i].1.len() as u64;
        let mut j = i + 1;
        while j < runs.len() && runs[j].0 == end_off {
            end_off += runs[j].1.len() as u64;
            j += 1;
        }
        if j == i + 1 {
            emit(off, &payload[runs[i].1.clone()])?;
        } else {
            scratch.clear();
            for (_, range) in &runs[i..j] {
                scratch.extend_from_slice(&payload[range.clone()]);
            }
            emit(off, scratch)?;
        }
        i = j;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_chunks() {
        let mut buf = Vec::new();
        push_chunk(&mut buf, 1, 2, &[10, 20]);
        push_chunk(&mut buf, 3, 4, &[]);
        push_chunk(&mut buf, 5, 6, &[7; 100]);
        let chunks = parse_chunks(&buf).unwrap();
        assert_eq!(chunks.len(), 3);
        assert_eq!(
            (chunks[0].a, chunks[0].b, chunks[0].data),
            (1, 2, &[10u8, 20][..])
        );
        assert_eq!(chunks[1].data, &[] as &[u8]);
        assert_eq!(chunks[2].data.len(), 100);
        assert_eq!(buf.len(), 3 * CHUNK_HEADER_BYTES + 102);
        assert_eq!(chunk_size(2), CHUNK_HEADER_BYTES + 2);
    }

    #[test]
    fn empty_payload_is_empty() {
        assert!(parse_chunks(&[]).unwrap().is_empty());
    }

    #[test]
    fn truncated_header_rejected() {
        let mut buf = Vec::new();
        push_chunk(&mut buf, 1, 2, &[9]);
        assert!(parse_chunks(&buf[..buf.len() - 2]).is_err());
        assert!(parse_chunks(&buf[..10]).is_err());
    }

    #[test]
    fn absurd_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(parse_chunks(&buf).is_err());
    }
}

#[cfg(test)]
mod coalesce_tests {
    use super::*;

    #[test]
    fn merges_adjacent_runs() {
        let runs = vec![(10u64, vec![3, 4]), (0u64, vec![0, 1]), (2u64, vec![2])];
        let out = coalesce_writes(runs);
        assert_eq!(out, vec![(0, vec![0, 1, 2]), (10, vec![3, 4])]);
    }

    #[test]
    fn keeps_gaps_separate() {
        let out = coalesce_writes(vec![(0, vec![1]), (2, vec![2])]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn drops_empty_runs() {
        let out = coalesce_writes(vec![(0, vec![]), (5, vec![9])]);
        assert_eq!(out, vec![(5, vec![9])]);
    }

    #[test]
    fn overlapping_runs_stay_separate() {
        let out = coalesce_writes(vec![(0, vec![1, 1]), (1, vec![2])]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 1);
    }

    #[test]
    fn empty_input() {
        assert!(coalesce_writes(vec![]).is_empty());
    }

    fn collect_writes(payload: &[u8]) -> Vec<(u64, Vec<u8>)> {
        let mut runs = Vec::new();
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        for_each_coalesced_write::<SortError>(payload, &mut runs, &mut scratch, |off, data| {
            out.push((off, data.to_vec()));
            Ok(())
        })
        .unwrap();
        out
    }

    #[test]
    fn streaming_variant_matches_batch_semantics() {
        let mut payload = Vec::new();
        push_chunk(&mut payload, 10, 0, &[3, 4]);
        push_chunk(&mut payload, 0, 0, &[0, 1]);
        push_chunk(&mut payload, 2, 0, &[2]);
        push_chunk(&mut payload, 20, 0, &[]);
        assert_eq!(
            collect_writes(&payload),
            vec![(0, vec![0, 1, 2]), (10, vec![3, 4])]
        );
    }

    #[test]
    fn streaming_variant_reuses_scratch_across_rounds() {
        let mut a = Vec::new();
        push_chunk(&mut a, 0, 0, &[1]);
        push_chunk(&mut a, 1, 0, &[2]);
        let mut b = Vec::new();
        push_chunk(&mut b, 7, 0, &[9]);
        let mut runs = Vec::new();
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        for payload in [&a, &b] {
            for_each_coalesced_write::<SortError>(payload, &mut runs, &mut scratch, |off, data| {
                out.push((off, data.to_vec()));
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(out, vec![(0, vec![1, 2]), (7, vec![9])]);
    }

    #[test]
    fn streaming_variant_propagates_malformed_payload() {
        let mut payload = Vec::new();
        push_chunk(&mut payload, 0, 0, &[1, 2, 3]);
        let mut runs = Vec::new();
        let mut scratch = Vec::new();
        let r = for_each_coalesced_write::<SortError>(
            &payload[..payload.len() - 1],
            &mut runs,
            &mut scratch,
            |_, _| Ok(()),
        );
        assert!(r.is_err());
    }
}
