//! Key distributions for experiment inputs.
//!
//! The paper's experiments (§VI) sort inputs with four key distributions —
//! uniform random, all keys equal, standard normal, and Poisson with λ = 1 —
//! plus unspecified adversarial "input distributions designed to elicit
//! highly unbalanced communication in pass 1 of dsort".  We implement all
//! four named distributions and two adversarial ones for experiment T4.
//!
//! Keys are `u64`.  Real-valued distributions map through an
//! order-preserving `f64 → u64` transform so sorting the integer keys sorts
//! the underlying reals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A key distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over all of `u64`.
    Uniform,
    /// Every key identical — the worst case for naive splitter selection,
    /// handled by extended keys.
    AllEqual,
    /// Standard normal, mapped order-preservingly into `u64`.
    StdNormal,
    /// Poisson with λ = 1: small non-negative integers, heavy duplication.
    Poisson,
    /// Adversarial (T4): node `i`'s records all draw from the contiguous
    /// key range that belongs to node `(i + shift) mod P` in a balanced
    /// partition, so every node streams its entire input to a single target
    /// and receives everything from a single source — maximally bursty,
    /// unbalanced communication.
    Shifted {
        /// How many nodes to the right each node's data targets.
        shift: usize,
    },
    /// Adversarial (T4): `hot_percent` of all keys are one single value,
    /// the rest uniform — stress for extended-key tie-breaking at scale.
    HotKey {
        /// Percentage (0–100) of records that share the hot key.
        hot_percent: u8,
    },
    /// Zipf-distributed ranks over `n` distinct keys with exponent ~1 —
    /// the classic heavy-tailed skew of real aggregation workloads
    /// (used by the group-by application's skew tests).
    Zipf {
        /// Number of distinct keys.
        n: u32,
    },
}

impl KeyDist {
    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            KeyDist::Uniform => "uniform".into(),
            KeyDist::AllEqual => "all-equal".into(),
            KeyDist::StdNormal => "std-normal".into(),
            KeyDist::Poisson => "poisson".into(),
            KeyDist::Shifted { shift } => format!("shifted-{shift}"),
            KeyDist::HotKey { hot_percent } => format!("hotkey-{hot_percent}"),
            KeyDist::Zipf { n } => format!("zipf-{n}"),
        }
    }

    /// The four distributions of Figure 8.
    pub fn figure8() -> [KeyDist; 4] {
        [
            KeyDist::Uniform,
            KeyDist::AllEqual,
            KeyDist::StdNormal,
            KeyDist::Poisson,
        ]
    }
}

/// A per-node key generator: deterministic given (seed, node).
pub struct KeyGen {
    dist: KeyDist,
    rng: StdRng,
    node: usize,
    nodes: usize,
}

impl KeyGen {
    /// Generator for `node` of `nodes` with the given distribution.
    pub fn new(dist: KeyDist, seed: u64, node: usize, nodes: usize) -> Self {
        assert!(node < nodes);
        KeyGen {
            dist,
            // Decorrelate node streams without structure in low bits.
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ node as u64),
            node,
            nodes,
        }
    }

    /// Next key.
    pub fn next_key(&mut self) -> u64 {
        match self.dist {
            KeyDist::Uniform => self.rng.random(),
            KeyDist::AllEqual => 0x5555_5555_5555_5555,
            KeyDist::StdNormal => f64_to_ordered_u64(sample_std_normal(&mut self.rng)),
            KeyDist::Poisson => sample_poisson_1(&mut self.rng),
            KeyDist::Shifted { shift } => {
                let target = (self.node + shift) % self.nodes;
                // Draw uniformly from the key range a balanced partition
                // assigns to `target`.
                let span = u64::MAX / self.nodes as u64;
                let lo = span * target as u64;
                lo + self.rng.random_range(0..span)
            }
            KeyDist::HotKey { hot_percent } => {
                if self.rng.random_range(0..100u8) < hot_percent {
                    HOT_KEY
                } else {
                    self.rng.random()
                }
            }
            KeyDist::Zipf { n } => sample_zipf(&mut self.rng, n.max(1)),
        }
    }
}

/// One Zipf(s≈1) rank in `1..=n` via inverse-CDF on the harmonic sum
/// approximation (rejection-free; exact enough for workload generation).
fn sample_zipf(rng: &mut StdRng, n: u32) -> u64 {
    // H(k) ≈ ln(k) + γ; invert u·H(n) = H(k)  ⇒  k ≈ e^(u·H(n) − γ).
    const GAMMA: f64 = 0.577_215_664_901_532_9;
    let h_n = (n as f64).ln() + GAMMA;
    let u: f64 = rng.random();
    let k = (u * h_n - GAMMA).exp();
    (k.ceil() as u64).clamp(1, n as u64)
}

/// The single repeated key of [`KeyDist::HotKey`].
pub const HOT_KEY: u64 = 0x7777_7777_7777_7777;

/// Map an `f64` to a `u64` such that `a < b  ⇒  map(a) < map(b)` for all
/// non-NaN values (the standard total-order bit trick).
pub fn f64_to_ordered_u64(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits ^ (1 << 63)
    }
}

/// One standard-normal sample via Box–Muller.
fn sample_std_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// One Poisson(λ=1) sample via Knuth's method.
fn sample_poisson_1(rng: &mut StdRng) -> u64 {
    let l = (-1.0f64).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(dist: KeyDist, seed: u64, node: usize, nodes: usize, n: usize) -> Vec<u64> {
        let mut g = KeyGen::new(dist, seed, node, nodes);
        (0..n).map(|_| g.next_key()).collect()
    }

    #[test]
    fn deterministic_per_seed_and_node() {
        let a = keys(KeyDist::Uniform, 7, 0, 4, 100);
        let b = keys(KeyDist::Uniform, 7, 0, 4, 100);
        let c = keys(KeyDist::Uniform, 7, 1, 4, 100);
        let d = keys(KeyDist::Uniform, 8, 0, 4, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn all_equal_is_constant() {
        let k = keys(KeyDist::AllEqual, 1, 2, 4, 50);
        assert!(k.iter().all(|&x| x == k[0]));
    }

    #[test]
    fn uniform_spreads_over_range() {
        let k = keys(KeyDist::Uniform, 3, 0, 1, 10_000);
        let below_half = k.iter().filter(|&&x| x < u64::MAX / 2).count();
        assert!((4000..6000).contains(&below_half), "{below_half}");
    }

    #[test]
    fn f64_map_preserves_order() {
        let xs = [-1e300, -2.5, -0.0, 0.0, 1e-300, 2.5, 1e300];
        for w in xs.windows(2) {
            assert!(
                f64_to_ordered_u64(w[0]) <= f64_to_ordered_u64(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        assert!(f64_to_ordered_u64(-1.0) < f64_to_ordered_u64(1.0));
    }

    #[test]
    fn std_normal_is_roughly_symmetric() {
        let zero = f64_to_ordered_u64(0.0);
        let k = keys(KeyDist::StdNormal, 11, 0, 1, 10_000);
        let below = k.iter().filter(|&&x| x < zero).count();
        assert!((4500..5500).contains(&below), "{below}");
    }

    #[test]
    fn poisson_mean_is_about_one() {
        let k = keys(KeyDist::Poisson, 5, 0, 1, 20_000);
        let mean = k.iter().sum::<u64>() as f64 / k.len() as f64;
        assert!((0.95..1.05).contains(&mean), "mean {mean}");
        assert!(k.iter().all(|&x| x < 20), "poisson(1) tail too long");
    }

    #[test]
    fn shifted_targets_single_partition() {
        let nodes = 4;
        let span = u64::MAX / nodes as u64;
        for node in 0..nodes {
            let k = keys(KeyDist::Shifted { shift: 1 }, 2, node, nodes, 500);
            let target = (node + 1) % nodes;
            for x in k {
                assert_eq!((x / span).min(nodes as u64 - 1), target as u64);
            }
        }
    }

    #[test]
    fn hotkey_fraction_respected() {
        let k = keys(KeyDist::HotKey { hot_percent: 90 }, 9, 0, 1, 10_000);
        let hot = k.iter().filter(|&&x| x == HOT_KEY).count();
        assert!((8700..9300).contains(&hot), "{hot}");
    }

    #[test]
    fn zipf_is_heavy_tailed() {
        let k = keys(KeyDist::Zipf { n: 1000 }, 13, 0, 1, 20_000);
        assert!(k.iter().all(|&x| (1..=1000).contains(&x)));
        let ones = k.iter().filter(|&&x| x == 1).count();
        let tail = k.iter().filter(|&&x| x > 500).count();
        // Rank 1 alone draws a few percent of all samples — dozens of
        // times a uniform key's share (20 of 20_000) — while each of the
        // 500 tail ranks averages a handful.
        assert!(ones > 1000, "rank 1 count {ones}");
        let tail_per_key = tail as f64 / 500.0;
        assert!(
            (ones as f64) > 50.0 * tail_per_key,
            "head {ones} vs tail/key {tail_per_key}"
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(KeyDist::Uniform.label(), "uniform");
        assert_eq!(KeyDist::Shifted { shift: 2 }.label(), "shifted-2");
        assert_eq!(KeyDist::figure8().len(), 4);
    }
}
