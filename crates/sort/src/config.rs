//! Experiment configuration and derived geometry.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use fg_cluster::NetCfg;
use fg_pdm::DiskCfg;

use crate::keygen::KeyDist;
use crate::record::RecordFormat;
use crate::SortError;

/// Which storage backend [`provision`](crate::input::provision) builds the
/// per-node disks on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DiskBackend {
    /// In-memory [`SimDisk`](fg_pdm::SimDisk) under the configured
    /// [`DiskCfg`] cost model.
    #[default]
    Sim,
    /// Real files via [`OsDisk`](fg_pdm::OsDisk): node `r`'s disk lives
    /// under `dir/d{r}`.  The [`DiskCfg`] cost model is ignored — kernel
    /// I/O is the cost.
    Os {
        /// Root directory holding one `d{rank}` subdirectory per node.
        dir: PathBuf,
    },
}

/// Everything a sorting run needs: cluster shape, dataset, cost models, and
/// buffer geometry.
#[derive(Debug, Clone)]
pub struct SortConfig {
    /// Number of cluster nodes (`P`).
    pub nodes: usize,
    /// Records per node; total `N = nodes * records_per_node`.
    pub records_per_node: usize,
    /// Record layout (16- or 64-byte in the paper).
    pub record: RecordFormat,
    /// Input key distribution.
    pub dist: KeyDist,
    /// RNG seed for the input.
    pub seed: u64,
    /// Per-node disk cost model.
    pub disk: DiskCfg,
    /// Interconnect cost model.
    pub net: NetCfg,
    /// Block size in bytes for disk transfers, communication payload
    /// batches, and output striping.  Must be a multiple of the record
    /// size.
    pub block_bytes: usize,
    /// dsort pass-1 run size in bytes (one sorted run per receive-pipeline
    /// buffer).  Must be a multiple of the record size.
    pub run_bytes: usize,
    /// dsort pass-2 vertical-pipeline buffer size in bytes.
    pub vertical_buf_bytes: usize,
    /// dsort pass-2 buffers per vertical pipeline (the read-ahead depth on
    /// each sorted run).
    pub vertical_buffers: usize,
    /// Buffers per FG pipeline.
    pub pipeline_buffers: usize,
    /// Oversampling factor for splitter selection: each node contributes
    /// `oversample` sample keys per partition.
    pub oversample: usize,
    /// Record per-stage blocked intervals so reports can render Gantt
    /// charts (`fgsort --trace`).  Currently honored by dsort's two passes
    /// (which return their FG reports); the other programs ignore it.
    pub trace: bool,
    /// Worker replicas for the CPU-bound sort stages (`fgsort --workers`).
    /// 1 keeps every stage singular; above 1, csort and csort4 farm their
    /// in-core sort stages with `Program::workers`, whose ordered emission
    /// keeps the lockstep communication stages downstream correct.
    pub workers: usize,
    /// Storage backend for the per-node disks (`fgsort --backend`).
    pub backend: DiskBackend,
    /// Read-ahead depth of the per-disk I/O scheduler (`fgsort
    /// --io-depth`): 0 runs the backend bare (every read and write
    /// synchronous); `n ≥ 1` wraps each disk in an
    /// [`IoScheduler`](fg_pdm::IoScheduler) prefetching `n` blocks ahead
    /// per read stream, with coalescing write-behind.
    pub io_depth: usize,
    /// Causal-trace sink (`fgsort --trace OUT`): every FG program the sort
    /// runs flight-records per-buffer spans into this sink, and every
    /// scheduled disk logs its prefetch hits/misses (export with
    /// [`TraceSink::to_chrome_trace`](fg_core::TraceSink::to_chrome_trace)).
    pub trace_sink: Option<Arc<fg_core::TraceSink>>,
    /// Stall-watchdog timeout (`fgsort --watchdog-secs N`): armed on every
    /// FG program the sort runs; a program making no progress for this
    /// long dumps a post-mortem and aborts with
    /// [`FgError::Stalled`](fg_core::FgError::Stalled).
    pub watchdog: Option<Duration>,
    /// Closed-loop controller configuration (`fgsort --autotune`): when
    /// set, every FG program the sort runs samples its own telemetry and
    /// live-retunes worker-farm widths, buffer-pool sizes, and I/O
    /// read-ahead depth; the decision audit log lands in each pass's
    /// [`Report`](fg_core::Report).  `None` runs open-loop with the
    /// configured geometry.
    pub autotune: Option<fg_core::ControllerCfg>,
    /// Metrics registry shared across the run (`fgsort --telemetry` /
    /// `--autotune`): every FG program publishes its queue and stage
    /// metrics here, making them scrapeable while the sort runs and
    /// giving the controller its observation stream.
    pub metrics: Option<Arc<fg_core::MetricsRegistry>>,
    /// Chrome-trace track group for this node's FG programs: cluster sorts
    /// set it to the node's rank (per node, after cloning the config into
    /// the node function) so every program's spans land in that node's
    /// track group of the merged export.
    pub trace_group: Option<u32>,
    /// Core pinning for every FG program the sort runs (`fgsort --pin` /
    /// `--pin-cores`): threads are placed round-robin over all cores or an
    /// explicit list at spawn, and the per-thread placement lands in each
    /// pass's report.  `None` leaves placement to the OS scheduler.
    pub pin: Option<fg_core::PinMode>,
    /// Memory ledger shared by every FG program the sort runs (`fgsort
    /// --profile` / `--mem-budget`): sources charge pool buffers to it as
    /// they are created and each stage's residency is tracked as buffers
    /// flow through, making `GET /resources` and the end-of-run resource
    /// report answer "which stage holds the memory".  `None` skips the
    /// accounting entirely.
    pub ledger: Option<Arc<fg_core::MemoryLedger>>,
}

impl SortConfig {
    /// A small, fast, cost-free configuration for tests.
    pub fn test_default(nodes: usize, records_per_node: usize) -> Self {
        SortConfig {
            nodes,
            records_per_node,
            record: RecordFormat::REC16,
            dist: KeyDist::Uniform,
            seed: 0xF00D,
            disk: DiskCfg::zero(),
            net: NetCfg::zero(),
            block_bytes: 64 * 16,
            run_bytes: 256 * 16,
            vertical_buf_bytes: 16 * 16,
            vertical_buffers: 2,
            pipeline_buffers: 3,
            oversample: 8,
            trace: false,
            workers: 1,
            backend: DiskBackend::Sim,
            io_depth: 0,
            trace_sink: None,
            watchdog: None,
            autotune: None,
            metrics: None,
            trace_group: None,
            pin: None,
            ledger: None,
        }
    }

    /// A configuration with cost models shaped like the paper's cluster.
    ///
    /// The paper's nodes pair an Ultra-320 SCSI disk (~60 MB/s sustained)
    /// with 2 Gb/s Myrinet (~250 MB/s) — a ~1:4 disk:network bandwidth
    /// ratio that makes the sorts I/O-bound.  We keep that ratio but scale
    /// both bandwidths (and the dataset, see `Scale` in `fg-bench`) down
    /// by ~100×, so that simulated-I/O sleep time dominates the real CPU
    /// time of the in-memory sorts even on a single-core host: disks at
    /// 600 KiB/s with 0.5 ms per-op latency, network at 2.5 MiB/s with
    /// 100 µs latency.
    pub fn experiment_default(nodes: usize, records_per_node: usize) -> Self {
        SortConfig {
            disk: DiskCfg::new(Duration::from_micros(500), 600.0 * 1024.0),
            net: NetCfg::new(Duration::from_micros(100), 2.5 * 1024.0 * 1024.0),
            block_bytes: 16 * 1024,
            run_bytes: 64 * 1024,
            vertical_buf_bytes: 8 * 1024,
            ..SortConfig::test_default(nodes, records_per_node)
        }
    }

    /// Apply this config's observability settings to an FG program: span
    /// recording for Gantt charts (`trace`), the causal-trace sink
    /// (`trace_sink`), and the stall watchdog (`watchdog`).  Every sort
    /// program calls this right after `Program::new`.
    pub fn instrument(&self, prog: &mut fg_core::Program) {
        if self.trace {
            prog.enable_tracing();
        }
        if let Some(sink) = &self.trace_sink {
            prog.set_trace_sink(Arc::clone(sink));
        }
        if let Some(timeout) = self.watchdog {
            prog.with_watchdog(timeout);
        }
        if let Some(reg) = &self.metrics {
            prog.set_metrics(Arc::clone(reg));
        }
        if let Some(group) = self.trace_group {
            prog.set_trace_group(group);
        }
        if let Some(pin) = &self.pin {
            prog.set_pinning(pin.clone());
        }
        if let Some(ledger) = &self.ledger {
            prog.set_memory_ledger(Arc::clone(ledger));
        }
    }

    /// [`instrument`](SortConfig::instrument) plus the closed-loop
    /// controller: registers each scheduled disk's read-ahead depth as a
    /// live actuator and attaches the controller when `autotune` is set.
    /// Programs that declare worker farms should size them with
    /// [`farm_capacity`](SortConfig::farm_capacity) so the controller has
    /// headroom to grow into.
    pub fn instrument_with_disks(&self, prog: &mut fg_core::Program, disks: &[fg_pdm::DiskRef]) {
        self.instrument(prog);
        if let Some(cfg) = &self.autotune {
            // The controller observes through the program's registry; give
            // the program a private one if the run didn't share any.
            if self.metrics.is_none() {
                prog.set_metrics(Arc::new(fg_core::MetricsRegistry::new()));
            }
            for disk in disks {
                if let Some(actuator) = Arc::clone(disk).depth_actuator() {
                    prog.add_depth_actuator(actuator);
                }
            }
            prog.set_controller(cfg.clone());
        }
    }

    /// Fresh kernel scratch for a pipeline's sort stage, wired to this
    /// config's metrics registry (when present) so the `kernel/*` counters
    /// are published.  One scratch per stage replica.
    pub fn sort_scratch(&self) -> crate::kernels::SortScratch {
        match &self.metrics {
            Some(reg) => crate::kernels::SortScratch::with_registry(reg),
            None => crate::kernels::SortScratch::new(),
        }
    }

    /// Declared width of the CPU-bound sort farms: the configured
    /// `workers` open-loop, but at least 4 replicas under `autotune` so
    /// the controller can grow a deliberately under-provisioned farm.
    pub fn farm_capacity(&self) -> usize {
        if self.autotune.is_some() {
            self.workers.max(4)
        } else {
            self.workers
        }
    }

    /// Total records across the cluster.
    pub fn total_records(&self) -> usize {
        self.nodes * self.records_per_node
    }

    /// Total bytes across the cluster.
    pub fn total_bytes(&self) -> u64 {
        self.total_records() as u64 * self.record.record_bytes as u64
    }

    /// Bytes of input per node.
    pub fn bytes_per_node(&self) -> u64 {
        self.records_per_node as u64 * self.record.record_bytes as u64
    }

    /// Records per block.
    pub fn records_per_block(&self) -> usize {
        self.block_bytes / self.record.record_bytes
    }

    /// Validate invariants common to both sorts.
    pub fn validate(&self) -> Result<(), SortError> {
        let err = |m: String| Err(SortError::Config(m));
        if self.nodes == 0 {
            return err("need at least one node".into());
        }
        if self.records_per_node == 0 {
            return err("need at least one record per node".into());
        }
        let rb = self.record.record_bytes;
        for (what, v) in [
            ("block_bytes", self.block_bytes),
            ("run_bytes", self.run_bytes),
            ("vertical_buf_bytes", self.vertical_buf_bytes),
        ] {
            if v == 0 || v % rb != 0 {
                return err(format!(
                    "{what} = {v} must be a positive multiple of the record size {rb}"
                ));
            }
        }
        if self.pipeline_buffers == 0 {
            return err("need at least one pipeline buffer".into());
        }
        if self.vertical_buffers == 0 {
            return err("need at least one vertical buffer".into());
        }
        if self.oversample == 0 {
            return err("oversample must be positive".into());
        }
        if self.workers == 0 {
            return err("workers must be positive".into());
        }
        if let Some(fg_core::PinMode::Cores(cores)) = &self.pin {
            if cores.is_empty() {
                return err("pin core list must be non-empty".into());
            }
        }
        if self.run_bytes < self.block_bytes {
            return err(format!(
                "run_bytes {} must be at least block_bytes {}",
                self.run_bytes, self.block_bytes
            ));
        }
        Ok(())
    }
}

/// The columnsort matrix geometry: `r × s`, column-major, column `j` owned
/// by node `j mod P` as its local column `j div P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Matrix {
    /// Rows per column.
    pub r: usize,
    /// Number of columns.
    pub s: usize,
    /// Cluster size.
    pub nodes: usize,
}

impl Matrix {
    /// Choose the columnsort geometry for `total` records on `nodes` nodes:
    /// the largest column count `s` such that
    ///
    /// * `P | s` (each node owns `s/P` columns),
    /// * `s | N` and `s | r` where `r = N/s` (clean even-step permutations),
    /// * `r` even (half-column shifts), and
    /// * `r ≥ 2(s−1)²` (Leighton's requirement).
    pub fn choose(total: usize, nodes: usize) -> Result<Matrix, SortError> {
        let mut best: Option<Matrix> = None;
        let mut m = 1usize;
        loop {
            let s = nodes * m;
            if s > total {
                break;
            }
            if total.is_multiple_of(s) {
                let r = total / s;
                if r.is_multiple_of(s) && r.is_multiple_of(2) && r >= 2 * (s - 1) * (s - 1) {
                    best = Some(Matrix { r, s, nodes });
                }
            }
            m += 1;
        }
        best.ok_or_else(|| {
            SortError::Config(format!(
                "no valid columnsort geometry for N={total}, P={nodes}; \
                 need s with P|s, s|N, s|(N/s), N/s even, N/s >= 2(s-1)^2 \
                 (powers of two for N/P work well)"
            ))
        })
    }

    /// Columns owned by each node.
    pub fn cols_per_node(&self) -> usize {
        self.s / self.nodes
    }

    /// Owner node of column `j`.
    pub fn owner(&self, col: usize) -> usize {
        col % self.nodes
    }

    /// Local column index of global column `j` on its owner.
    pub fn local_index(&self, col: usize) -> usize {
        col / self.nodes
    }

    /// Global column handled by `node` in round `t`.
    pub fn col_of_round(&self, node: usize, round: usize) -> usize {
        round * self.nodes + node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_default_validates() {
        SortConfig::test_default(4, 1024).validate().unwrap();
        SortConfig::experiment_default(16, 4096).validate().unwrap();
    }

    #[test]
    fn bad_configs_rejected() {
        let mut c = SortConfig::test_default(4, 1024);
        c.block_bytes = 100; // not a multiple of 16
        assert!(c.validate().is_err());
        let mut c = SortConfig::test_default(0, 1024);
        c.nodes = 0;
        assert!(c.validate().is_err());
        let mut c = SortConfig::test_default(4, 1024);
        c.run_bytes = c.block_bytes / 2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn derived_sizes() {
        let c = SortConfig::test_default(4, 1000);
        assert_eq!(c.total_records(), 4000);
        assert_eq!(c.total_bytes(), 64_000);
        assert_eq!(c.bytes_per_node(), 16_000);
        assert_eq!(c.records_per_block(), 64);
    }

    #[test]
    fn matrix_choice_satisfies_all_constraints() {
        for (n_per, p) in [(4096usize, 4usize), (16384, 16), (1024, 2), (8192, 8)] {
            let total = n_per * p;
            let m = Matrix::choose(total, p).unwrap();
            assert_eq!(m.s % p, 0);
            assert_eq!(total % m.s, 0);
            assert_eq!(m.r, total / m.s);
            assert_eq!(m.r % m.s, 0);
            assert_eq!(m.r % 2, 0);
            assert!(m.r >= 2 * (m.s - 1) * (m.s - 1), "{m:?}");
        }
    }

    #[test]
    fn matrix_prefers_more_columns() {
        // N = 2^18, P = 16: s = 32 is valid (r = 8192 >= 2*31^2 = 1922) but
        // s = 64 is not (r = 4096 < 2*63^2).
        let m = Matrix::choose(1 << 18, 16).unwrap();
        assert_eq!(m.s, 32);
        assert_eq!(m.r, 8192);
    }

    #[test]
    fn matrix_ownership_round_robin() {
        let m = Matrix::choose(1 << 18, 16).unwrap();
        assert_eq!(m.cols_per_node(), 2);
        assert_eq!(m.owner(0), 0);
        assert_eq!(m.owner(17), 1);
        assert_eq!(m.local_index(17), 1);
        assert_eq!(m.col_of_round(1, 1), 17);
    }

    #[test]
    fn impossible_geometry_errors() {
        // 3 records on 2 nodes: nothing works.
        assert!(Matrix::choose(3, 2).is_err());
    }
}
