//! csort4: the four-pass out-of-core columnsort of §III.
//!
//! "A relatively simple four-pass implementation of out-of-core columnsort
//! groups together each pair of consecutive steps into a single pass."
//! The three-pass [`csort`](crate::csort) coalesces steps 5–8; this module
//! keeps them split so the coalescing's benefit can be measured (the
//! fourth pass re-reads and re-writes the entire dataset):
//!
//! * **Pass 1** (steps 1–2) and **pass 2** (steps 3–4): identical to the
//!   three-pass version (re-used from [`crate::csort`]).
//! * **Pass 3** (steps 5–6): `read → sort → shift-communicate → write`.
//!   After sorting column `c`, its larger half is the top half of *shifted
//!   column* `c+1` and its smaller half the bottom half of shifted column
//!   `c`; each node sends the larger half to the next column's owner and
//!   writes the shifted column it owns to the intermediate file (shifted
//!   column `c` is stored by the owner of column `c`; the extra shifted
//!   column `s` — the larger half of column `s−1` — stays with the last
//!   column's owner).
//! * **Pass 4** (steps 7–8): `read → sort → stripe → write`.  Each shifted
//!   column is two sorted halves; the sort stage merges them (step 7), and
//!   the unshift (step 8) places the merged window at its global ranks,
//!   exchanged once (balanced `alltoallv`) into the striped output.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_cluster::{Cluster, ClusterCfg, ClusterError, Communicator};
use fg_core::{map_stage, PipelineCfg, Program, Rounds};
use fg_pdm::{DiskRef, DiskStats, Striping};

use crate::chunks::{self, CHUNK_HEADER_BYTES};
use crate::config::{Matrix, SortConfig};
use crate::csort::{add_sort_stage, effective_buffers, merge_two_sorted, pass12, M2_FILE};
use crate::verify::OUTPUT_FILE;
use crate::SortError;

/// Intermediate file after pass 3: the shifted matrix.  Shifted column `c`
/// (for `c` in the node's ownership) is stored at local index
/// `local_index(c)`; the last node stores the extra half column `s` after
/// its regular columns.
pub const M3_FILE: &str = "csort4_m3";

/// Timings and counters from one csort4 run.
#[derive(Debug, Clone)]
pub struct Csort4Report {
    /// Max-across-nodes wall time of each pass.
    pub pass: [Duration; 4],
    /// Total wall time (sum of passes).
    pub total: Duration,
    /// Per-node disk stats accumulated over the whole run.
    pub disk_stats: Vec<DiskStats>,
    /// Per-node bytes sent over the interconnect.
    pub bytes_sent: Vec<u64>,
    /// The matrix geometry used.
    pub matrix: Matrix,
}

/// Run the four-pass columnsort; leaves striped output in `output`.
pub fn run_csort4(cfg: &SortConfig, disks: &[DiskRef]) -> Result<Csort4Report, SortError> {
    cfg.validate()?;
    if disks.len() != cfg.nodes {
        return Err(SortError::Config(format!(
            "need {} disks, got {}",
            cfg.nodes,
            disks.len()
        )));
    }
    let matrix = Matrix::choose(cfg.total_records(), cfg.nodes)?;
    let cfg = cfg.clone();
    let disks_arc: Vec<DiskRef> = disks.to_vec();

    let run = Cluster::run(
        ClusterCfg {
            nodes: cfg.nodes,
            net: cfg.net,
        },
        move |node| -> Result<[Duration; 4], ClusterError> {
            let q = node.rank();
            let comm = node.comm().clone();
            let disk = Arc::clone(&disks_arc[q]);
            // Group each node's pipeline spans under its own track in the
            // merged Chrome export.
            let mut cfg = cfg.clone();
            cfg.trace_group = Some(q as u32);
            let mut times = [Duration::ZERO; 4];
            for pass_no in 1u8..=4 {
                comm.barrier()?;
                let t0 = Instant::now();
                match pass_no {
                    1 | 2 => pass12(pass_no, &cfg, matrix, q, &comm, &disk)
                        .map_err(ClusterError::from)?,
                    3 => pass3_shift(&cfg, matrix, q, &comm, &disk).map_err(ClusterError::from)?,
                    _ => {
                        pass4_unshift(&cfg, matrix, q, &comm, &disk).map_err(ClusterError::from)?
                    }
                }
                comm.barrier()?;
                let nanos = comm.allreduce_max(t0.elapsed().as_nanos() as u64)?;
                times[pass_no as usize - 1] = Duration::from_nanos(nanos);
            }
            Ok(times)
        },
    )
    .map_err(|e| SortError::Comm(e.to_string()))?;

    let times = run.results[0];
    Ok(Csort4Report {
        pass: times,
        total: times.iter().sum(),
        disk_stats: disks.iter().map(|d| d.stats()).collect(),
        bytes_sent: run.traffic.iter().map(|t| t.bytes_sent).collect(),
        matrix,
    })
}

/// Pass 3 (steps 5–6): sort each column, shift halves across column
/// owners, write the shifted matrix.
fn pass3_shift(
    cfg: &SortConfig,
    m: Matrix,
    q: usize,
    comm: &Communicator,
    disk: &DiskRef,
) -> Result<(), SortError> {
    let rb = cfg.record.record_bytes;
    let cbytes = m.r * rb;
    let half = m.r / 2 * rb;
    let rounds = m.cols_per_node() as u64;
    let (r, s) = (m.r, m.s);
    let _ = r;

    let mut prog = Program::new(format!("csort4-p3-n{q}"));
    cfg.instrument_with_disks(&mut prog, std::slice::from_ref(disk));

    let read_disk = Arc::clone(disk);
    let read = prog.add_stage(
        "read",
        map_stage(move |buf, _ctx| {
            let t = buf.round();
            read_disk
                .read_at(M2_FILE, t * cbytes as u64, &mut buf.space_mut()[..cbytes])
                .map_err(SortError::from)?;
            buf.set_filled(cbytes);
            Ok(())
        }),
    );

    // sort: step 5, farmed when cfg.workers > 1.
    let sort = add_sort_stage(&mut prog, cfg);

    // shift-communicate: exchange halves so the buffer leaves holding the
    // shifted column c = [larger half of col c-1][smaller half of col c];
    // the last column's owner keeps its larger half as shifted column s.
    let comm3 = comm.clone();
    let shift = prog.add_stage(
        "shift",
        map_stage(move |buf, ctx| {
            let t = buf.round() as usize;
            let c = m.col_of_round(q, t);
            let last = c == s - 1;
            {
                let data = buf.filled();
                if !last {
                    comm3
                        .send(m.owner(c + 1), (c + 1) as u64, data[half..].to_vec())
                        .map_err(SortError::from)?;
                }
            }
            let received: Vec<u8> = if c > 0 {
                comm3
                    .recv(Some(m.owner(c - 1)), c as u64)
                    .map_err(SortError::from)?
                    .payload
            } else {
                Vec::new()
            };
            let aux = ctx.aux(buf.capacity());
            let mut len = 0usize;
            aux[..received.len()].copy_from_slice(&received);
            len += received.len();
            aux[len..len + half].copy_from_slice(&buf.filled()[..half]);
            len += half;
            if last {
                aux[len..len + half].copy_from_slice(&buf.filled()[half..]);
                len += half;
            }
            buf.copy_from(&aux[..len]);
            Ok(())
        }),
    );

    // write: shifted column c at local column slot local_index(c); the
    // trailing extra half (shifted column s) lands after the node's
    // regular columns.
    // Local m3 layout on node q: its shifted columns concatenated in round
    // order.  Node 0's first shifted column (column 0) is a half column, so
    // later offsets shift back by one half; other nodes hold only full
    // shifted columns.  The extra shifted column s goes after the last
    // node's regular columns.
    let write_disk = Arc::clone(disk);
    let cols = m.cols_per_node();
    let local_off = move |t: usize| -> u64 {
        (t * cbytes) as u64 - if q == 0 && t > 0 { half as u64 } else { 0 }
    };
    let write = prog.add_stage(
        "write",
        map_stage(move |buf, _ctx| {
            let t = buf.round() as usize;
            let c = m.col_of_round(q, t);
            let main_len = if c == s - 1 && buf.len() > cbytes {
                buf.len() - half
            } else {
                buf.len()
            };
            write_disk
                .write_at(M3_FILE, local_off(t), &buf.filled()[..main_len])
                .map_err(SortError::from)?;
            if main_len < buf.len() {
                // shifted column s, stored after the regular columns
                write_disk
                    .write_at(M3_FILE, local_off(cols), &buf.filled()[main_len..])
                    .map_err(SortError::from)?;
            }
            Ok(())
        }),
    );

    prog.add_pipeline(
        PipelineCfg::new("pass3", effective_buffers(cfg), cbytes + half + 64)
            .rounds(Rounds::Count(rounds)),
        &[read, sort, shift, write],
    )?;
    prog.run()?;
    // Write barrier before pass 4 re-reads the shifted matrix.
    disk.flush().map_err(SortError::from)?;
    Ok(())
}

/// Pass 4 (steps 7–8): merge each shifted column's halves, unshift to
/// global ranks, stripe, write.
fn pass4_unshift(
    cfg: &SortConfig,
    m: Matrix,
    q: usize,
    comm: &Communicator,
    disk: &DiskRef,
) -> Result<(), SortError> {
    let rb = cfg.record.record_bytes;
    let cbytes = m.r * rb;
    let half = m.r / 2 * rb;
    let (r, s, nodes) = (m.r, m.s, m.nodes);
    let cols = m.cols_per_node();
    let last_node = m.owner(s - 1);
    // Every node runs cols+1 rounds so the per-round alltoallv stays in
    // lockstep; only the last column's owner has data (shifted column s)
    // in the extra round — the others contribute empty parts.
    let rounds = (cols + 1) as u64;
    let max_chunks = (cbytes + half) / cfg.block_bytes + 2 * nodes + 4;
    let buf_bytes = cbytes + half + nodes * cfg.block_bytes + max_chunks * CHUNK_HEADER_BYTES + 64;

    let mut prog = Program::new(format!("csort4-p4-n{q}"));
    cfg.instrument_with_disks(&mut prog, std::slice::from_ref(disk));

    // Which shifted column does round t hold, how long is it, and where
    // does it live in the local m3 file?  Mirrors pass 3's write layout.
    let local_off = move |t: usize| -> u64 {
        (t * cbytes) as u64 - if q == 0 && t > 0 { half as u64 } else { 0 }
    };
    let col_of = move |t: usize| -> (usize, usize, u64) {
        if t == cols {
            // extra round: the last node holds shifted column s; everyone
            // else has nothing but still participates in the exchange
            if q == last_node {
                (s, half, local_off(cols))
            } else {
                (s, 0, 0)
            }
        } else {
            let c = t * nodes + q;
            let len = if c == 0 { half } else { cbytes };
            (c, len, local_off(t))
        }
    };

    let read_disk = Arc::clone(disk);
    let read = prog.add_stage(
        "read",
        map_stage(move |buf, _ctx| {
            let (_c, len, off) = col_of(buf.round() as usize);
            if len > 0 {
                read_disk
                    .read_at(M3_FILE, off, &mut buf.space_mut()[..len])
                    .map_err(SortError::from)?;
            }
            buf.set_filled(len);
            Ok(())
        }),
    );

    // step 7: each shifted column is two sorted halves; merge them with
    // the galloping two-run kernel (`merge_two_sorted` → `kernels::
    // run_len`) — boundary windows are nearly sorted, so the merge
    // collapses to a few bulk copies.  The merge is the pass's CPU-bound
    // stage, so it farms like the sorts do (every capture is `Copy`, so
    // each replica gets its own closure; the sort stages themselves go
    // through `add_sort_stage`, which threads a kernel scratch per
    // replica).
    let fmt = cfg.record;
    let make_sort = move || {
        map_stage(
            move |buf: &mut fg_core::Buffer, ctx: &mut fg_core::StageCtx| {
                let (c, len, _off) = col_of(buf.round() as usize);
                if c > 0 && c < s && len == cbytes {
                    let aux = ctx.aux(len);
                    merge_two_sorted(fmt, &buf.filled()[..len], half, aux);
                    buf.copy_from(&aux[..len]);
                }
                Ok(())
            },
        )
    };
    let sort = if cfg.farm_capacity() > 1 {
        prog.workers("sort", cfg.farm_capacity(), move |_i| make_sort())
    } else {
        prog.add_stage("sort", make_sort())
    };

    // step 8 + striping: shifted column c covers global ranks
    // [c*r - r/2, c*r + r/2) (clamped at both ends).
    let comm4 = comm.clone();
    let striping = Striping::new(nodes, cfg.block_bytes);
    let stripe = prog.add_stage(
        "stripe",
        map_stage(move |buf, _ctx| {
            let (c, _len, _off) = col_of(buf.round() as usize);
            let start_rank = if c == 0 { 0 } else { c * r - r / 2 };
            let mut parts: Vec<Vec<u8>> = vec![Vec::new(); nodes];
            {
                let data = buf.filled();
                let goff = start_rank as u64 * rb as u64;
                for (dest, _local, range) in striping.split_range(goff, data.len()) {
                    let gchunk = goff + range.start as u64;
                    chunks::push_chunk(&mut parts[dest], gchunk, 0, &data[range]);
                }
            }
            let received = comm4.alltoallv(parts).map_err(SortError::from)?;
            buf.clear();
            for part in received {
                let copied = buf.append(&part);
                debug_assert_eq!(copied, part.len(), "pass-4 stripe overflow");
            }
            Ok(())
        }),
    );

    let write_disk = Arc::clone(disk);
    let striping_w = Striping::new(nodes, cfg.block_bytes);
    let write = prog.add_stage("write", {
        let mut relocated: Vec<u8> = Vec::new();
        let mut runs = Vec::new();
        let mut scratch = Vec::new();
        map_stage(move |buf, _ctx| {
            relocated.clear();
            for chunk in chunks::iter_chunks(buf.filled()) {
                let chunk = chunk?;
                let (dest, local) = striping_w.locate_byte(chunk.a);
                debug_assert_eq!(dest, q);
                chunks::push_chunk(&mut relocated, local, 0, chunk.data);
            }
            chunks::for_each_coalesced_write(&relocated, &mut runs, &mut scratch, |off, data| {
                write_disk
                    .write_at(OUTPUT_FILE, off, data)
                    .map_err(SortError::from)?;
                Ok(())
            })
        })
    });

    prog.add_pipeline(
        PipelineCfg::new("pass4", effective_buffers(cfg), buf_bytes).rounds(Rounds::Count(rounds)),
        &[read, sort, stripe, write],
    )?;
    prog.run()?;
    disk.flush().map_err(SortError::from)?;
    Ok(())
}
