//! # fg-sort: out-of-core sorting programs on FG
//!
//! The two sorting programs the paper evaluates, built on the FG pipeline
//! environment (`fg-core`), the simulated cluster (`fg-cluster`), and the
//! simulated Parallel Disk Model disks (`fg-pdm`):
//!
//! * [`dsort`] — the paper's contribution: a two-pass out-of-core
//!   distribution sort.  A preprocessing phase picks splitters by
//!   oversampling (with extended keys for uniqueness); pass 1 partitions
//!   and distributes records using **disjoint send and receive pipelines**
//!   per node (communication is unbalanced); pass 2 merges each node's
//!   sorted runs with **intersecting pipelines** (a common merge stage fed
//!   by virtual vertical read pipelines), then load-balances and stripes
//!   the output across the cluster.
//! * [`csort`] — the baseline: three-pass out-of-core columnsort, oblivious
//!   to data values, all communication balanced, one **single linear
//!   pipeline** per node per pass.
//!
//! Plus [`dsort_linear`], the ablation the paper's conclusion calls for:
//! dsort restricted to single linear pipelines.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chunks;
pub mod columnsort;
pub mod config;
pub mod csort;
pub mod csort4;
pub mod dsort;
pub mod dsort_linear;
pub mod input;
pub mod kernels;
pub mod keygen;
pub mod merge;
pub mod record;
pub mod verify;

pub use config::{DiskBackend, Matrix, SortConfig};
pub use keygen::{KeyDist, KeyGen};
pub use record::{ExtKey, RecordFormat};

use std::fmt;

/// Errors from the sorting programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortError {
    /// Invalid configuration or geometry.
    Config(String),
    /// Malformed data encountered (corrupt chunk stream, bad payload).
    Corrupt(String),
    /// A storage operation failed.
    Disk(String),
    /// A communication operation failed.
    Comm(String),
    /// The FG runtime reported an error.
    Fg(String),
    /// Output verification failed.
    Verify(String),
}

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortError::Config(m) => write!(f, "configuration error: {m}"),
            SortError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            SortError::Disk(m) => write!(f, "disk error: {m}"),
            SortError::Comm(m) => write!(f, "communication error: {m}"),
            SortError::Fg(m) => write!(f, "FG error: {m}"),
            SortError::Verify(m) => write!(f, "verification failed: {m}"),
        }
    }
}

impl std::error::Error for SortError {}

impl From<fg_pdm::PdmError> for SortError {
    fn from(e: fg_pdm::PdmError) -> Self {
        SortError::Disk(e.to_string())
    }
}

impl From<fg_cluster::CommError> for SortError {
    fn from(e: fg_cluster::CommError) -> Self {
        SortError::Comm(e.to_string())
    }
}

impl From<fg_core::FgError> for SortError {
    fn from(e: fg_core::FgError) -> Self {
        SortError::Fg(e.to_string())
    }
}

impl From<SortError> for fg_core::FgError {
    fn from(e: SortError) -> Self {
        fg_core::FgError::Stage {
            stage: "<sort>".into(),
            message: e.to_string(),
        }
    }
}

impl From<SortError> for fg_cluster::ClusterError {
    fn from(e: SortError) -> Self {
        fg_cluster::ClusterError::Node {
            rank: usize::MAX,
            message: e.to_string(),
        }
    }
}
