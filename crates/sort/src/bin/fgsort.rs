//! fgsort: run the out-of-core sorts on a simulated cluster from the
//! command line.
//!
//! ```text
//! cargo run -p fg-sort --release --bin fgsort -- \
//!     --program dsort --nodes 8 --kib-per-node 256 --dist poisson
//! ```
//!
//! Flags (all optional):
//!   --program  dsort | csort | csort4 | dsort-linear   (default dsort)
//!   --nodes N                  cluster size              (default 8)
//!   --kib-per-node N           input size per node       (default 256)
//!   --record-bytes 16|64       record format             (default 16)
//!   --dist NAME                uniform | all-equal | std-normal | poisson
//!                              | shifted:K | hotkey:P | zipf:N  (default uniform)
//!   --seed N                   input RNG seed            (default 51966)
//!   --block-kib N              block/stripe size         (default 16)
//!   --run-kib N                dsort run size            (default 64)
//!   --workers N                replicas for the CPU-bound sort stages
//!                              (csort/csort4)             (default 1)
//!   --pin                      pin every pipeline thread to a core,
//!                              round-robin over all online cores
//!   --pin-cores LIST           pin round-robin over an explicit
//!                              comma-separated core list (e.g. 0,2,4,6)
//!   --backend sim|os           storage backend: simulated in-memory disks
//!                              or real files               (default sim)
//!   --dir PATH                 root directory for --backend os (one
//!                              d{rank} subdirectory per node; default
//!                              fg-disks under the system temp dir)
//!   --io-depth N               per-disk I/O scheduler read-ahead depth;
//!                              0 = bare synchronous backend (default 0)
//!   --free                     zero-cost disks & network (default: paper-
//!                              shaped cost model)
//!   --no-verify                skip output verification
//!   --trace OUT                flight-record per-buffer causal spans in
//!                              every pipeline and write a Chrome trace
//!                              (Perfetto / chrome://tracing) to OUT; also
//!                              prints node-0 per-pass Gantt charts (dsort)
//!   --watchdog-secs N          abort with a post-mortem report if any
//!                              pipeline makes no progress for N seconds
//!   --telemetry ADDR           serve live GET /metrics (Prometheus),
//!                              GET /report, GET /control, and GET /healthz
//!                              on ADDR (e.g. 127.0.0.1:9100) while the
//!                              sort runs; afterwards print the bottleneck
//!                              diagnosis (dsort)
//!   --cluster OUT              run with full per-node observability
//!                              (dsort only): every rank gets its own
//!                              metrics registry, the merged ClusterReport
//!                              JSON is written to OUT, and the per-rank
//!                              rollup plus straggler/skew diagnosis is
//!                              printed after the run
//!   --autotune                 attach the closed-loop controller to every
//!                              pipeline: grows/shrinks the sort worker
//!                              farms, resizes buffer pools, and retunes
//!                              I/O read-ahead depth live; the decision
//!                              audit log is printed after the run
//!                              (csort/csort4)
//!   --profile OUT              sample per-thread CPU / process RSS /
//!                              per-stage allocation counters while the
//!                              sort runs, print the resource report, and
//!                              write it (JSON, `resources` member) to OUT;
//!                              with --telemetry the same data is live on
//!                              GET /resources
//!   --mem-budget MIB           memory budget for the buffer-pool ledger;
//!                              the diagnosis reports a memory-bound
//!                              finding when peak usage approaches it

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use fg_core::{diagnose, MetricsRegistry, Sampler, TelemetryServer};
use fg_sort::config::{DiskBackend, SortConfig};
use fg_sort::csort::run_csort;
use fg_sort::csort4::run_csort4;
use fg_sort::dsort::{run_dsort_with, DsortOptions};
use fg_sort::dsort_linear::run_dsort_linear;
use fg_sort::input::{try_provision, try_provision_with_metrics};
use fg_sort::keygen::KeyDist;
use fg_sort::record::RecordFormat;
use fg_sort::verify::{verify_output, Strictness};

/// The tracking allocator: this binary opts in, so `--profile` can
/// attribute heap allocations to stages (and assert the sort hot loop is
/// allocation-free in steady state).  Without `--profile` the per-alloc
/// overhead is a few relaxed atomic RMWs.
#[global_allocator]
static FG_ALLOC: fg_core::FgAlloc = fg_core::FgAlloc;

#[derive(Debug, PartialEq)]
struct Options {
    program: String,
    nodes: usize,
    kib_per_node: usize,
    record_bytes: usize,
    dist: KeyDist,
    seed: u64,
    block_kib: usize,
    run_kib: usize,
    workers: usize,
    pin: bool,
    pin_cores: Option<Vec<usize>>,
    backend: String,
    dir: Option<String>,
    io_depth: usize,
    free: bool,
    verify: bool,
    trace: Option<String>,
    watchdog_secs: Option<u64>,
    telemetry: Option<String>,
    autotune: bool,
    cluster: Option<String>,
    profile: Option<String>,
    mem_budget_mib: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            program: "dsort".into(),
            nodes: 8,
            kib_per_node: 256,
            record_bytes: 16,
            dist: KeyDist::Uniform,
            seed: 0xCAFE,
            block_kib: 16,
            run_kib: 64,
            workers: 1,
            pin: false,
            pin_cores: None,
            backend: "sim".into(),
            dir: None,
            io_depth: 0,
            free: false,
            verify: true,
            trace: None,
            watchdog_secs: None,
            telemetry: None,
            autotune: false,
            cluster: None,
            profile: None,
            mem_budget_mib: None,
        }
    }
}

fn parse_dist(s: &str) -> Result<KeyDist, String> {
    if let Some(k) = s.strip_prefix("shifted:") {
        return Ok(KeyDist::Shifted {
            shift: k.parse().map_err(|e| format!("bad shift: {e}"))?,
        });
    }
    if let Some(p) = s.strip_prefix("hotkey:") {
        return Ok(KeyDist::HotKey {
            hot_percent: p.parse().map_err(|e| format!("bad percent: {e}"))?,
        });
    }
    if let Some(n) = s.strip_prefix("zipf:") {
        return Ok(KeyDist::Zipf {
            n: n.parse().map_err(|e| format!("bad key count: {e}"))?,
        });
    }
    match s {
        "uniform" => Ok(KeyDist::Uniform),
        "all-equal" => Ok(KeyDist::AllEqual),
        "std-normal" => Ok(KeyDist::StdNormal),
        "poisson" => Ok(KeyDist::Poisson),
        other => Err(format!("unknown distribution `{other}`")),
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--program" => opts.program = value("--program")?.clone(),
            "--nodes" => {
                opts.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--kib-per-node" => {
                opts.kib_per_node = value("--kib-per-node")?
                    .parse()
                    .map_err(|e| format!("--kib-per-node: {e}"))?
            }
            "--record-bytes" => {
                opts.record_bytes = value("--record-bytes")?
                    .parse()
                    .map_err(|e| format!("--record-bytes: {e}"))?
            }
            "--dist" => opts.dist = parse_dist(value("--dist")?)?,
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--block-kib" => {
                opts.block_kib = value("--block-kib")?
                    .parse()
                    .map_err(|e| format!("--block-kib: {e}"))?
            }
            "--run-kib" => {
                opts.run_kib = value("--run-kib")?
                    .parse()
                    .map_err(|e| format!("--run-kib: {e}"))?
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--pin" => opts.pin = true,
            "--pin-cores" => {
                let list = value("--pin-cores")?
                    .split(',')
                    .map(|c| c.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("--pin-cores: {e}"))?;
                if list.is_empty() {
                    return Err("--pin-cores needs at least one core".into());
                }
                opts.pin_cores = Some(list);
            }
            "--backend" => opts.backend = value("--backend")?.clone(),
            "--dir" => opts.dir = Some(value("--dir")?.clone()),
            "--io-depth" => {
                opts.io_depth = value("--io-depth")?
                    .parse()
                    .map_err(|e| format!("--io-depth: {e}"))?
            }
            "--free" => opts.free = true,
            "--no-verify" => opts.verify = false,
            "--trace" => opts.trace = Some(value("--trace")?.clone()),
            "--watchdog-secs" => {
                opts.watchdog_secs = Some(
                    value("--watchdog-secs")?
                        .parse()
                        .map_err(|e| format!("--watchdog-secs: {e}"))?,
                )
            }
            "--telemetry" => opts.telemetry = Some(value("--telemetry")?.clone()),
            "--autotune" => opts.autotune = true,
            "--cluster" => opts.cluster = Some(value("--cluster")?.clone()),
            "--profile" => opts.profile = Some(value("--profile")?.clone()),
            "--mem-budget" => {
                let mib: u64 = value("--mem-budget")?
                    .parse()
                    .map_err(|e| format!("--mem-budget: {e}"))?;
                if mib == 0 {
                    return Err("--mem-budget must be positive".into());
                }
                opts.mem_budget_mib = Some(mib);
            }
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !matches!(
        opts.program.as_str(),
        "dsort" | "csort" | "csort4" | "dsort-linear"
    ) {
        return Err(format!("unknown program `{}`", opts.program));
    }
    if !matches!(opts.backend.as_str(), "sim" | "os") {
        return Err(format!(
            "unknown backend `{}` (expected sim or os)",
            opts.backend
        ));
    }
    if opts.dir.is_some() && opts.backend != "os" {
        return Err("--dir only applies to --backend os".into());
    }
    if opts.cluster.is_some() && opts.program != "dsort" {
        return Err("--cluster is only wired for --program dsort".into());
    }
    if opts.io_depth > fg_pdm::MAX_IO_DEPTH {
        return Err(format!(
            "--io-depth {} is out of range (use 0 to disable the scheduler, or 1..={})",
            opts.io_depth,
            fg_pdm::MAX_IO_DEPTH
        ));
    }
    Ok(opts)
}

fn build_config(opts: &Options) -> Result<SortConfig, String> {
    let record = RecordFormat::new(opts.record_bytes).map_err(|e| e.to_string())?;
    let records_per_node = (opts.kib_per_node << 10) / record.record_bytes;
    let mut cfg = if opts.free {
        SortConfig::test_default(opts.nodes, records_per_node)
    } else {
        SortConfig::experiment_default(opts.nodes, records_per_node)
    };
    cfg.record = record;
    cfg.dist = opts.dist;
    cfg.seed = opts.seed;
    cfg.block_bytes = opts.block_kib << 10;
    cfg.run_bytes = (opts.run_kib << 10).max(cfg.block_bytes);
    cfg.vertical_buf_bytes = (cfg.block_bytes / 2).max(record.record_bytes);
    cfg.workers = opts.workers;
    cfg.pin = match (&opts.pin_cores, opts.pin) {
        (Some(cores), _) => Some(fg_core::PinMode::Cores(cores.clone())),
        (None, true) => Some(fg_core::PinMode::RoundRobin),
        (None, false) => None,
    };
    cfg.trace = opts.trace.is_some();
    if opts.trace.is_some() {
        cfg.trace_sink = Some(fg_core::TraceSink::new());
    }
    cfg.watchdog = opts.watchdog_secs.map(Duration::from_secs);
    if opts.watchdog_secs == Some(0) {
        return Err("--watchdog-secs must be positive".into());
    }
    if opts.backend == "os" {
        let dir = match &opts.dir {
            Some(d) => std::path::PathBuf::from(d),
            None => std::env::temp_dir().join("fg-disks"),
        };
        cfg.backend = DiskBackend::Os { dir };
    }
    cfg.io_depth = opts.io_depth;
    if opts.autotune {
        cfg.autotune = Some(fg_core::ControllerCfg {
            // Start from the declared worker count; the controller grows or
            // shrinks the farms from there.
            initial_workers: Some(opts.workers),
            ..fg_core::ControllerCfg::default()
        });
    }
    // --profile wants residency attribution; --mem-budget wants the
    // budget check.  Either one attaches a ledger to every program.
    if opts.profile.is_some() || opts.mem_budget_mib.is_some() {
        cfg.ledger = Some(Arc::new(fg_core::MemoryLedger::with_budget(
            opts.mem_budget_mib.unwrap_or(0) << 20,
        )));
    }
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

fn print_phase(name: &str, d: Duration) {
    println!("  {name:<10} {:>9.1} ms", d.as_secs_f64() * 1e3);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!("usage: fgsort [--program dsort|csort|csort4|dsort-linear]");
            eprintln!("              [--nodes N] [--kib-per-node N] [--record-bytes 16|64]");
            eprintln!("              [--dist uniform|all-equal|std-normal|poisson|shifted:K|hotkey:P|zipf:N]");
            eprintln!(
                "              [--seed N] [--block-kib N] [--run-kib N] [--free] [--no-verify]"
            );
            eprintln!("              [--workers N]   (replicas for the CPU-bound sort stages; csort/csort4)");
            eprintln!("              [--pin | --pin-cores LIST]   (pin pipeline threads to cores, round-robin)");
            eprintln!("              [--backend sim|os] [--dir PATH]   (real-file disks under PATH/d{{rank}})");
            eprintln!(
                "              [--io-depth N]   (read-ahead + write-behind scheduler; 0 = off)"
            );
            eprintln!("              [--trace OUT]   (write a Chrome/Perfetto trace of every pipeline to OUT)");
            eprintln!("              [--watchdog-secs N]   (post-mortem + abort after N s without progress)");
            eprintln!("              [--telemetry ADDR]   (live /metrics + /report + /control + /healthz HTTP endpoint)");
            eprintln!("              [--autotune]   (closed-loop controller: live farm/pool/io-depth retuning)");
            eprintln!("              [--cluster OUT]   (dsort: per-rank registries; write merged ClusterReport JSON + diagnosis to OUT)");
            eprintln!("              [--profile OUT]   (per-thread CPU + RSS + per-stage alloc report; JSON to OUT)");
            eprintln!("              [--mem-budget MIB]   (buffer-pool memory budget for the ledger / diagnosis)");
            return if e == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    let mut cfg = match build_config(&opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{}: {} records x {} B on {} nodes ({} KiB total), {} keys{}",
        opts.program,
        cfg.total_records(),
        cfg.record.record_bytes,
        cfg.nodes,
        cfg.total_bytes() >> 10,
        cfg.dist.label(),
        if opts.free { ", zero-cost" } else { "" },
    );

    // With --telemetry, all programs get metrics-instrumented disks and a
    // live HTTP endpoint; dsort additionally publishes its queue and comm
    // metrics and prints a bottleneck diagnosis after the run.
    let registry = Arc::new(MetricsRegistry::new());
    if opts.telemetry.is_some() || cfg.autotune.is_some() || opts.profile.is_some() {
        cfg.metrics = Some(Arc::clone(&registry));
    }
    let control = cfg.autotune.as_ref().map(|a| Arc::clone(&a.status));
    let telemetry = match &opts.telemetry {
        Some(addr) => {
            match TelemetryServer::bind_all(
                addr.as_str(),
                Arc::clone(&registry),
                None,
                control,
                None,
                cfg.ledger.clone(),
            ) {
                Ok(server) => {
                    println!(
                        "telemetry: serving /metrics, /report, /control, /resources, /healthz on http://{}",
                        server.local_addr()
                    );
                    let sampler = Sampler::start(Arc::clone(&registry), Default::default());
                    Some((server, sampler))
                }
                Err(e) => {
                    eprintln!("error: failed to bind telemetry server on {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    // The resource profiler samples per-thread CPU, process RSS, and the
    // allocator/ledger counters into the registry on a fixed cadence.
    let profiler = opts.profile.as_ref().map(|_| {
        fg_core::ResourceProfiler::start_with(
            Arc::clone(&registry),
            fg_core::ProfilerCfg::default(),
            cfg.ledger.clone(),
        )
    });
    let run_start = std::time::Instant::now();

    // Metrics-instrumented disks whenever a shared registry exists (live
    // telemetry or the autotune controller, which watches prefetch rates).
    let provisioned = if cfg.metrics.is_some() {
        try_provision_with_metrics(&cfg, &registry)
    } else {
        try_provision(&cfg)
    };
    let disks = match provisioned {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: provisioning disks: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut diagnosable: Option<fg_core::Report> = None;
    let outcome: Result<(), String> = match opts.program.as_str() {
        "dsort" => run_dsort_with(
            &cfg,
            &disks,
            DsortOptions {
                metrics: telemetry.is_some().then(|| Arc::clone(&registry)),
                observe: opts.cluster.is_some(),
                ..DsortOptions::default()
            },
        )
        .and_then(|r| {
            print_phase("sampling", r.sampling);
            print_phase("pass 1", r.pass1);
            print_phase("pass 2", r.pass2);
            print_phase("total", r.total());
            println!("  partitions: {:?}", r.partition_records);
            if let Some((p1, p2)) = &r.node0_reports {
                if opts.trace.is_some() {
                    println!("\nnode 0, pass 1:\n{}", p1.render_gantt(64));
                    println!("node 0, pass 2:\n{}", p2.render_gantt(64));
                }
            }
            if let (Some(path), Some(cluster)) = (&opts.cluster, &r.cluster) {
                let diagnosis = fg_core::diagnose_cluster(cluster);
                println!("\n{}", cluster.render());
                println!("{}", diagnosis.render());
                let doc = fg_core::Json::Obj(vec![
                    ("cluster".into(), cluster.to_json_value()),
                    ("diagnosis".into(), diagnosis.to_json_value()),
                ]);
                std::fs::write(path, doc.to_string())
                    .map_err(|e| fg_sort::SortError::Config(format!("writing {path}: {e}")))?;
                println!("cluster report: wrote {path}");
            }
            if telemetry.is_some() {
                diagnosable = r.node0_reports.map(|(_, mut pass2)| {
                    pass2.metrics.merge(&r.metrics);
                    pass2
                });
            }
            Ok(())
        })
        .map_err(|e| e.to_string()),
        "csort" => run_csort(&cfg, &disks)
            .map(|r| {
                for (i, p) in r.pass.iter().enumerate() {
                    print_phase(&format!("pass {}", i + 1), *p);
                }
                print_phase("total", r.total);
                println!("  matrix: r = {}, s = {}", r.matrix.r, r.matrix.s);
            })
            .map_err(|e| e.to_string()),
        "csort4" => run_csort4(&cfg, &disks)
            .map(|r| {
                for (i, p) in r.pass.iter().enumerate() {
                    print_phase(&format!("pass {}", i + 1), *p);
                }
                print_phase("total", r.total);
            })
            .map_err(|e| e.to_string()),
        "dsort-linear" => run_dsort_linear(&cfg, &disks)
            .map(|r| {
                print_phase("sampling", r.sampling);
                print_phase("pass 1", r.pass1);
                print_phase("pass 2", r.pass2);
                print_phase("total", r.total());
            })
            .map_err(|e| e.to_string()),
        _ => unreachable!("validated"),
    };
    let run_wall = run_start.elapsed();
    // Write the causal trace even when the run failed: a watchdog abort is
    // exactly when the span log is most interesting.
    if let (Some(path), Some(sink)) = (&opts.trace, &cfg.trace_sink) {
        match std::fs::write(path, sink.to_chrome_trace()) {
            Ok(()) => println!("trace: wrote {path} (load in Perfetto or chrome://tracing)"),
            Err(e) => eprintln!("error: writing trace {path}: {e}"),
        }
    }
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    if opts.verify {
        match verify_output(&cfg, &disks, Strictness::Fingerprint) {
            Ok(()) => println!("output verified: sorted, striped, permutation of input"),
            Err(e) => {
                eprintln!("VERIFICATION FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let io: u64 = disks.iter().map(|d| d.stats().bytes_total()).sum();
    println!("disk I/O: {:.2} MiB total", io as f64 / (1 << 20) as f64);

    if let Some(profiler) = profiler {
        // stop() takes a final sample and publishes it; the registry then
        // holds the union of everything sampled during the run, including
        // rows for stage threads that have already exited.
        profiler.stop();
        let resources =
            fg_core::ResourceReport::from_metrics(&registry.snapshot()).unwrap_or_default();
        println!("\n== resources ==\n{}", resources.render());
        // The end-of-run report carries the final attribution too, so its
        // JSON has a `resources` member and the diagnosis below reads the
        // post-stop sample instead of re-deriving one from mid-run gauges.
        if let Some(report) = diagnosable.as_mut() {
            report.resources = Some(resources.clone());
        }
        if let Some(path) = &opts.profile {
            let doc = fg_core::Json::Obj(vec![
                ("program".into(), fg_core::Json::Str(opts.program.clone())),
                ("wall_s".into(), fg_core::Json::Num(run_wall.as_secs_f64())),
                ("resources".into(), resources.to_json_value()),
            ]);
            match std::fs::write(path, doc.to_string()) {
                Ok(()) => println!("resource profile: wrote {path}"),
                Err(e) => {
                    eprintln!("error: writing resource profile {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if let Some(ac) = &cfg.autotune {
        println!("autotune: {}", ac.status.get_json());
    }

    if let Some((server, sampler)) = telemetry {
        let series = sampler.stop();
        println!(
            "telemetry: collected {} samples; endpoint on {} closing",
            series.len(),
            server.local_addr()
        );
        if let Some(report) = diagnosable {
            // With a flight recorder attached the diagnosis cites concrete
            // rounds off the reconstructed critical path.
            let d = match &cfg.trace_sink {
                Some(sink) => fg_core::diagnose_with_trace(&report, &series, &sink.collect()),
                None => diagnose(&report, &series),
            };
            println!("\n{}", d.render());
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o, Options::default());
    }

    #[test]
    fn full_flag_set() {
        let o = parse_args(&args(
            "--program csort --nodes 4 --kib-per-node 128 --record-bytes 64 \
             --dist poisson --seed 7 --block-kib 8 --run-kib 32 --workers 4 --free --no-verify \
             --trace out.json --watchdog-secs 60",
        ))
        .unwrap();
        assert_eq!(o.program, "csort");
        assert_eq!(o.nodes, 4);
        assert_eq!(o.kib_per_node, 128);
        assert_eq!(o.record_bytes, 64);
        assert_eq!(o.dist, KeyDist::Poisson);
        assert_eq!(o.seed, 7);
        assert_eq!(o.block_kib, 8);
        assert_eq!(o.run_kib, 32);
        assert_eq!(o.workers, 4);
        assert!(o.free);
        assert!(!o.verify);
        assert_eq!(o.trace.as_deref(), Some("out.json"));
        assert_eq!(o.watchdog_secs, Some(60));
    }

    #[test]
    fn trace_and_watchdog_flags_build_instrumentation() {
        let o = parse_args(&args("--free --trace t.json --watchdog-secs 30")).unwrap();
        let cfg = build_config(&o).unwrap();
        assert!(cfg.trace, "Gantt span recording rides along with --trace");
        assert!(cfg.trace_sink.is_some());
        assert_eq!(cfg.watchdog, Some(Duration::from_secs(30)));
        // Neither flag: no sink allocated, no watchdog armed.
        let cfg = build_config(&Options {
            free: true,
            ..Options::default()
        })
        .unwrap();
        assert!(cfg.trace_sink.is_none());
        assert_eq!(cfg.watchdog, None);
    }

    #[test]
    fn trace_needs_a_path_and_watchdog_needs_seconds() {
        assert!(parse_args(&args("--trace")).is_err());
        assert!(parse_args(&args("--watchdog-secs")).is_err());
        assert!(parse_args(&args("--watchdog-secs banana")).is_err());
        let o = parse_args(&args("--free --watchdog-secs 0")).unwrap();
        assert!(build_config(&o).is_err());
    }

    #[test]
    fn parameterized_dists() {
        assert_eq!(
            parse_dist("shifted:3").unwrap(),
            KeyDist::Shifted { shift: 3 }
        );
        assert_eq!(
            parse_dist("hotkey:85").unwrap(),
            KeyDist::HotKey { hot_percent: 85 }
        );
        assert_eq!(parse_dist("zipf:50").unwrap(), KeyDist::Zipf { n: 50 });
        assert!(parse_dist("zipf").is_err());
        assert!(parse_dist("zipf:x").is_err());
        assert!(parse_dist("shifted:x").is_err());
    }

    #[test]
    fn cluster_flag_parses_and_requires_dsort() {
        let o = parse_args(&args("--cluster out.json")).unwrap();
        assert_eq!(o.cluster.as_deref(), Some("out.json"));
        assert!(parse_args(&args("--cluster")).is_err());
        let err = parse_args(&args("--program csort --cluster out.json")).unwrap_err();
        assert!(err.contains("--cluster"), "{err}");
    }

    #[test]
    fn profile_and_mem_budget_flags_build_a_ledger() {
        let o = parse_args(&args("--profile res.json --mem-budget 64 --free")).unwrap();
        assert_eq!(o.profile.as_deref(), Some("res.json"));
        assert_eq!(o.mem_budget_mib, Some(64));
        let cfg = build_config(&o).unwrap();
        let ledger = cfg.ledger.as_ref().expect("ledger attached");
        assert_eq!(ledger.budget(), 64 << 20);
        // --profile alone still attaches an (unbudgeted) accounting ledger.
        let o = parse_args(&args("--profile res.json --free")).unwrap();
        let cfg = build_config(&o).unwrap();
        assert_eq!(cfg.ledger.as_ref().expect("ledger").budget(), 0);
        // Neither flag: no ledger, no accounting overhead.
        let cfg = build_config(&parse_args(&args("--free")).unwrap()).unwrap();
        assert!(cfg.ledger.is_none());
        // Bad values are parse errors naming the flag.
        assert!(parse_args(&args("--profile")).is_err());
        assert!(parse_args(&args("--mem-budget 0")).is_err());
        assert!(parse_args(&args("--mem-budget banana")).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_args(&args("--nodes banana")).is_err());
        assert!(parse_args(&args("--program quicksort")).is_err());
        assert!(parse_args(&args("--frobnicate")).is_err());
        assert!(parse_args(&args("--nodes")).is_err());
    }

    #[test]
    fn backend_flags() {
        let o = parse_args(&args("--backend os --dir /tmp/fg --io-depth 4")).unwrap();
        assert_eq!(o.backend, "os");
        assert_eq!(o.dir.as_deref(), Some("/tmp/fg"));
        assert_eq!(o.io_depth, 4);
        let cfg = build_config(&o).unwrap();
        assert_eq!(
            cfg.backend,
            DiskBackend::Os {
                dir: std::path::PathBuf::from("/tmp/fg")
            }
        );
        assert_eq!(cfg.io_depth, 4);
    }

    #[test]
    fn backend_os_defaults_dir_to_tempdir() {
        let o = parse_args(&args("--backend os")).unwrap();
        let cfg = build_config(&o).unwrap();
        assert_eq!(
            cfg.backend,
            DiskBackend::Os {
                dir: std::env::temp_dir().join("fg-disks")
            }
        );
    }

    #[test]
    fn rejects_bad_backend_combinations() {
        assert!(parse_args(&args("--backend floppy")).is_err());
        assert!(parse_args(&args("--dir /tmp/fg")).is_err()); // sim + --dir
        assert!(parse_args(&args("--backend sim --dir /tmp/fg")).is_err());
        assert!(parse_args(&args("--io-depth banana")).is_err());
    }

    #[test]
    fn io_depth_out_of_range_is_a_friendly_parse_error() {
        // Depth 0 is valid: it means "no scheduler", not a crash.
        let o = parse_args(&args("--io-depth 0 --free")).unwrap();
        assert_eq!(o.io_depth, 0);
        build_config(&o).unwrap();
        // Beyond the scheduler's maximum is rejected at parse time with a
        // message naming the flag and the valid range.
        let err =
            parse_args(&args(&format!("--io-depth {}", fg_pdm::MAX_IO_DEPTH + 1))).unwrap_err();
        assert!(err.contains("--io-depth"), "{err}");
        assert!(err.contains(&fg_pdm::MAX_IO_DEPTH.to_string()), "{err}");
    }

    #[test]
    fn autotune_flag_builds_a_controller_config() {
        let o = parse_args(&args("--autotune --workers 2 --free")).unwrap();
        assert!(o.autotune);
        let cfg = build_config(&o).unwrap();
        let ac = cfg.autotune.as_ref().expect("controller config");
        assert_eq!(ac.initial_workers, Some(2));
        // Farms declare headroom beyond the starting width.
        assert!(cfg.farm_capacity() >= 4);
        // Without the flag the config stays open-loop.
        let cfg = build_config(&parse_args(&args("--free")).unwrap()).unwrap();
        assert!(cfg.autotune.is_none());
        assert_eq!(cfg.farm_capacity(), 1);
    }

    #[test]
    fn pin_flags_build_pin_modes() {
        let o = parse_args(&args("--pin --free")).unwrap();
        assert!(o.pin);
        let cfg = build_config(&o).unwrap();
        assert_eq!(cfg.pin, Some(fg_core::PinMode::RoundRobin));
        let o = parse_args(&args("--pin-cores 0,2,4 --free")).unwrap();
        let cfg = build_config(&o).unwrap();
        assert_eq!(cfg.pin, Some(fg_core::PinMode::Cores(vec![0, 2, 4])));
        // Explicit cores win over the bare flag; no flag means no pinning.
        let o = parse_args(&args("--pin --pin-cores 1 --free")).unwrap();
        assert_eq!(
            build_config(&o).unwrap().pin,
            Some(fg_core::PinMode::Cores(vec![1]))
        );
        assert_eq!(
            build_config(&parse_args(&args("--free")).unwrap())
                .unwrap()
                .pin,
            None
        );
        assert!(parse_args(&args("--pin-cores")).is_err());
        assert!(parse_args(&args("--pin-cores banana")).is_err());
        assert!(parse_args(&args("--pin-cores ,")).is_err());
    }

    #[test]
    fn config_derives_sizes() {
        let o = Options {
            free: true,
            ..Options::default()
        };
        let cfg = build_config(&o).unwrap();
        assert_eq!(cfg.total_records(), 8 * 256 * 1024 / 16);
        assert_eq!(cfg.block_bytes, 16 << 10);
        cfg.validate().unwrap();
    }

    #[test]
    fn config_rejects_zero_workers() {
        let o = Options {
            workers: 0,
            free: true,
            ..Options::default()
        };
        assert!(build_config(&o).is_err());
    }

    #[test]
    fn config_rejects_bad_record_size() {
        let o = Options {
            record_bytes: 3,
            ..Options::default()
        };
        assert!(build_config(&o).is_err());
    }
}
