//! Record formats and key handling.
//!
//! The paper sorts *records* — a sort key plus additional data (footnote 1)
//! — at two sizes: 16-byte records (4 gigarecords in 64 GB) and 64-byte
//! records (1 gigarecord).  We use the same layout for both: a little-endian
//! `u64` key in the first eight bytes, payload in the rest.  Everything
//! operates on byte slices so records flow through FG buffers, disk blocks,
//! and network messages without conversion.

use crate::SortError;

/// A record layout: total size in bytes, key in the first eight bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordFormat {
    /// Total record size in bytes (at least 8 for the key).
    pub record_bytes: usize,
}

/// Bytes of the embedded sort key.
pub const KEY_BYTES: usize = 8;

impl RecordFormat {
    /// The paper's 16-byte record format.
    pub const REC16: RecordFormat = RecordFormat { record_bytes: 16 };
    /// The paper's 64-byte record format.
    pub const REC64: RecordFormat = RecordFormat { record_bytes: 64 };

    /// A format with the given record size.
    pub fn new(record_bytes: usize) -> Result<Self, SortError> {
        if record_bytes < KEY_BYTES {
            return Err(SortError::Config(format!(
                "record size {record_bytes} smaller than the {KEY_BYTES}-byte key"
            )));
        }
        Ok(RecordFormat { record_bytes })
    }

    /// Extract the key of a record slice.
    ///
    /// # Panics
    /// Panics if `rec` is shorter than the key.
    pub fn key(&self, rec: &[u8]) -> u64 {
        u64::from_le_bytes(rec[..KEY_BYTES].try_into().expect("key bytes"))
    }

    /// Write `key` into the first eight bytes of `rec`.
    pub fn set_key(&self, rec: &mut [u8], key: u64) {
        rec[..KEY_BYTES].copy_from_slice(&key.to_le_bytes());
    }

    /// Number of whole records in `bytes`.
    ///
    /// # Panics
    /// Panics if `bytes` is not a whole number of records.
    pub fn count(&self, bytes: &[u8]) -> usize {
        assert_eq!(
            bytes.len() % self.record_bytes,
            0,
            "byte length {} is not a whole number of {}-byte records",
            bytes.len(),
            self.record_bytes
        );
        bytes.len() / self.record_bytes
    }

    /// Iterate over the records of `bytes`.
    pub fn records<'a>(&self, bytes: &'a [u8]) -> std::slice::ChunksExact<'a, u8> {
        bytes.chunks_exact(self.record_bytes)
    }

    /// The `i`-th record of `bytes`.
    pub fn record<'a>(&self, bytes: &'a [u8], i: usize) -> &'a [u8] {
        &bytes[i * self.record_bytes..(i + 1) * self.record_bytes]
    }

    /// Stable sort of the records in `bytes` by key, out of place through
    /// `aux` (FG's auxiliary-buffer pattern: the permutation need not be
    /// performed in place).
    ///
    /// Convenience wrapper over [`RecordFormat::sort_bytes_with`] that
    /// reuses only the caller's record scratch; hot loops thread a full
    /// [`crate::kernels::SortScratch`] instead so the permutation pairs are
    /// reused across rounds too.
    pub fn sort_bytes(&self, bytes: &mut [u8], aux: &mut Vec<u8>) {
        let mut scratch = crate::kernels::SortScratch::new();
        std::mem::swap(&mut scratch.aux, aux);
        self.sort_bytes_with(bytes, &mut scratch);
        std::mem::swap(&mut scratch.aux, aux);
    }

    /// Stable sort of the records in `bytes` by key through the kernel
    /// scratch: LSD radix with digit skipping for large batches, a
    /// comparison sort below [`crate::kernels::RADIX_MIN_RECORDS`], and no
    /// allocation once the scratch is warm.
    pub fn sort_bytes_with(&self, bytes: &mut [u8], scratch: &mut crate::kernels::SortScratch) {
        crate::kernels::sort_records(*self, bytes, scratch);
    }

    /// Whether the records in `bytes` are sorted by key (non-decreasing).
    pub fn is_sorted(&self, bytes: &[u8]) -> bool {
        let mut prev = None;
        for rec in self.records(bytes) {
            let k = self.key(rec);
            if let Some(p) = prev {
                if k < p {
                    return false;
                }
            }
            prev = Some(k);
        }
        true
    }

    /// Order-insensitive fingerprint of a multiset of records: the wrapping
    /// sum of a per-record FNV-1a hash.  Used to check that sorting
    /// preserved the record multiset without materializing both sides.
    pub fn multiset_fingerprint(&self, bytes: &[u8]) -> u64 {
        let mut acc = 0u64;
        for rec in self.records(bytes) {
            acc = acc.wrapping_add(fnv1a(rec));
        }
        acc
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An *extended key*: the record's key made unique by its origin.
///
/// The paper (§V, "Selecting splitters"): "To guard against heavily
/// unbalanced partition sizes when keys are equal, we extend them to make
/// each key unique while deciding where to send each record; the extended
/// keys never actually become part of any record."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExtKey {
    /// The record's sort key.
    pub key: u64,
    /// Rank of the node the record originated on.
    pub node: u32,
    /// The record's index within its origin node's input.
    pub seq: u64,
}

impl ExtKey {
    /// Serialized size (key + node + seq).
    pub const BYTES: usize = 8 + 4 + 8;

    /// Serialize little-endian.
    pub fn to_bytes(self) -> [u8; Self::BYTES] {
        let mut out = [0u8; Self::BYTES];
        out[..8].copy_from_slice(&self.key.to_le_bytes());
        out[8..12].copy_from_slice(&self.node.to_le_bytes());
        out[12..20].copy_from_slice(&self.seq.to_le_bytes());
        out
    }

    /// Deserialize; fails on wrong length.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SortError> {
        if bytes.len() != Self::BYTES {
            return Err(SortError::Corrupt(format!(
                "extended key needs {} bytes, got {}",
                Self::BYTES,
                bytes.len()
            )));
        }
        Ok(ExtKey {
            key: u64::from_le_bytes(bytes[..8].try_into().expect("8")),
            node: u32::from_le_bytes(bytes[8..12].try_into().expect("4")),
            seq: u64::from_le_bytes(bytes[12..20].try_into().expect("8")),
        })
    }
}

/// Given sorted `splitters` (length P−1), the partition a record with
/// extended key `e` belongs to: partition `i` holds keys in
/// `(splitters[i-1], splitters[i]]`.
pub fn partition_of(splitters: &[ExtKey], e: ExtKey) -> usize {
    splitters.partition_point(|s| *s < e)
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: RecordFormat = RecordFormat::REC16;

    fn make_records(keys: &[u64]) -> Vec<u8> {
        let mut out = vec![0u8; keys.len() * F.record_bytes];
        for (i, &k) in keys.iter().enumerate() {
            F.set_key(&mut out[i * F.record_bytes..(i + 1) * F.record_bytes], k);
            // distinct payload so stability is observable
            out[i * F.record_bytes + 8] = i as u8;
        }
        out
    }

    #[test]
    fn key_roundtrip() {
        let mut rec = [0u8; 16];
        F.set_key(&mut rec, 0xDEAD_BEEF_0123_4567);
        assert_eq!(F.key(&rec), 0xDEAD_BEEF_0123_4567);
    }

    #[test]
    fn too_small_format_rejected() {
        assert!(RecordFormat::new(4).is_err());
        assert!(RecordFormat::new(8).is_ok());
    }

    #[test]
    fn count_and_indexing() {
        let bytes = make_records(&[5, 3, 7]);
        assert_eq!(F.count(&bytes), 3);
        assert_eq!(F.key(F.record(&bytes, 1)), 3);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_bytes_panic() {
        F.count(&[0u8; 17]);
    }

    #[test]
    fn sort_bytes_sorts_and_is_stable() {
        let mut bytes = make_records(&[5, 3, 5, 1]);
        let mut aux = Vec::new();
        F.sort_bytes(&mut bytes, &mut aux);
        let keys: Vec<u64> = F.records(&bytes).map(|r| F.key(r)).collect();
        assert_eq!(keys, vec![1, 3, 5, 5]);
        // The two key-5 records keep original order (payload 0 before 2).
        assert_eq!(F.record(&bytes, 2)[8], 0);
        assert_eq!(F.record(&bytes, 3)[8], 2);
        assert!(F.is_sorted(&bytes));
    }

    #[test]
    fn is_sorted_detects_disorder() {
        let bytes = make_records(&[1, 2, 1]);
        assert!(!F.is_sorted(&bytes));
        assert!(F.is_sorted(&make_records(&[])));
        assert!(F.is_sorted(&make_records(&[9])));
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_content_sensitive() {
        let a = make_records(&[1, 2, 3]);
        let b = make_records(&[3, 2, 1]);
        // Same multiset of (key, payload)?  No — payload encodes position,
        // so build b by permuting a's records instead.
        let mut b2 = Vec::new();
        for i in [2, 0, 1] {
            b2.extend_from_slice(F.record(&a, i));
        }
        assert_eq!(F.multiset_fingerprint(&a), F.multiset_fingerprint(&b2));
        assert_ne!(F.multiset_fingerprint(&a), F.multiset_fingerprint(&b));
    }

    #[test]
    fn ext_key_roundtrip_and_order() {
        let e = ExtKey {
            key: 7,
            node: 3,
            seq: 99,
        };
        assert_eq!(ExtKey::from_bytes(&e.to_bytes()).unwrap(), e);
        assert!(ExtKey::from_bytes(&[0; 5]).is_err());
        // Lexicographic: key dominates, then node, then seq.
        let lo = ExtKey {
            key: 7,
            node: 2,
            seq: u64::MAX,
        };
        assert!(lo < e);
        let hi = ExtKey {
            key: 7,
            node: 3,
            seq: 100,
        };
        assert!(e < hi);
        assert!(
            e < ExtKey {
                key: 8,
                node: 0,
                seq: 0
            }
        );
    }

    #[test]
    fn partition_of_uses_half_open_ranges() {
        let s = |k| ExtKey {
            key: k,
            node: 0,
            seq: 0,
        };
        let splitters = vec![s(10), s(20), s(30)];
        let e = |k, node| ExtKey {
            key: k,
            node,
            seq: 0,
        };
        assert_eq!(partition_of(&splitters, e(5, 0)), 0);
        assert_eq!(partition_of(&splitters, e(10, 0)), 0); // equal goes left
        assert_eq!(partition_of(&splitters, e(10, 1)), 1); // but ext-key above
        assert_eq!(partition_of(&splitters, e(25, 0)), 2);
        assert_eq!(partition_of(&splitters, e(31, 0)), 3);
    }

    #[test]
    fn equal_keys_split_by_extension() {
        // All keys equal: splitters drawn from extended keys distribute the
        // records across partitions instead of dumping them on one node.
        let n = 1000u64;
        let all: Vec<ExtKey> = (0..n)
            .map(|seq| ExtKey {
                key: 42,
                node: (seq % 4) as u32,
                seq,
            })
            .collect();
        let mut sorted = all.clone();
        sorted.sort();
        let p = 4;
        let splitters: Vec<ExtKey> = (1..p).map(|i| sorted[i * sorted.len() / p]).collect();
        let mut counts = [0usize; 4];
        for e in &all {
            counts[partition_of(&splitters, *e)] += 1;
        }
        for c in counts {
            assert!(
                (200..=300).contains(&c),
                "partitions should be near-even: {counts:?}"
            );
        }
    }
}
