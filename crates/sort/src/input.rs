//! Input dataset generation and ground truth.
//!
//! Each node's disk gets an `input` file of `records_per_node` records
//! whose keys follow the configured distribution; payload bytes encode the
//! record's origin `(node, seq)` so every record is distinguishable and
//! permutation checks are exact.  Provisioning uses the cost-free
//! [`Disk::load`] hook — loading the dataset is not part of any measured
//! pass.
//!
//! The backend each disk is built on comes from
//! [`SortConfig::backend`](crate::config::DiskBackend): in-memory
//! [`SimDisk`]s under the configured cost model, or real-file
//! [`OsDisk`](fg_pdm::OsDisk)s under `dir/d{rank}`.  With
//! `SortConfig::io_depth > 0` every disk is additionally wrapped in an
//! [`IoScheduler`](fg_pdm::IoScheduler) for read-ahead and write-behind.

use fg_core::metrics::MetricsRegistry;
use fg_pdm::{DiskRef, IoScheduler, OsDisk, SimDisk};

use crate::config::{DiskBackend, SortConfig};
use crate::keygen::KeyGen;
use crate::record::RecordFormat;
use crate::SortError;

/// Name of the per-node input file.
pub const INPUT_FILE: &str = "input";

/// Generate node `rank`'s input bytes.
pub fn generate_node_input(cfg: &SortConfig, rank: usize) -> Vec<u8> {
    let rb = cfg.record.record_bytes;
    let mut gen = KeyGen::new(cfg.dist, cfg.seed, rank, cfg.nodes);
    let mut out = vec![0u8; cfg.records_per_node * rb];
    for i in 0..cfg.records_per_node {
        let rec = &mut out[i * rb..(i + 1) * rb];
        cfg.record.set_key(rec, gen.next_key());
        // Origin identity in the payload (fits: record_bytes >= 16 for all
        // experiment formats; smaller formats get a truncated identity).
        let ident = ((rank as u64) << 48) | i as u64;
        let id_bytes = ident.to_le_bytes();
        let n = (rb - 8).min(8);
        rec[8..8 + n].copy_from_slice(&id_bytes[..n]);
    }
    out
}

/// Build node `rank`'s bare backend disk per the config, instrumented
/// under `disk/d{rank}/…` when a registry is given.
fn backend_disk(
    cfg: &SortConfig,
    rank: usize,
    registry: Option<&MetricsRegistry>,
) -> Result<DiskRef, SortError> {
    let label = format!("d{rank}");
    Ok(match &cfg.backend {
        DiskBackend::Sim => match registry {
            Some(reg) => SimDisk::with_metrics(cfg.disk, reg, &label) as DiskRef,
            None => SimDisk::new(cfg.disk) as DiskRef,
        },
        DiskBackend::Os { dir } => {
            let root = dir.join(&label);
            match registry {
                Some(reg) => OsDisk::with_metrics(root, reg, &label)? as DiskRef,
                None => OsDisk::new(root)? as DiskRef,
            }
        }
    })
}

/// Provision every node's disk with its input file; returns the disks.
///
/// Panics on backend setup errors (an unusable `--dir` root); use
/// [`try_provision`] where graceful handling matters.
pub fn provision(cfg: &SortConfig) -> Vec<DiskRef> {
    try_provision(cfg).expect("provision disks")
}

/// [`provision`], with each disk recording I/O latency histograms and byte
/// counters into `registry` under `disk/d{rank}/…` names (plus prefetch
/// hit/miss counters and the write-behind queue gauge when
/// `cfg.io_depth > 0`).
pub fn provision_with_metrics(cfg: &SortConfig, registry: &MetricsRegistry) -> Vec<DiskRef> {
    try_provision_with(cfg, Some(registry)).expect("provision disks")
}

/// Fallible [`provision`].
pub fn try_provision(cfg: &SortConfig) -> Result<Vec<DiskRef>, SortError> {
    try_provision_with(cfg, None)
}

/// Fallible [`provision_with_metrics`].
pub fn try_provision_with_metrics(
    cfg: &SortConfig,
    registry: &MetricsRegistry,
) -> Result<Vec<DiskRef>, SortError> {
    try_provision_with(cfg, Some(registry))
}

fn try_provision_with(
    cfg: &SortConfig,
    registry: Option<&MetricsRegistry>,
) -> Result<Vec<DiskRef>, SortError> {
    (0..cfg.nodes)
        .map(|rank| {
            let base = backend_disk(cfg, rank, registry)?;
            // A reused OsDisk root may hold files from an earlier run;
            // start every experiment from an empty disk (delete is
            // cost-free on all backends).
            for name in base.list() {
                base.delete(&name);
            }
            let disk: DiskRef = if cfg.io_depth > 0 {
                let sched = match registry {
                    Some(reg) => {
                        IoScheduler::with_metrics(base, cfg.io_depth, reg, &format!("d{rank}"))
                    }
                    None => IoScheduler::new(base, cfg.io_depth),
                }
                .map_err(|e| SortError::Config(e.to_string()))?;
                if let Some(sink) = &cfg.trace_sink {
                    sched.attach_trace(sink, &format!("d{rank}"));
                }
                sched
            } else {
                base
            };
            disk.load(INPUT_FILE, generate_node_input(cfg, rank));
            Ok(disk)
        })
        .collect()
}

/// The globally sorted expectation: all nodes' input records sorted stably
/// by key (ground truth for small verification runs).
pub fn expected_sorted(cfg: &SortConfig) -> Vec<u8> {
    let rb = cfg.record.record_bytes;
    let mut all = Vec::with_capacity(cfg.total_bytes() as usize);
    for rank in 0..cfg.nodes {
        all.extend_from_slice(&generate_node_input(cfg, rank));
    }
    let mut scratch = crate::kernels::SortScratch::new();
    cfg.record.sort_bytes_with(&mut all, &mut scratch);
    let _ = rb;
    all
}

/// Fingerprint of the whole input multiset.
pub fn input_fingerprint(cfg: &SortConfig) -> u64 {
    let mut acc = 0u64;
    for rank in 0..cfg.nodes {
        acc = acc.wrapping_add(
            cfg.record
                .multiset_fingerprint(&generate_node_input(cfg, rank)),
        );
    }
    acc
}

/// Keys of every record in `bytes` (test helper).
pub fn keys_of(format: RecordFormat, bytes: &[u8]) -> Vec<u64> {
    format.records(bytes).map(|r| format.key(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen::KeyDist;

    #[test]
    fn input_is_deterministic_and_distinct_per_node() {
        let cfg = SortConfig::test_default(3, 100);
        assert_eq!(generate_node_input(&cfg, 1), generate_node_input(&cfg, 1));
        assert_ne!(generate_node_input(&cfg, 0), generate_node_input(&cfg, 1));
    }

    #[test]
    fn records_carry_origin_identity() {
        let cfg = SortConfig::test_default(2, 10);
        let bytes = generate_node_input(&cfg, 1);
        let rec = cfg.record.record(&bytes, 3);
        let ident = u64::from_le_bytes(rec[8..16].try_into().unwrap());
        assert_eq!(ident >> 48, 1);
        assert_eq!(ident & 0xFFFF_FFFF_FFFF, 3);
    }

    #[test]
    fn all_equal_still_distinct_records() {
        let mut cfg = SortConfig::test_default(2, 50);
        cfg.dist = KeyDist::AllEqual;
        let bytes = generate_node_input(&cfg, 0);
        let mut set = std::collections::HashSet::new();
        for rec in cfg.record.records(&bytes) {
            assert!(set.insert(rec.to_vec()), "records must be unique");
        }
    }

    #[test]
    fn provision_loads_input_files() {
        let cfg = SortConfig::test_default(2, 20);
        let disks = provision(&cfg);
        assert_eq!(disks.len(), 2);
        for d in &disks {
            assert_eq!(d.len(INPUT_FILE), Some(cfg.bytes_per_node()));
            // Provisioning must be cost-free.
            assert_eq!(d.stats().bytes_written, 0);
        }
    }

    #[test]
    fn expected_sorted_is_sorted_permutation() {
        let cfg = SortConfig::test_default(3, 64);
        let sorted = expected_sorted(&cfg);
        assert!(cfg.record.is_sorted(&sorted));
        assert_eq!(
            cfg.record.multiset_fingerprint(&sorted),
            input_fingerprint(&cfg)
        );
        assert_eq!(sorted.len() as u64, cfg.total_bytes());
    }
}
