//! Output verification: sorted ∧ striped ∧ a permutation of the input.
//!
//! Both sorts emit "striped output ... in the order defined in the Parallel
//! Disk Model" (§V).  Verification reassembles the global stream from the
//! per-node stripe files and checks:
//!
//! 1. the length equals the input length,
//! 2. keys are non-decreasing, and
//! 3. the multiset of records equals the input's (order-insensitive
//!    fingerprint, plus an exact byte comparison against the reference
//!    sort when `strict` is requested — affordable at test scale).

use fg_pdm::{DiskRef, Striping};

use crate::config::SortConfig;
use crate::input;
use crate::SortError;

/// Name of the per-node striped output file.
pub const OUTPUT_FILE: &str = "output";

/// How thoroughly to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strictness {
    /// Length + sortedness + multiset fingerprint.
    Fingerprint,
    /// Everything in `Fingerprint`, plus an exact byte-for-byte comparison
    /// against a stable reference sort of the input.
    Exact,
}

/// Verify the striped output of a finished sort run.
pub fn verify_output(
    cfg: &SortConfig,
    disks: &[DiskRef],
    strictness: Strictness,
) -> Result<(), SortError> {
    let striping = Striping::new(cfg.nodes, cfg.block_bytes);
    let total = cfg.total_bytes();
    let got = striping
        .assemble(disks, OUTPUT_FILE, total)
        .map_err(|e| SortError::Verify(format!("assembling striped output: {e}")))?;
    if got.len() as u64 != total {
        return Err(SortError::Verify(format!(
            "output length {} != input length {total}",
            got.len()
        )));
    }
    if !cfg.record.is_sorted(&got) {
        // Locate the first violation for a useful message.
        let mut prev = 0u64;
        for (i, rec) in cfg.record.records(&got).enumerate() {
            let k = cfg.record.key(rec);
            if i > 0 && k < prev {
                return Err(SortError::Verify(format!(
                    "keys out of order at record {i}: {prev} then {k}"
                )));
            }
            prev = k;
        }
        unreachable!("is_sorted said unsorted but no violation found");
    }
    let got_fp = cfg.record.multiset_fingerprint(&got);
    let want_fp = input::input_fingerprint(cfg);
    if got_fp != want_fp {
        return Err(SortError::Verify(format!(
            "record multiset changed: fingerprint {got_fp:#x} != input {want_fp:#x}"
        )));
    }
    if strictness == Strictness::Exact {
        let expect = input::expected_sorted(cfg);
        // Keys must match exactly; payload order among equal keys may
        // legitimately differ between sorting algorithms, so compare keys
        // positionally and the full multiset (already checked above).
        let got_keys = input::keys_of(cfg.record, &got);
        let want_keys = input::keys_of(cfg.record, &expect);
        if got_keys != want_keys {
            let first = got_keys
                .iter()
                .zip(&want_keys)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            return Err(SortError::Verify(format!(
                "key sequence differs from reference at record {first}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_pdm::{DiskCfg, SimDisk};

    /// Write a correct striped output for `cfg` onto fresh disks.
    fn write_correct(cfg: &SortConfig) -> Vec<DiskRef> {
        let disks: Vec<DiskRef> = (0..cfg.nodes)
            .map(|_| SimDisk::new(DiskCfg::zero()) as DiskRef)
            .collect();
        let sorted = input::expected_sorted(cfg);
        let striping = Striping::new(cfg.nodes, cfg.block_bytes);
        for (node, local, range) in striping.split_range(0, sorted.len()) {
            disks[node]
                .write_at(OUTPUT_FILE, local, &sorted[range])
                .unwrap();
        }
        disks
    }

    #[test]
    fn accepts_correct_output() {
        let cfg = SortConfig::test_default(3, 128);
        let disks = write_correct(&cfg);
        verify_output(&cfg, &disks, Strictness::Exact).unwrap();
    }

    #[test]
    fn rejects_missing_stripe() {
        let cfg = SortConfig::test_default(3, 128);
        let disks = write_correct(&cfg);
        disks[1].delete(OUTPUT_FILE);
        assert!(verify_output(&cfg, &disks, Strictness::Fingerprint).is_err());
    }

    #[test]
    fn rejects_unsorted_output() {
        let cfg = SortConfig::test_default(2, 64);
        let disks = write_correct(&cfg);
        // Swap two records within node 0's first block.
        let mut snap = disks[0].snapshot(OUTPUT_FILE).unwrap();
        let rb = cfg.record.record_bytes;
        let (a, b) = (0usize, rb);
        for i in 0..rb {
            snap.swap(a + i, b + i);
        }
        disks[0].load(OUTPUT_FILE, snap);
        // Either unsorted or (if keys happened to be equal) still fine; use
        // a distribution guaranteeing distinct keys.
        let err = verify_output(&cfg, &disks, Strictness::Fingerprint);
        // Uniform 64-bit keys: collision probability negligible.
        assert!(err.is_err(), "swapped records must be detected");
    }

    #[test]
    fn rejects_tampered_record() {
        let cfg = SortConfig::test_default(2, 64);
        let disks = write_correct(&cfg);
        let mut snap = disks[0].snapshot(OUTPUT_FILE).unwrap();
        let last = snap.len() - 1;
        snap[last] ^= 0xFF; // corrupt payload, keys stay sorted
        disks[0].load(OUTPUT_FILE, snap);
        let err = verify_output(&cfg, &disks, Strictness::Fingerprint).unwrap_err();
        assert!(matches!(err, SortError::Verify(m) if m.contains("multiset")));
    }
}
