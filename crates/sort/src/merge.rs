//! K-way merging: the loser tree driving dsort's merge stage.
//!
//! Pass 2 of dsort merges up to hundreds of sorted runs (§V).  The merge
//! stage "repeatedly chooses the smallest value not yet chosen from any of
//! the buffers" — a tournament among the run heads.  A *loser tree* does
//! each choose-and-refill in `O(log k)` comparisons.
//!
//! The tree operates on `(key, tiebreak)` pairs; lanes with equal pairs win
//! in lane order, so a merge is fully deterministic.  Lane exhaustion is
//! `None`, which loses against everything.

/// A merge key: the record's sort key plus a caller-chosen tiebreak.
pub type MergeKey = (u64, u64);

/// A loser tree over `k` lanes.
///
/// Protocol: construct with each lane's initial head key (or `None` if the
/// lane is empty); repeatedly call [`LoserTree::winner`] to learn the lane
/// with the smallest head, consume that lane's head, and call
/// [`LoserTree::replace`] with the lane's next key.
#[derive(Debug)]
pub struct LoserTree {
    k: usize,
    /// `losers[0]` is the overall winner; `losers[1..k]` hold the loser of
    /// each internal tournament node.
    losers: Vec<usize>,
    keys: Vec<Option<MergeKey>>,
}

impl LoserTree {
    /// Build a tree over the given initial lane heads.
    pub fn new(heads: Vec<Option<MergeKey>>) -> Self {
        let k = heads.len();
        assert!(k > 0, "loser tree needs at least one lane");
        let mut tree = LoserTree {
            k,
            losers: vec![usize::MAX; k],
            keys: heads,
        };
        let winner = tree.build(1);
        tree.losers[0] = winner;
        tree
    }

    /// Recursively play the tournament below `node`, recording losers;
    /// returns the winning lane.
    fn build(&mut self, node: usize) -> usize {
        if node >= self.k {
            return node - self.k;
        }
        let left = self.build(2 * node);
        let right = self.build(2 * node + 1);
        let (winner, loser) = if self.beats(left, right) {
            (left, right)
        } else {
            (right, left)
        };
        self.losers[node] = loser;
        winner
    }

    /// Whether lane `a`'s head beats lane `b`'s (smaller key wins; `None`
    /// loses to everything; lane index breaks full ties).
    fn beats(&self, a: usize, b: usize) -> bool {
        match (self.keys[a], self.keys[b]) {
            (Some(ka), Some(kb)) => (ka, a) < (kb, b),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// The lane holding the smallest head and that head's key, or `None`
    /// once every lane is exhausted.
    pub fn winner(&self) -> Option<(usize, MergeKey)> {
        let lane = self.losers[0];
        self.keys[lane].map(|k| (lane, k))
    }

    /// Replace the current winner's head (the caller consumed it) with the
    /// lane's next key — `None` when the lane is exhausted — and replay the
    /// tournament path from that leaf.
    pub fn replace(&mut self, lane: usize, next: Option<MergeKey>) {
        debug_assert_eq!(
            lane, self.losers[0],
            "replace must be called on the current winner"
        );
        self.keys[lane] = next;
        if self.k == 1 {
            return;
        }
        let mut winner = lane;
        let mut node = (self.k + lane) / 2;
        while node >= 1 {
            let contender = self.losers[node];
            if self.beats(contender, winner) {
                self.losers[node] = winner;
                winner = contender;
            }
            node /= 2;
        }
        self.losers[0] = winner;
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.k
    }

    /// The lane that would win if the current winner's lane were exhausted
    /// — the best live contender along the winner's tournament path — and
    /// its key.  `None` when every other lane is exhausted.  `O(log k)`.
    pub fn runner_up(&self) -> Option<(usize, MergeKey)> {
        if self.k == 1 {
            return None;
        }
        let winner = self.losers[0];
        let mut best: Option<usize> = None;
        let mut node = (self.k + winner) / 2;
        while node >= 1 {
            let contender = self.losers[node];
            if self.keys[contender].is_some() && best.is_none_or(|b| self.beats(contender, b)) {
                best = Some(contender);
            }
            node /= 2;
        }
        best.map(|b| (b, self.keys[b].expect("live contender has a key")))
    }

    /// The `MergeRun` fast path: how many leading records of `lane_data` —
    /// the current winner's buffered, sorted records, merged with tiebreak
    /// 0 — can be emitted in one batch before the tree must be consulted
    /// again, i.e. every record that still beats the runner-up.  At least 1
    /// (the head itself is the winner), at most the records in `lane_data`.
    /// The caller copies the whole range with one `copy_from_slice`, then
    /// calls [`LoserTree::replace`] once.
    pub fn merge_run(&self, fmt: crate::record::RecordFormat, lane_data: &[u8]) -> usize {
        let lane = self.losers[0];
        let n = lane_data.len() / fmt.record_bytes;
        debug_assert!(n >= 1, "winner lane must have buffered records");
        debug_assert_eq!(
            self.keys[lane],
            Some((fmt.key(lane_data), 0)),
            "lane_data must start at the winner's head (tiebreak 0)"
        );
        let Some((r_lane, (r_key, r_tie))) = self.runner_up() else {
            return n; // every other lane exhausted: drain this one
        };
        // A record with key `k` (tiebreak 0) beats the runner-up when
        // (k, 0, lane) < (r_key, r_tie, r_lane); with `k` non-decreasing
        // along the run this reduces to a single key bound, strict or not
        // depending on how the (tiebreak, lane) comparison falls.
        let len = if (0u64, lane) < (r_tie, r_lane) {
            crate::kernels::run_len(fmt, lane_data, |k| k <= r_key)
        } else {
            crate::kernels::run_len(fmt, lane_data, |k| k < r_key)
        };
        len.clamp(1, n)
    }
}

/// Adaptive gate in front of [`LoserTree::merge_run`].
///
/// Batching pays for a runner-up walk plus a galloping probe per tree
/// consultation.  When runs barely interleave (splitter-partitioned,
/// presorted data) batches are long and that cost amortizes to nothing;
/// when they interleave record-by-record (uniform random keys) every
/// batch is 1 and the probe is pure overhead on top of the scalar path.
/// This policy backs off exponentially on batch-of-1 results: after each
/// failed probe it serves twice as many scalar steps (batch 1, no probe)
/// before probing again, up to [`BatchPolicy::MAX_BACKOFF`], and resets
/// on any successful batch.  A fully interleaved stream thus pays only
/// `O(log)` probes plus one per `MAX_BACKOFF` records — overhead that
/// vanishes — while a regime change to run-structured data is still
/// noticed within `MAX_BACKOFF` records.
#[derive(Debug)]
pub struct BatchPolicy {
    /// Scalar steps remaining before the next probe.
    skip: u32,
    /// Scalar steps the *next* failed probe will cost.
    backoff: u32,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchPolicy {
    /// First backoff after a failed probe (doubles per consecutive miss).
    pub const MIN_BACKOFF: u32 = 4;
    /// Backoff ceiling: the most records a newly run-structured stretch
    /// can go unnoticed.
    pub const MAX_BACKOFF: u32 = 1024;

    /// A fresh policy that probes on its first step.
    pub fn new() -> Self {
        BatchPolicy {
            skip: 0,
            backoff: Self::MIN_BACKOFF,
        }
    }

    /// [`LoserTree::merge_run`] behind the backoff gate: the batch length
    /// (in records) to emit from the current winner's `lane_data`.
    pub fn merge_run(
        &mut self,
        tree: &LoserTree,
        fmt: crate::record::RecordFormat,
        lane_data: &[u8],
    ) -> usize {
        if self.skip > 0 {
            self.skip -= 1;
            return 1;
        }
        let n = tree.merge_run(fmt, lane_data);
        if n <= 1 {
            self.skip = self.backoff;
            self.backoff = (self.backoff * 2).min(Self::MAX_BACKOFF);
        } else {
            self.backoff = Self::MIN_BACKOFF;
        }
        n
    }
}

/// Merge fully-materialized sorted runs of records (test and ablation
/// helper; the FG merge stage streams through buffers instead).
pub fn merge_runs(format: crate::record::RecordFormat, runs: &[&[u8]]) -> Vec<u8> {
    if runs.is_empty() {
        return Vec::new();
    }
    let rb = format.record_bytes;
    let mut offsets = vec![0usize; runs.len()];
    let head = |run: &[u8], off: usize| -> Option<MergeKey> {
        if off < run.len() {
            Some((format.key(&run[off..off + rb]), 0))
        } else {
            None
        }
    };
    let mut tree = LoserTree::new(
        runs.iter()
            .zip(&offsets)
            .map(|(run, &off)| head(run, off))
            .collect(),
    );
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut policy = BatchPolicy::new();
    while let Some((lane, _)) = tree.winner() {
        let off = offsets[lane];
        // MergeRun fast path: emit the whole batch that beats the
        // runner-up with one copy, then replay the tree once.
        let batch = policy.merge_run(&tree, format, &runs[lane][off..]) * rb;
        out.extend_from_slice(&runs[lane][off..off + batch]);
        offsets[lane] += batch;
        tree.replace(lane, head(runs[lane], offsets[lane]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordFormat;

    fn drain(lanes: Vec<Vec<u64>>) -> Vec<u64> {
        let mut cursors = vec![0usize; lanes.len()];
        let head = |lane: &Vec<u64>, c: usize| lane.get(c).map(|&k| (k, 0));
        let mut tree = LoserTree::new(
            lanes
                .iter()
                .zip(&cursors)
                .map(|(l, &c)| head(l, c))
                .collect(),
        );
        let mut out = Vec::new();
        while let Some((lane, (key, _))) = tree.winner() {
            out.push(key);
            cursors[lane] += 1;
            tree.replace(lane, head(&lanes[lane], cursors[lane]));
        }
        out
    }

    #[test]
    fn merges_basic() {
        let got = drain(vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]]);
        assert_eq!(got, (1..=9).collect::<Vec<u64>>());
    }

    #[test]
    fn single_lane() {
        assert_eq!(drain(vec![vec![3, 3, 5]]), vec![3, 3, 5]);
    }

    #[test]
    fn empty_lanes_among_full() {
        let got = drain(vec![vec![], vec![2, 2], vec![], vec![1], vec![]]);
        assert_eq!(got, vec![1, 2, 2]);
    }

    #[test]
    fn all_lanes_empty() {
        assert_eq!(drain(vec![vec![], vec![]]), Vec::<u64>::new());
    }

    #[test]
    fn duplicates_across_lanes_resolve_by_lane_order() {
        let got = drain(vec![vec![5; 4], vec![5; 4]]);
        assert_eq!(got, vec![5; 8]);
    }

    #[test]
    fn many_lanes_arbitrary_k() {
        for k in [1usize, 2, 3, 5, 7, 13, 31, 100] {
            let lanes: Vec<Vec<u64>> = (0..k)
                .map(|l| (0..20).map(|i| (i * k + l) as u64).collect())
                .collect();
            let got = drain(lanes);
            let expect: Vec<u64> = (0..(20 * k) as u64).collect();
            assert_eq!(got, expect, "k = {k}");
        }
    }

    #[test]
    fn randomized_against_std_sort() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let k = rng.random_range(1..12);
            let mut all = Vec::new();
            let lanes: Vec<Vec<u64>> = (0..k)
                .map(|_| {
                    let n = rng.random_range(0..40);
                    let mut lane: Vec<u64> = (0..n).map(|_| rng.random_range(0..50)).collect();
                    lane.sort_unstable();
                    all.extend_from_slice(&lane);
                    lane
                })
                .collect();
            all.sort_unstable();
            assert_eq!(drain(lanes), all);
        }
    }

    #[test]
    fn runner_up_tracks_second_best() {
        let mut tree = LoserTree::new(vec![Some((3, 0)), Some((1, 0)), Some((2, 0))]);
        assert_eq!(tree.winner(), Some((1, (1, 0))));
        assert_eq!(tree.runner_up(), Some((2, (2, 0))));
        tree.replace(1, Some((9, 0)));
        assert_eq!(tree.winner(), Some((2, (2, 0))));
        assert_eq!(tree.runner_up(), Some((0, (3, 0))));
        tree.replace(2, None);
        tree.replace(0, None);
        assert_eq!(tree.winner(), Some((1, (9, 0))));
        assert_eq!(tree.runner_up(), None);
        assert_eq!(LoserTree::new(vec![Some((5, 0))]).runner_up(), None);
    }

    #[test]
    fn merge_run_batches_up_to_runner_up() {
        let f = RecordFormat::REC16;
        let mk = |keys: &[u64]| {
            let mut out = vec![0u8; keys.len() * 16];
            for (i, &k) in keys.iter().enumerate() {
                f.set_key(&mut out[i * 16..(i + 1) * 16], k);
            }
            out
        };
        // Lane 0 holds 1,2,3,7; lane 1 holds 4: the batch is the 3 records
        // strictly below the runner-up's key.
        let lane0 = mk(&[1, 2, 3, 7]);
        let tree = LoserTree::new(vec![Some((1, 0)), Some((4, 0))]);
        assert_eq!(tree.merge_run(f, &lane0), 3);
        // Equal keys: the lower lane index wins ties, so lane 0 may emit
        // through the tie; a higher-lane winner must stop before it.
        let lane = mk(&[4, 4, 5]);
        let tree = LoserTree::new(vec![Some((4, 0)), Some((4, 0))]);
        assert_eq!(tree.winner(), Some((0, (4, 0))));
        assert_eq!(tree.merge_run(f, &lane), 2);
        let tree = LoserTree::new(vec![None, Some((4, 0))]);
        assert_eq!(tree.winner(), Some((1, (4, 0))));
        assert_eq!(tree.merge_run(f, &lane), 3); // lane 0 exhausted: drain
    }

    #[test]
    fn batch_policy_backs_off_exponentially() {
        let f = RecordFormat::REC16;
        let mk = |keys: &[u64]| {
            let mut out = vec![0u8; keys.len() * 16];
            for (i, &k) in keys.iter().enumerate() {
                f.set_key(&mut out[i * 16..(i + 1) * 16], k);
            }
            out
        };
        // Fully interleaved: the winner's next key loses to the
        // runner-up, so every probe yields a batch of 1.
        let lane = mk(&[4, 10, 10]);
        let tree = LoserTree::new(vec![Some((5, 0)), Some((4, 0))]);
        let mut policy = BatchPolicy::new();
        assert_eq!(tree.winner(), Some((1, (4, 0))));
        // First call probes (batch 1), then serves MIN_BACKOFF scalar
        // steps, probes again, serves 2x, and so on.
        let mut probes = 0;
        let mut steps = 0u32;
        let total = BatchPolicy::MIN_BACKOFF * 8;
        for _ in 0..total {
            let before = policy.skip;
            assert_eq!(policy.merge_run(&tree, f, &lane), 1);
            if before == 0 {
                probes += 1;
            }
            steps += 1;
        }
        assert!(
            probes <= 4,
            "{probes} probes in {steps} interleaved steps (want O(log))"
        );
        // A successful batch resets the backoff.
        let runny = mk(&[1, 2, 3]);
        let tree = LoserTree::new(vec![Some((1, 0)), Some((9, 0))]);
        let mut policy = BatchPolicy::new();
        assert_eq!(policy.merge_run(&tree, f, &runny), 3);
        assert_eq!(policy.backoff, BatchPolicy::MIN_BACKOFF);
    }

    #[test]
    fn merge_runs_over_records() {
        let f = RecordFormat::REC16;
        let mk = |keys: &[u64]| {
            let mut out = vec![0u8; keys.len() * 16];
            for (i, &k) in keys.iter().enumerate() {
                f.set_key(&mut out[i * 16..(i + 1) * 16], k);
            }
            out
        };
        let a = mk(&[1, 3, 5]);
        let b = mk(&[2, 3, 6]);
        let merged = merge_runs(f, &[&a, &b]);
        let keys: Vec<u64> = f.records(&merged).map(|r| f.key(r)).collect();
        assert_eq!(keys, vec![1, 2, 3, 3, 5, 6]);
        assert_eq!(merge_runs(f, &[]), Vec::<u8>::new());
    }
}
