//! K-way merging: the loser tree driving dsort's merge stage.
//!
//! Pass 2 of dsort merges up to hundreds of sorted runs (§V).  The merge
//! stage "repeatedly chooses the smallest value not yet chosen from any of
//! the buffers" — a tournament among the run heads.  A *loser tree* does
//! each choose-and-refill in `O(log k)` comparisons.
//!
//! The tree operates on `(key, tiebreak)` pairs; lanes with equal pairs win
//! in lane order, so a merge is fully deterministic.  Lane exhaustion is
//! `None`, which loses against everything.

/// A merge key: the record's sort key plus a caller-chosen tiebreak.
pub type MergeKey = (u64, u64);

/// A loser tree over `k` lanes.
///
/// Protocol: construct with each lane's initial head key (or `None` if the
/// lane is empty); repeatedly call [`LoserTree::winner`] to learn the lane
/// with the smallest head, consume that lane's head, and call
/// [`LoserTree::replace`] with the lane's next key.
#[derive(Debug)]
pub struct LoserTree {
    k: usize,
    /// `losers[0]` is the overall winner; `losers[1..k]` hold the loser of
    /// each internal tournament node.
    losers: Vec<usize>,
    keys: Vec<Option<MergeKey>>,
}

impl LoserTree {
    /// Build a tree over the given initial lane heads.
    pub fn new(heads: Vec<Option<MergeKey>>) -> Self {
        let k = heads.len();
        assert!(k > 0, "loser tree needs at least one lane");
        let mut tree = LoserTree {
            k,
            losers: vec![usize::MAX; k],
            keys: heads,
        };
        let winner = tree.build(1);
        tree.losers[0] = winner;
        tree
    }

    /// Recursively play the tournament below `node`, recording losers;
    /// returns the winning lane.
    fn build(&mut self, node: usize) -> usize {
        if node >= self.k {
            return node - self.k;
        }
        let left = self.build(2 * node);
        let right = self.build(2 * node + 1);
        let (winner, loser) = if self.beats(left, right) {
            (left, right)
        } else {
            (right, left)
        };
        self.losers[node] = loser;
        winner
    }

    /// Whether lane `a`'s head beats lane `b`'s (smaller key wins; `None`
    /// loses to everything; lane index breaks full ties).
    fn beats(&self, a: usize, b: usize) -> bool {
        match (self.keys[a], self.keys[b]) {
            (Some(ka), Some(kb)) => (ka, a) < (kb, b),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// The lane holding the smallest head and that head's key, or `None`
    /// once every lane is exhausted.
    pub fn winner(&self) -> Option<(usize, MergeKey)> {
        let lane = self.losers[0];
        self.keys[lane].map(|k| (lane, k))
    }

    /// Replace the current winner's head (the caller consumed it) with the
    /// lane's next key — `None` when the lane is exhausted — and replay the
    /// tournament path from that leaf.
    pub fn replace(&mut self, lane: usize, next: Option<MergeKey>) {
        debug_assert_eq!(
            lane, self.losers[0],
            "replace must be called on the current winner"
        );
        self.keys[lane] = next;
        if self.k == 1 {
            return;
        }
        let mut winner = lane;
        let mut node = (self.k + lane) / 2;
        while node >= 1 {
            let contender = self.losers[node];
            if self.beats(contender, winner) {
                self.losers[node] = winner;
                winner = contender;
            }
            node /= 2;
        }
        self.losers[0] = winner;
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.k
    }
}

/// Merge fully-materialized sorted runs of records (test and ablation
/// helper; the FG merge stage streams through buffers instead).
pub fn merge_runs(format: crate::record::RecordFormat, runs: &[&[u8]]) -> Vec<u8> {
    if runs.is_empty() {
        return Vec::new();
    }
    let rb = format.record_bytes;
    let mut offsets = vec![0usize; runs.len()];
    let head = |run: &[u8], off: usize| -> Option<MergeKey> {
        if off < run.len() {
            Some((format.key(&run[off..off + rb]), 0))
        } else {
            None
        }
    };
    let mut tree = LoserTree::new(
        runs.iter()
            .zip(&offsets)
            .map(|(run, &off)| head(run, off))
            .collect(),
    );
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    while let Some((lane, _)) = tree.winner() {
        let off = offsets[lane];
        out.extend_from_slice(&runs[lane][off..off + rb]);
        offsets[lane] += rb;
        tree.replace(lane, head(runs[lane], offsets[lane]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordFormat;

    fn drain(lanes: Vec<Vec<u64>>) -> Vec<u64> {
        let mut cursors = vec![0usize; lanes.len()];
        let head = |lane: &Vec<u64>, c: usize| lane.get(c).map(|&k| (k, 0));
        let mut tree = LoserTree::new(
            lanes
                .iter()
                .zip(&cursors)
                .map(|(l, &c)| head(l, c))
                .collect(),
        );
        let mut out = Vec::new();
        while let Some((lane, (key, _))) = tree.winner() {
            out.push(key);
            cursors[lane] += 1;
            tree.replace(lane, head(&lanes[lane], cursors[lane]));
        }
        out
    }

    #[test]
    fn merges_basic() {
        let got = drain(vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]]);
        assert_eq!(got, (1..=9).collect::<Vec<u64>>());
    }

    #[test]
    fn single_lane() {
        assert_eq!(drain(vec![vec![3, 3, 5]]), vec![3, 3, 5]);
    }

    #[test]
    fn empty_lanes_among_full() {
        let got = drain(vec![vec![], vec![2, 2], vec![], vec![1], vec![]]);
        assert_eq!(got, vec![1, 2, 2]);
    }

    #[test]
    fn all_lanes_empty() {
        assert_eq!(drain(vec![vec![], vec![]]), Vec::<u64>::new());
    }

    #[test]
    fn duplicates_across_lanes_resolve_by_lane_order() {
        let got = drain(vec![vec![5; 4], vec![5; 4]]);
        assert_eq!(got, vec![5; 8]);
    }

    #[test]
    fn many_lanes_arbitrary_k() {
        for k in [1usize, 2, 3, 5, 7, 13, 31, 100] {
            let lanes: Vec<Vec<u64>> = (0..k)
                .map(|l| (0..20).map(|i| (i * k + l) as u64).collect())
                .collect();
            let got = drain(lanes);
            let expect: Vec<u64> = (0..(20 * k) as u64).collect();
            assert_eq!(got, expect, "k = {k}");
        }
    }

    #[test]
    fn randomized_against_std_sort() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let k = rng.random_range(1..12);
            let mut all = Vec::new();
            let lanes: Vec<Vec<u64>> = (0..k)
                .map(|_| {
                    let n = rng.random_range(0..40);
                    let mut lane: Vec<u64> = (0..n).map(|_| rng.random_range(0..50)).collect();
                    lane.sort_unstable();
                    all.extend_from_slice(&lane);
                    lane
                })
                .collect();
            all.sort_unstable();
            assert_eq!(drain(lanes), all);
        }
    }

    #[test]
    fn merge_runs_over_records() {
        let f = RecordFormat::REC16;
        let mk = |keys: &[u64]| {
            let mut out = vec![0u8; keys.len() * 16];
            for (i, &k) in keys.iter().enumerate() {
                f.set_key(&mut out[i * 16..(i + 1) * 16], k);
            }
            out
        };
        let a = mk(&[1, 3, 5]);
        let b = mk(&[2, 3, 6]);
        let merged = merge_runs(f, &[&a, &b]);
        let keys: Vec<u64> = f.records(&merged).map(|r| f.key(r)).collect();
        assert_eq!(keys, vec![1, 2, 3, 3, 5, 6]);
        assert_eq!(merge_runs(f, &[]), Vec::<u8>::new());
    }
}
