//! Sort and merge kernels for the per-round hot loops.
//!
//! Once the disks overlap, the per-round CPU cost of csort and dsort is
//! dominated by generic comparison sorting and one-record-at-a-time merging
//! — exactly the per-element overhead the streaming literature warns about.
//! This module concentrates those inner loops:
//!
//! * a cache-aware **radix sort** — one MSD scatter on the highest live
//!   key digit, then in-cache LSD passes per bucket — with adaptive digit
//!   skipping and a comparison fallback for small batches
//!   ([`sort_records`]).  16-byte records are sorted whole as
//!   `(key, payload)` register pairs; wider formats sort
//!   `(key, original index)` permutation pairs and gather;
//! * **specialized gather loops** for the 16- and 64-byte record formats
//!   that apply the sorted permutation with fixed-size copies the compiler
//!   can vectorize;
//! * **galloping run detection** over sorted record slices ([`run_len`]) —
//!   the building block of the batched `MergeRun` fast path in
//!   [`crate::merge`] and of the two-run merge in csort pass 3 / csort4
//!   pass 4.
//!
//! All scratch memory lives in a [`SortScratch`] that callers thread
//! through their rounds, so steady-state sorting allocates nothing (the
//! bench asserts this via [`SortScratch::capacity_fingerprint`]).

use std::sync::Arc;

use fg_core::metrics::{Counter, MetricsRegistry};

use crate::record::RecordFormat;

/// Below this many records the comparison sort wins: the radix kernel pays
/// a fixed histogram scan plus up to eight scatter passes, which only
/// amortizes once batches reach a few hundred records.
pub const RADIX_MIN_RECORDS: usize = 256;

/// Key digits (bytes) an LSD pass can sort by.
const DIGITS: usize = 8;
/// Buckets per digit.
const RADIX: usize = 256;
/// Inputs up to this many bytes sort with flat LSD passes (every scatter
/// stays cache-resident); larger inputs take the MSD-then-in-cache-LSD
/// hybrid, whose single full-array scatter is the only pass that pays
/// memory latency.
const FLAT_LSD_MAX_BYTES: usize = 4 << 20;

/// Which sort kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Radix at or above [`RADIX_MIN_RECORDS`] records, comparison below.
    Auto,
    /// Force the LSD radix kernel (benches and tests).
    Radix,
    /// Force the comparison kernel — the pre-kernel `sort_bytes` behavior.
    Comparison,
}

/// Metric handles resolved once at scratch construction so the hot loop
/// never touches the registry's interning lock.
struct KernelCounters {
    radix_sorts: Arc<Counter>,
    comparison_sorts: Arc<Counter>,
    passes_skipped: Arc<Counter>,
}

/// Reusable scratch for the sort kernels.
///
/// Owns the `(key, index)` permutation pairs, the whole-record `(key,
/// payload)` pairs the 16-byte radix path sorts directly, their radix
/// ping-pong buffers, and the auxiliary record bytes the permutation is
/// applied through.  One scratch per sort-stage replica (threaded through
/// csort, csort4, dsort pass 1, dsort-linear, and input verification)
/// keeps the per-round allocation count at zero once the buffers are warm.
#[derive(Default)]
pub struct SortScratch {
    /// `(key, original index)` pairs; after sorting, the permutation.
    pairs: Vec<(u64, u32)>,
    /// Ping-pong target for the radix scatter passes.
    pairs_tmp: Vec<(u64, u32)>,
    /// Whole 16-byte records as `(key, payload)` — the REC16 radix path
    /// sorts these directly, skipping the permutation gather.
    recs: Vec<(u64, u64)>,
    /// Ping-pong target for the whole-record radix passes.
    recs_tmp: Vec<(u64, u64)>,
    /// Auxiliary record bytes the permutation gathers into.
    pub(crate) aux: Vec<u8>,
    counters: Option<KernelCounters>,
}

impl SortScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch whose sorts publish `kernel/*` counters to `registry`.
    pub fn with_registry(registry: &MetricsRegistry) -> Self {
        SortScratch {
            counters: Some(KernelCounters {
                radix_sorts: registry.counter("kernel/radix_sorts"),
                comparison_sorts: registry.counter("kernel/comparison_sorts"),
                passes_skipped: registry.counter("kernel/radix_passes_skipped"),
            }),
            ..Self::default()
        }
    }

    /// Capacities of the owned buffers (permutation pairs and ping-pong,
    /// whole-record pairs and ping-pong, aux bytes).  The bench's
    /// zero-allocation assertion checks this stays constant across
    /// steady-state rounds.
    pub fn capacity_fingerprint(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.pairs.capacity(),
            self.pairs_tmp.capacity(),
            self.recs.capacity(),
            self.recs_tmp.capacity(),
            self.aux.capacity(),
        )
    }
}

/// Stable sort of the records of `bytes` by key through `scratch`, picking
/// the kernel automatically ([`Kernel::Auto`]).
pub fn sort_records(fmt: RecordFormat, bytes: &mut [u8], scratch: &mut SortScratch) {
    sort_records_using(fmt, bytes, scratch, Kernel::Auto)
}

/// Stable sort with an explicit kernel choice — benches and the
/// byte-identity proptests pin a kernel; production paths use
/// [`sort_records`].
pub fn sort_records_using(
    fmt: RecordFormat,
    bytes: &mut [u8],
    scratch: &mut SortScratch,
    kernel: Kernel,
) {
    let n = fmt.count(bytes);
    if n <= 1 {
        return;
    }
    assert!(n - 1 <= u32::MAX as usize, "record index must fit in u32");
    let use_radix = match kernel {
        Kernel::Radix => true,
        Kernel::Comparison => false,
        Kernel::Auto => n >= RADIX_MIN_RECORDS,
    };
    if use_radix {
        // The key histograms are built while the items are, fusing what
        // would be a second full scan into the (memory-bound) build loop.
        let mut counts = [[0u32; RADIX]; DIGITS];
        if fmt.record_bytes == 16 {
            // A 16-byte record is one `(key, payload)` register pair:
            // radix-sort the records themselves (radix is stable, so the
            // payload rides along in original order) and skip the
            // permutation gather — its scattered reads cost as much as a
            // whole radix pass on permutation-hostile hosts.
            scratch.recs.clear();
            scratch.recs.extend(bytes.chunks_exact(16).map(|r| {
                let key = fmt.key(r);
                count_digits(key, &mut counts);
                let payload = u64::from_le_bytes(r[8..16].try_into().expect("payload"));
                (key, payload)
            }));
            radix_sort_items(
                &mut scratch.recs,
                &mut scratch.recs_tmp,
                &counts,
                scratch.counters.as_ref(),
            );
            for (r, &(key, payload)) in bytes.chunks_exact_mut(16).zip(scratch.recs.iter()) {
                fmt.set_key(r, key);
                r[8..16].copy_from_slice(&payload.to_le_bytes());
            }
        } else {
            scratch.pairs.clear();
            scratch
                .pairs
                .extend(fmt.records(bytes).enumerate().map(|(i, r)| {
                    let key = fmt.key(r);
                    count_digits(key, &mut counts);
                    (key, i as u32)
                }));
            radix_sort_items(
                &mut scratch.pairs,
                &mut scratch.pairs_tmp,
                &counts,
                scratch.counters.as_ref(),
            );
            apply_permutation(fmt, bytes, scratch);
        }
        if let Some(c) = &scratch.counters {
            c.radix_sorts.inc();
        }
    } else {
        scratch.pairs.clear();
        scratch.pairs.extend(
            fmt.records(bytes)
                .enumerate()
                .map(|(i, r)| (fmt.key(r), i as u32)),
        );
        // Stable by construction: the original index breaks ties.
        scratch.pairs.sort_unstable();
        if let Some(c) = &scratch.counters {
            c.comparison_sorts.inc();
        }
        apply_permutation(fmt, bytes, scratch);
    }
}

/// Bump all eight per-digit histograms for one key.
#[inline]
fn count_digits(key: u64, counts: &mut [[u32; RADIX]; DIGITS]) {
    let mut x = key;
    for row in counts.iter_mut() {
        row[(x & 0xFF) as usize] += 1;
        x >>= 8;
    }
}

/// A fixed-size element the radix passes can scatter: the `(key, index)`
/// permutation pair or the `(key, payload)` whole 16-byte record.
trait RadixItem: Copy + Default {
    /// Bucket sizes below this use [`RadixItem::stable_sort_small`]
    /// instead of per-bucket LSD passes: tiny buckets don't amortize the
    /// histogram scans.
    const SMALL_MAX: usize;

    /// The sort key.
    fn key(self) -> u64;

    /// Sort a small bucket from `src` into `dst` (equal-length scratch
    /// slices) in **stable-by-key** order without allocating.  Each impl
    /// must reproduce exactly the order the radix passes would produce.
    fn stable_sort_small(src: &mut [Self], dst: &mut [Self]);
}

impl RadixItem for (u64, u32) {
    const SMALL_MAX: usize = 256;

    fn key(self) -> u64 {
        self.0
    }

    fn stable_sort_small(src: &mut [Self], dst: &mut [Self]) {
        // The original index breaks ties, so the unstable tuple sort is
        // the stable-by-key order.
        src.sort_unstable();
        dst.copy_from_slice(src);
    }
}

impl RadixItem for (u64, u64) {
    // The merge fallback is n·log n, so it can carry buckets well past
    // where a quadratic fallback would: per-bucket LSD only pays off once
    // its fixed histogram cost amortizes over a few thousand records.
    const SMALL_MAX: usize = 2048;

    fn key(self) -> u64 {
        self.0
    }

    fn stable_sort_small(src: &mut [Self], dst: &mut [Self]) {
        // The second field is record payload, not a tiebreaker: equal keys
        // must keep their input order, so sort by key alone with a stable
        // bottom-up merge ping-ponging between the two scratch slices.
        let n = src.len();
        const BASE: usize = 16;
        let mut start = 0;
        while start < n {
            let end = (start + BASE).min(n);
            // Stable insertion sort of the base span (shift only while
            // strictly greater).
            let span = &mut src[start..end];
            for i in 1..span.len() {
                let mut j = i;
                while j > 0 && span[j - 1].0 > span[j].0 {
                    span.swap(j - 1, j);
                    j -= 1;
                }
            }
            start = end;
        }
        let mut width = BASE;
        let mut in_src = true;
        while width < n {
            let (from, to): (&[Self], &mut [Self]) = if in_src {
                (&*src, &mut *dst)
            } else {
                (&*dst, &mut *src)
            };
            merge_width_pass(from, to, width);
            in_src = !in_src;
            width *= 2;
        }
        if in_src {
            dst.copy_from_slice(src);
        }
    }
}

/// One bottom-up merge round: merge each adjacent pair of sorted
/// `width`-item spans of `from` into `to`, stably (left span wins ties).
fn merge_width_pass<T: RadixItem>(from: &[T], to: &mut [T], width: usize) {
    let n = from.len();
    let mut base = 0;
    while base < n {
        let mid = (base + width).min(n);
        let end = (base + 2 * width).min(n);
        let (mut i, mut j, mut o) = (base, mid, base);
        while i < mid && j < end {
            if from[i].key() <= from[j].key() {
                to[o] = from[i];
                i += 1;
            } else {
                to[o] = from[j];
                j += 1;
            }
            o += 1;
        }
        to[o..o + (mid - i)].copy_from_slice(&from[i..mid]);
        let o = o + (mid - i);
        to[o..o + (end - j)].copy_from_slice(&from[j..end]);
        base = end;
    }
}

/// Radix sort of `items` by key.  Stable: every scatter is a counting
/// sort that preserves scan order, and the small-bucket fallback is
/// required to reproduce the stable-by-key order — so the result is
/// byte-identical to the comparison kernel.
///
/// The pass structure is cache-aware.  Inputs that fit in cache
/// ([`FLAT_LSD_MAX_BYTES`]) take the classic flat LSD sweep — one stable
/// counting-sort scatter per live digit, ping-ponging between the two
/// buffers — because in-cache scatters are cheap.  Beyond that a flat
/// sweep streams the whole array through DRAM once per digit, and on
/// scattered-write-hostile hosts each pass costs nearly as much as the
/// entire comparison sort.  So for large inputs:
///
/// 1. the caller supplies all eight byte histograms (built while the
///    items were, fused into that scan); digits where every key shares the
///    byte are **degenerate** (the pass would be the identity) and are
///    skipped (counted in `kernel/radix_passes_skipped`);
/// 2. a single **MSD scatter** on the most-significant live digit
///    partitions the pairs into up to 256 contiguous buckets — the only
///    pass that touches the full array;
/// 3. each bucket (n/256 pairs in expectation, cache-resident for the
///    multi-megarecord rounds the sorts feed) is finished **in cache**:
///    LSD counting-sort passes over the remaining live digits, ping-ponging
///    between the two scratch buffers' bucket slices, with a stable
///    fallback for small buckets.
fn radix_sort_items<T: RadixItem>(
    items: &mut Vec<T>,
    tmp: &mut Vec<T>,
    counts: &[[u32; RADIX]; DIGITS],
    counters: Option<&KernelCounters>,
) {
    let n = items.len();
    let mut live = [0usize; DIGITS];
    let mut live_n = 0usize;
    for (digit, row) in counts.iter().enumerate() {
        if !row.iter().any(|&c| c as usize == n) {
            live[live_n] = digit;
            live_n += 1;
        }
    }
    if live_n < DIGITS {
        if let Some(c) = counters {
            c.passes_skipped.add((DIGITS - live_n) as u64);
        }
    }
    if live_n == 0 {
        // All keys equal: the original (stable) order is already sorted.
        return;
    }
    tmp.clear();
    tmp.resize(n, T::default());

    // Cache-resident inputs take a flat LSD sweep: every scatter lands in
    // cache, where it beats both the comparison sort and the MSD hybrid's
    // per-bucket bookkeeping.
    if n * std::mem::size_of::<T>() <= FLAT_LSD_MAX_BYTES {
        for &digit in &live[..live_n] {
            let mut pos = [0u32; RADIX];
            let mut sum = 0u32;
            for (p, &c) in pos.iter_mut().zip(counts[digit].iter()) {
                *p = sum;
                sum += c;
            }
            let shift = 8 * digit;
            for &item in items.iter() {
                let b = ((item.key() >> shift) & 0xFF) as usize;
                tmp[pos[b] as usize] = item;
                pos[b] += 1;
            }
            std::mem::swap(items, tmp);
        }
        return;
    }

    // MSD scatter on the most-significant live digit.  Digits above it are
    // constant across all keys, so this partitions by the true high-order
    // key bits; scan order keeps it stable.
    let msd = live[live_n - 1];
    let mut pos = [0u32; RADIX];
    let mut sum = 0u32;
    for (p, &c) in pos.iter_mut().zip(counts[msd].iter()) {
        *p = sum;
        sum += c;
    }
    let shift = 8 * msd;
    for &item in items.iter() {
        let b = ((item.key() >> shift) & 0xFF) as usize;
        tmp[pos[b] as usize] = item;
        pos[b] += 1;
    }
    // `pos[b]` is now the end of bucket `b`.

    // Finish each bucket in cache over the remaining live digits.
    let low_digits = &live[..live_n - 1];
    let mut lo = 0usize;
    for &end in pos.iter() {
        let hi = end as usize;
        sort_bucket(&mut tmp[lo..hi], &mut items[lo..hi], low_digits);
        lo = hi;
    }
}

/// Sort one MSD bucket from `src` into `dst` (equal slices of the two
/// scratch buffers) by the given low digits, stably.  LSD counting-sort
/// passes ping-pong between the two slices; digits degenerate *within this
/// bucket* are skipped, and small buckets fall back to the item's stable
/// small sort.
fn sort_bucket<T: RadixItem>(src: &mut [T], dst: &mut [T], low_digits: &[usize]) {
    let len = src.len();
    if len <= 1 || low_digits.is_empty() {
        // No live digits below the MSD means every key in this bucket is
        // equal: the scan order is already the stable order.
        dst.copy_from_slice(src);
        return;
    }
    if len < T::SMALL_MAX {
        T::stable_sort_small(src, dst);
        return;
    }
    // Per-bucket histograms for the live low digits in one scan.
    let mut rows = [[0u32; RADIX]; DIGITS];
    for item in src.iter() {
        let key = item.key();
        for &digit in low_digits {
            rows[digit][((key >> (8 * digit)) & 0xFF) as usize] += 1;
        }
    }
    let mut cur_in_src = true;
    for &digit in low_digits {
        let row = &rows[digit];
        if row.iter().any(|&c| c as usize == len) {
            continue; // degenerate within this bucket
        }
        let mut pos = [0u32; RADIX];
        let mut sum = 0u32;
        for (p, &c) in pos.iter_mut().zip(row.iter()) {
            *p = sum;
            sum += c;
        }
        let shift = 8 * digit;
        let (from, to): (&[T], &mut [T]) = if cur_in_src {
            (&*src, &mut *dst)
        } else {
            (&*dst, &mut *src)
        };
        for &item in from.iter() {
            let b = ((item.key() >> shift) & 0xFF) as usize;
            to[pos[b] as usize] = item;
            pos[b] += 1;
        }
        cur_in_src = !cur_in_src;
    }
    if cur_in_src {
        dst.copy_from_slice(src);
    }
}

/// Apply the sorted permutation: gather records into `scratch.aux` in
/// order, then copy back (FG's auxiliary-buffer pattern).  REC16 and REC64
/// go through fixed-size gathers.
fn apply_permutation(fmt: RecordFormat, bytes: &mut [u8], scratch: &mut SortScratch) {
    let rb = fmt.record_bytes;
    if scratch.aux.len() < bytes.len() {
        scratch.aux.resize(bytes.len(), 0);
    }
    let aux = &mut scratch.aux[..bytes.len()];
    match rb {
        16 => gather::<16>(bytes, aux, &scratch.pairs),
        64 => gather::<64>(bytes, aux, &scratch.pairs),
        _ => {
            for (dst, &(_, src)) in scratch.pairs.iter().enumerate() {
                let s = src as usize * rb;
                aux[dst * rb..(dst + 1) * rb].copy_from_slice(&bytes[s..s + rb]);
            }
        }
    }
    bytes.copy_from_slice(aux);
}

/// Fixed-size gather: an `RB`-byte `copy_from_slice` lowers to
/// straight-line vector moves instead of a variable-length `memcpy` call
/// per record.
fn gather<const RB: usize>(src: &[u8], dst: &mut [u8], order: &[(u64, u32)]) {
    for (out, &(_, si)) in dst.chunks_exact_mut(RB).zip(order) {
        let s = si as usize * RB;
        let rec: &[u8; RB] = src[s..s + RB].try_into().expect("record bounds");
        out.copy_from_slice(rec);
    }
}

/// Number of leading records of sorted `data` whose key satisfies the
/// monotone predicate `pred` (true for a prefix of the run, false after).
/// Gallops — probes 1, 2, 4, … records ahead, then binary-searches the
/// last doubling interval — so a run of `m` records costs `O(log m)` key
/// loads instead of `m`.
pub fn run_len(fmt: RecordFormat, data: &[u8], pred: impl Fn(u64) -> bool) -> usize {
    let rb = fmt.record_bytes;
    let n = data.len() / rb;
    let ok = |i: usize| pred(fmt.key(&data[i * rb..]));
    if n == 0 || !ok(0) {
        return 0;
    }
    let mut last_true = 0usize;
    let mut step = 1usize;
    while last_true + step < n && ok(last_true + step) {
        last_true += step;
        step *= 2;
    }
    // First false index lies in (last_true, min(last_true + step, n)].
    let mut lo = last_true + 1;
    let mut hi = (last_true + step).min(n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if ok(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: RecordFormat = RecordFormat::REC16;

    fn make_records(fmt: RecordFormat, keys: &[u64]) -> Vec<u8> {
        let rb = fmt.record_bytes;
        let mut out = vec![0u8; keys.len() * rb];
        for (i, &k) in keys.iter().enumerate() {
            fmt.set_key(&mut out[i * rb..(i + 1) * rb], k);
            // Distinct payload so stability is observable.
            out[i * rb + 8] = i as u8;
        }
        out
    }

    /// The pre-kernel `sort_bytes` body: the byte-identity oracle.
    fn comparison_oracle(fmt: RecordFormat, bytes: &mut [u8]) {
        let rb = fmt.record_bytes;
        let mut order: Vec<(u64, u32)> = fmt
            .records(bytes)
            .enumerate()
            .map(|(i, r)| (fmt.key(r), i as u32))
            .collect();
        order.sort_unstable();
        let mut aux = vec![0u8; bytes.len()];
        for (dst, (_, src)) in order.iter().enumerate() {
            let s = *src as usize * rb;
            aux[dst * rb..(dst + 1) * rb].copy_from_slice(&bytes[s..s + rb]);
        }
        bytes.copy_from_slice(&aux);
    }

    #[test]
    fn radix_matches_oracle_across_sizes_and_formats() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for fmt in [RecordFormat::REC16, RecordFormat::REC64] {
            for n in [0usize, 1, 2, 3, 255, 256, 257, 1000] {
                // Narrow key range forces duplicates (stability) and
                // degenerate high digits (skipping).
                let keys: Vec<u64> = (0..n).map(|_| rng.random_range(0..50)).collect();
                let mut got = make_records(fmt, &keys);
                let mut want = got.clone();
                let mut scratch = SortScratch::new();
                sort_records_using(fmt, &mut got, &mut scratch, Kernel::Radix);
                comparison_oracle(fmt, &mut want);
                assert_eq!(got, want, "fmt {fmt:?} n {n}");
            }
        }
    }

    #[test]
    fn radix_handles_full_width_keys() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let keys: Vec<u64> = (0..2000).map(|_| rng.random()).collect();
        let mut got = make_records(F, &keys);
        let mut want = got.clone();
        let mut scratch = SortScratch::new();
        sort_records_using(F, &mut got, &mut scratch, Kernel::Radix);
        comparison_oracle(F, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn degenerate_digits_are_skipped() {
        let reg = MetricsRegistry::new();
        let mut scratch = SortScratch::with_registry(&reg);
        // Keys below 256: digits 1..8 are all-zero and must be skipped.
        let keys: Vec<u64> = (0..600).map(|i| (599 - i) % 250).collect();
        let mut bytes = make_records(F, &keys);
        sort_records_using(F, &mut bytes, &mut scratch, Kernel::Radix);
        assert!(F.is_sorted(&bytes));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("kernel/radix_sorts"), Some(1));
        assert_eq!(snap.counter("kernel/radix_passes_skipped"), Some(7));
    }

    #[test]
    fn auto_threshold_picks_kernels() {
        let reg = MetricsRegistry::new();
        let mut scratch = SortScratch::with_registry(&reg);
        let small: Vec<u64> = (0..(RADIX_MIN_RECORDS as u64 - 1)).rev().collect();
        let big: Vec<u64> = (0..(RADIX_MIN_RECORDS as u64)).rev().collect();
        let mut b1 = make_records(F, &small);
        let mut b2 = make_records(F, &big);
        sort_records(F, &mut b1, &mut scratch);
        sort_records(F, &mut b2, &mut scratch);
        assert!(F.is_sorted(&b1) && F.is_sorted(&b2));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("kernel/comparison_sorts"), Some(1));
        assert_eq!(snap.counter("kernel/radix_sorts"), Some(1));
    }

    #[test]
    fn scratch_allocates_nothing_once_warm() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let keys: Vec<u64> = (0..4096).map(|_| rng.random()).collect();
        let pristine = make_records(F, &keys);
        let mut scratch = SortScratch::new();
        let mut bytes = pristine.clone();
        sort_records(F, &mut bytes, &mut scratch);
        let warm = scratch.capacity_fingerprint();
        for _ in 0..5 {
            bytes.copy_from_slice(&pristine);
            sort_records(F, &mut bytes, &mut scratch);
            assert_eq!(scratch.capacity_fingerprint(), warm, "scratch reallocated");
        }
    }

    #[test]
    fn run_len_gallops_correctly() {
        let keys: Vec<u64> = (0..100).map(|i| i / 3).collect();
        let bytes = make_records(F, &keys);
        for bound in [0u64, 1, 5, 32, 33, 100] {
            let want = keys.iter().take_while(|&&k| k < bound).count();
            assert_eq!(run_len(F, &bytes, |k| k < bound), want, "bound {bound}");
        }
        assert_eq!(run_len(F, &bytes, |_| true), keys.len());
        assert_eq!(run_len(F, &bytes, |_| false), 0);
        assert_eq!(run_len(F, &[], |_| true), 0);
    }
}
