//! Lock-free metrics: counters, gauges, and log2-bucketed histograms.
//!
//! Every *update* path is a handful of relaxed atomic operations — safe to
//! call from pipeline hot paths, communicator sends, and simulated disk
//! arms without perturbing the timings those layers exist to measure.
//! Only *registration* (interning a metric name in a [`MetricsRegistry`])
//! takes a lock, and callers are expected to register once and cache the
//! returned `Arc`.
//!
//! The same three primitive types serve all layers: `fg-core` records
//! queue depths and stage events, `fg-cluster` records per-peer traffic
//! and collective latencies, and `fg-pdm` records I/O latencies.  A
//! [`MetricsSnapshot`] taken at the end of a run travels inside a
//! [`Report`](crate::Report) and renders/exports with it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

/// Number of log2 buckets in a [`Histogram`]: bucket `i` holds values
/// whose bit length is `i` (value 0 in bucket 0, 1 in bucket 1, 2–3 in
/// bucket 2, ...), clamped to the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A sampled instantaneous value that also remembers its peak.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Record the current value (and fold it into the peak).
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Most recently set value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Largest value ever set.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Snapshot value and peak.
    pub fn snapshot(&self) -> GaugeSnapshot {
        GaugeSnapshot {
            value: self.get(),
            peak: self.peak(),
        }
    }
}

/// Point-in-time copy of a [`Gauge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Most recently set value.
    pub value: u64,
    /// Largest value ever set.
    pub peak: u64,
}

/// A log2-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// sizes in bytes, ...).  Recording is a few relaxed atomic RMWs; there is
/// no allocation and no lock.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Index of the bucket holding `v`: its bit length, clamped to the table.
fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Point-in-time copy of all buckets and aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Per-bucket sample counts; bucket `i` holds values of bit length `i`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile `p` in `[0, 1]`: the inclusive upper bound of
    /// the bucket containing the p-th sample (so an over-estimate by at
    /// most 2x).  Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

/// A named collection of [`Counter`]s, [`Gauge`]s, and [`Histogram`]s.
///
/// Lookup-or-register takes a short write lock; updates through the
/// returned `Arc`s are lock-free.  Names are free-form; by convention the
/// layers here use `/`-separated paths (`core/...`, `comm/...`,
/// `disk/...`) which [`Report::render_dashboard`](crate::Report::render_dashboard)
/// groups into sections.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or register the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or register the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or register the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a whole [`MetricsRegistry`], sorted by name.
/// Travels inside a [`Report`](crate::Report) and merges across layers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, count)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, snapshot)` pairs, sorted by name.
    pub gauges: Vec<(String, GaugeSnapshot)>,
    /// `(name, snapshot)` pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// True when no metrics were recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self`: entries with new names are appended,
    /// entries with an existing name replace it.  Keeps name-sorted order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        fn merge_into<T: Clone>(dst: &mut Vec<(String, T)>, src: &[(String, T)]) {
            for (name, v) in src {
                match dst.binary_search_by(|(n, _)| n.as_str().cmp(name.as_str())) {
                    Ok(i) => dst[i].1 = v.clone(),
                    Err(i) => dst.insert(i, (name.clone(), v.clone())),
                }
            }
        }
        merge_into(&mut self.counters, &other.counters);
        merge_into(&mut self.gauges, &other.gauges);
        merge_into(&mut self.histograms, &other.histograms);
    }

    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Snapshot of the histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Snapshot of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<GaugeSnapshot> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (version 0.0.4), the payload a `GET /metrics` scrape expects.
    ///
    /// Metric names are `/`-separated paths internally
    /// (`core/queue_depth/p[0]`); Prometheus names admit only
    /// `[a-zA-Z0-9_:]`, so every name is prefixed with `fg_` and each run
    /// of disallowed characters collapses to a single `_` (see METRICS.md
    /// for the authoritative mapping).  Counters export as-is, gauges
    /// export their value plus a `<name>_peak` companion, and log2
    /// histograms export cumulative `_bucket{le="…"}` lines (the inclusive
    /// upper bound of each occupied bucket) with `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, g) in &self.gauges {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.value));
            out.push_str(&format!(
                "# TYPE {name}_peak gauge\n{name}_peak {}\n",
                g.peak
            ));
        }
        for (name, h) in &self.histograms {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            let last_occupied = h.buckets.iter().rposition(|&c| c > 0);
            for (i, &c) in h.buckets.iter().enumerate() {
                // Everything past the last occupied bucket is covered by
                // the mandatory `+Inf` line; the final table bucket has no
                // finite upper bound anyway.
                if last_occupied.is_none_or(|last| i > last) || bucket_upper(i) == u64::MAX {
                    break;
                }
                cumulative += c;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    bucket_upper(i)
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }
}

/// Map a free-form FG metric name onto the Prometheus grammar: `fg_`
/// prefix, runs of characters outside `[a-zA-Z0-9_:]` collapse to `_`,
/// and no trailing `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("fg_");
    let mut last_underscore = false;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == ':' {
            out.push(c);
            last_underscore = false;
        } else if !last_underscore {
            out.push('_');
            last_underscore = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(g.peak(), 7);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);

        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_001_006);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[10], 1); // 1000
        assert_eq!(s.buckets[20], 1); // 1_000_000
    }

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.percentile(0.5);
        let p99 = s.percentile(0.99);
        // Log2 buckets over-estimate by at most 2x.
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        assert!((990..=1000).contains(&p99), "p99 {p99}"); // capped at max
        assert_eq!(s.percentile(1.0), 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_interns_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert!(Arc::ptr_eq(&a, &b));
        a.inc();
        assert_eq!(r.counter("x").get(), 1);

        r.gauge("g").set(9);
        r.histogram("h").record(5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x"), Some(1));
        assert_eq!(snap.gauge("g").unwrap().value, 9);
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert!(snap.counter("missing").is_none());
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("hits");
                    let h = r.histogram("lat");
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("hits"), Some(80_000));
        assert_eq!(snap.histogram("lat").unwrap().count, 80_000);
    }

    #[test]
    fn snapshot_merge_replaces_and_appends() {
        let a = MetricsRegistry::new();
        a.counter("one").add(1);
        a.counter("two").add(2);
        let b = MetricsRegistry::new();
        b.counter("two").add(20);
        b.counter("three").add(3);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("one"), Some(1));
        assert_eq!(snap.counter("two"), Some(20));
        assert_eq!(snap.counter("three"), Some(3));
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["one", "three", "two"]); // still sorted
    }
}
