//! Closed-loop autotuning: a controller that turns live telemetry into
//! actuation.
//!
//! FG's thesis is that the framework — not the programmer — should own
//! overlap and buffer management.  The post-run analyzer
//! ([`diagnose`](crate::analyze::diagnose)) can already *name* the limiting
//! stage and *recommend* `workers(n)` or a deeper I/O read-ahead, but only
//! after the run ends.  This module closes the loop while the program is
//! still running:
//!
//! 1. an internal [`Sampler`] snapshots the metrics registry every few
//!    milliseconds;
//! 2. a decide thread runs [`diagnose_window`] over a sliding window of
//!    those snapshots;
//! 3. a small policy maps the windowed verdict onto three actuators —
//!    farm width ([`ReplicaGroup::set_active`]), pipeline buffer-pool size
//!    ([`PoolControl`]), and I/O read-ahead depth ([`DepthActuator`]).
//!
//! Actuation safety comes from three rules, all enforced here or in the
//! actuators themselves:
//!
//! * **round boundaries only** — a farm width change parks replicas at the
//!   admission gate *between* rounds (never mid-buffer), pool growth
//!   injects fresh buffers at the source's recycle loop, and depth changes
//!   only affect read-ahead issued for subsequent reads;
//! * **hysteresis** — a proposal must repeat for `confirm` consecutive
//!   decision ticks before it is applied, and after every actuation the
//!   controller holds off for `cooldown` ticks so the measured effect is
//!   attributable;
//! * **min/max clamps** — farms move within `1..=declared replicas`, pools
//!   within their declared `min..=max`, depth within
//!   `1..=`[`ControllerCfg::max_io_depth`].
//!
//! Every decision is itself first-class observability: it lands in a
//! bounded audit log ([`ControllerLog`], exported in the JSON report),
//! bumps `controller/*` metrics, records a
//! [`TraceKind::Actuate`](crate::trace::TraceKind::Actuate) span in the
//! flight recorder, and refreshes the JSON document served by
//! `GET /control` on the telemetry server.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::analyze::{diagnose_window, StageVerdict, WindowDiagnosis, PINNED_FRAC, PREFETCH_WARN};
use crate::json::{obj, Json};
use crate::metrics::MetricsRegistry;
use crate::stage::ReplicaGroup;
use crate::telemetry::{Sampler, SamplerCfg};
use crate::trace::{SpanRing, TraceKind, IO_PIPELINE};

/// A resizable read-ahead depth the controller can actuate — implemented
/// by `fg_pdm::IoScheduler`, and by anything else that prefetches.
pub trait DepthActuator: Send + Sync {
    /// Metrics label identifying this actuator (`"io"`, `"d3"`, …).
    fn label(&self) -> String;
    /// The current read-ahead depth.
    fn io_depth(&self) -> usize;
    /// Request a new depth; returns the depth actually applied after the
    /// implementation's own clamping.
    fn set_io_depth(&self, depth: usize) -> usize;
}

/// Live handle on one pipeline's buffer pool.
///
/// The pool itself is the recycle loop: buffers circulate source → stages
/// → sink → recycle queue → source.  Growing the pool means the source
/// injects a fresh buffer instead of waiting on the recycle queue;
/// shrinking means it drops a recycled buffer instead of reusing it.  Both
/// happen at the source's round boundary, so the pool resizes without ever
/// touching a buffer a stage holds.
#[derive(Debug)]
pub struct PoolControl {
    pipeline: String,
    recycle_name: String,
    min: usize,
    max: usize,
    target: AtomicUsize,
    size: AtomicUsize,
}

impl PoolControl {
    pub(crate) fn new(
        pipeline: impl Into<String>,
        recycle_name: impl Into<String>,
        initial: usize,
        min: usize,
        max: usize,
    ) -> Arc<PoolControl> {
        let min = min.max(1);
        let max = max.max(min);
        Arc::new(PoolControl {
            pipeline: pipeline.into(),
            recycle_name: recycle_name.into(),
            min,
            max,
            target: AtomicUsize::new(initial.clamp(min, max)),
            size: AtomicUsize::new(initial.clamp(min, max)),
        })
    }

    /// The pipeline this pool belongs to.
    pub fn pipeline(&self) -> &str {
        &self.pipeline
    }

    /// Name of the pipeline's recycle queue (`recycle/g0`, …), which is
    /// what the windowed diagnosis observes running dry.
    pub fn recycle_name(&self) -> &str {
        &self.recycle_name
    }

    /// The size the controller is steering toward.
    pub fn target(&self) -> usize {
        self.target.load(Ordering::SeqCst)
    }

    /// Buffers currently in circulation.
    pub fn size(&self) -> usize {
        self.size.load(Ordering::SeqCst)
    }

    /// The declared ceiling (queue capacities are pre-sized to admit it).
    pub fn max(&self) -> usize {
        self.max
    }

    /// Steer toward `n` buffers, clamped to the declared `min..=max`;
    /// returns the clamped target.  The source converges on it over its
    /// next few round boundaries.
    pub fn set_target(&self, n: usize) -> usize {
        let n = n.clamp(self.min, self.max);
        self.target.store(n, Ordering::SeqCst);
        n
    }

    /// Source-side: claim permission to inject one fresh buffer.
    pub(crate) fn try_grow(&self) -> bool {
        self.size
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| {
                (s < self.target()).then_some(s + 1)
            })
            .is_ok()
    }

    /// Source-side: claim permission to drop one recycled buffer.
    pub(crate) fn try_shrink(&self) -> bool {
        self.size
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| {
                (s > self.target()).then_some(s - 1)
            })
            .is_ok()
    }
}

/// Shared slot holding the controller's current state as a JSON document —
/// what `GET /control` on the telemetry server returns.  The controller
/// refreshes it every decision tick.
#[derive(Default)]
pub struct ControlStatus {
    doc: Mutex<Option<String>>,
}

impl std::fmt::Debug for ControlStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlStatus").finish_non_exhaustive()
    }
}

impl ControlStatus {
    /// The current state document, or a stub when no controller has
    /// published yet.
    pub fn get_json(&self) -> String {
        self.doc
            .lock()
            .clone()
            .unwrap_or_else(|| "{\"active\":false}".to_string())
    }

    fn set(&self, doc: String) {
        *self.doc.lock() = Some(doc);
    }
}

/// Controller tuning knobs.  The defaults favor fast convergence on
/// second-scale passes; longer passes can afford longer windows.
#[derive(Debug, Clone)]
pub struct ControllerCfg {
    /// Telemetry sampling interval of the controller's internal
    /// [`Sampler`].
    pub sample_interval: Duration,
    /// Interval between decision ticks.
    pub decide_interval: Duration,
    /// Sliding-window length, in samples, fed to
    /// [`diagnose_window`](crate::analyze::diagnose_window).
    pub window: usize,
    /// A proposal must repeat for this many consecutive ticks before it is
    /// applied (hysteresis against verdict flicker).
    pub confirm: usize,
    /// Decision ticks to hold off after an actuation, so its measured
    /// effect is attributable before the next change.
    pub cooldown: usize,
    /// Ceiling for the I/O read-ahead depth actuator.
    pub max_io_depth: usize,
    /// Maximum retained decisions in the audit log (oldest evicted first).
    pub log_capacity: usize,
    /// Override every farm's starting width (clamped to each farm's
    /// declared replica count).  `None` starts farms at full width.
    pub initial_workers: Option<usize>,
    /// Live state slot shared with a telemetry server's `GET /control`.
    pub status: Arc<ControlStatus>,
}

impl Default for ControllerCfg {
    fn default() -> ControllerCfg {
        ControllerCfg {
            sample_interval: Duration::from_millis(10),
            decide_interval: Duration::from_millis(50),
            window: 8,
            confirm: 2,
            cooldown: 2,
            max_io_depth: 16,
            log_capacity: 256,
            initial_workers: None,
            status: Arc::new(ControlStatus::default()),
        }
    }
}

/// One audited controller decision: what was observed, what was done, and
/// what happened next.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Monotonic decision number (also carried in the `round` field of the
    /// actuation's trace span).
    pub seq: u64,
    /// Time since the controller started when the actuation fired.
    pub at: Duration,
    /// Span of the observation window behind the verdict.
    pub window: Duration,
    /// The windowed verdict that motivated the action.
    pub verdict: String,
    /// The actuation applied.
    pub action: String,
    /// Window throughput (buffers/s through the fastest stage) at decision
    /// time.
    pub throughput_before: f64,
    /// Window throughput once the cooldown elapsed — the measured effect.
    /// `None` if the run ended first.
    pub throughput_after: Option<f64>,
}

impl Decision {
    fn to_json_value(&self) -> Json {
        obj(vec![
            ("seq", Json::from(self.seq)),
            ("at_ns", Json::from(self.at.as_nanos() as u64)),
            ("window_ns", Json::from(self.window.as_nanos() as u64)),
            ("verdict", Json::from(self.verdict.as_str())),
            ("action", Json::from(self.action.as_str())),
            ("throughput_before", Json::from(self.throughput_before)),
            (
                "throughput_after",
                match self.throughput_after {
                    Some(t) => Json::from(t),
                    None => Json::Null,
                },
            ),
        ])
    }

    fn from_json_value(j: &Json) -> Result<Decision, String> {
        let num = |key: &str| {
            j.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric decision field {key:?}"))
        };
        let text = |key: &str| {
            j.get(key)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| format!("missing or non-string decision field {key:?}"))
        };
        Ok(Decision {
            seq: num("seq")? as u64,
            at: Duration::from_nanos(num("at_ns")? as u64),
            window: Duration::from_nanos(num("window_ns")? as u64),
            verdict: text("verdict")?,
            action: text("action")?,
            throughput_before: num("throughput_before")?,
            throughput_after: j.get("throughput_after").and_then(Json::as_f64),
        })
    }
}

/// The controller's bounded decision audit log, exported as the
/// `"controller"` member of the JSON report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControllerLog {
    /// Audited decisions, oldest first (bounded by
    /// [`ControllerCfg::log_capacity`]).
    pub decisions: Vec<Decision>,
    /// Decision ticks taken.
    pub ticks: u64,
    /// Actuations applied (≤ `decisions.len()` only if the log evicted).
    pub actuations: u64,
}

impl ControllerLog {
    /// The log as a [`Json`] value.
    pub fn to_json_value(&self) -> Json {
        obj(vec![
            ("ticks", Json::from(self.ticks)),
            ("actuations", Json::from(self.actuations)),
            (
                "decisions",
                Json::Arr(self.decisions.iter().map(|d| d.to_json_value()).collect()),
            ),
        ])
    }

    /// Parse a log written by [`ControllerLog::to_json_value`].
    pub fn from_json_value(j: &Json) -> Result<ControllerLog, String> {
        Ok(ControllerLog {
            ticks: j.get("ticks").and_then(Json::as_u64).unwrap_or(0),
            actuations: j.get("actuations").and_then(Json::as_u64).unwrap_or(0),
            decisions: j
                .get("decisions")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(Decision::from_json_value)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

/// The live handles a controller drives, collected by the planner.
#[derive(Default)]
pub(crate) struct Actuators {
    pub(crate) farms: Vec<Arc<ReplicaGroup>>,
    pub(crate) pools: Vec<Arc<PoolControl>>,
    pub(crate) depths: Vec<Arc<dyn DepthActuator>>,
}

/// What the policy wants to do next tick, compared across ticks for
/// hysteresis.
#[derive(Debug, Clone, PartialEq)]
enum Action {
    GrowFarm(usize),
    ShrinkFarm(usize),
    RaiseDepth(usize),
    GrowPool(usize),
}

struct Shared {
    stop: Mutex<bool>,
    cv: Condvar,
    log: Mutex<ControllerLog>,
}

/// The running control loop.  [`Controller::start`] spawns it;
/// [`Controller::stop`] joins it and yields the audit log.
pub struct Controller {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl Controller {
    /// Apply `initial_workers`, start the internal sampler, and spawn the
    /// decide thread.
    pub(crate) fn start(
        registry: Arc<MetricsRegistry>,
        cfg: ControllerCfg,
        actuators: Actuators,
        ring: Option<Arc<SpanRing>>,
    ) -> Controller {
        if let Some(w) = cfg.initial_workers {
            for farm in &actuators.farms {
                farm.set_active(w);
            }
        }
        let shared = Arc::new(Shared {
            stop: Mutex::new(false),
            cv: Condvar::new(),
            log: Mutex::new(ControllerLog::default()),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("fg/controller".into())
            .spawn(move || {
                let _reg = crate::profile::register_current_thread("controller");
                decide_loop(registry, cfg, actuators, ring, thread_shared)
            })
            .expect("spawn controller thread");
        Controller {
            shared,
            handle: Some(handle),
        }
    }

    /// Stop the decide thread and return the decision audit log.
    pub fn stop(mut self) -> ControllerLog {
        {
            let mut stop = self.shared.stop.lock();
            *stop = true;
            self.shared.cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        std::mem::take(&mut *self.shared.log.lock())
    }
}

fn decide_loop(
    registry: Arc<MetricsRegistry>,
    cfg: ControllerCfg,
    actuators: Actuators,
    ring: Option<Arc<SpanRing>>,
    shared: Arc<Shared>,
) {
    let sampler = Sampler::start(
        Arc::clone(&registry),
        SamplerCfg {
            interval: cfg.sample_interval,
            // Retain enough history that a late-read window is never
            // starved by eviction between decision ticks.
            capacity: cfg.window.max(2) * 4,
        },
    );
    let started = std::time::Instant::now();
    let ticks = registry.counter("controller/ticks");
    let actuations = registry.counter("controller/actuations");

    let mut last_proposal: Option<Action> = None;
    let mut streak = 0usize;
    let mut cooldown = 0usize;
    // Seq of the decision whose measured effect is still pending.
    let mut pending: Option<u64> = None;
    let mut seq = 0u64;

    loop {
        {
            let mut stop = shared.stop.lock();
            if !*stop {
                shared.cv.wait_for(&mut stop, cfg.decide_interval);
            }
            if *stop {
                break;
            }
        }
        ticks.inc();
        shared.log.lock().ticks += 1;

        let series = sampler.series();
        let window_start = series.len().saturating_sub(cfg.window.max(2));
        let diag = diagnose_window(&series[window_start..]);
        publish_gauges(&registry, &actuators);
        let Some(diag) = diag else {
            publish_status(&cfg, &actuators, &shared, None);
            continue;
        };

        // Close out the previous actuation's effect once its cooldown has
        // elapsed, so "after" reflects the post-change steady state.
        if cooldown == 0 {
            if let Some(p) = pending.take() {
                let mut log = shared.log.lock();
                if let Some(d) = log.decisions.iter_mut().find(|d| d.seq == p) {
                    d.throughput_after = Some(diag.throughput);
                }
            }
        }

        let proposal = propose(&diag, &actuators, &cfg);
        if proposal == last_proposal && proposal.is_some() {
            streak += 1;
        } else {
            streak = 1;
            last_proposal = proposal.clone();
        }

        if cooldown > 0 {
            cooldown -= 1;
        } else if let Some(action) = proposal {
            if streak >= cfg.confirm.max(1) {
                let t0 = std::time::Instant::now();
                let description = apply(&action, &actuators, &cfg);
                seq += 1;
                actuations.inc();
                if let Some(ring) = &ring {
                    ring.record(
                        TraceKind::Actuate,
                        IO_PIPELINE,
                        seq,
                        0,
                        ring.ns_of(t0),
                        ring.now_ns(),
                    );
                }
                let decision = Decision {
                    seq,
                    at: started.elapsed(),
                    window: diag.window,
                    verdict: describe_verdict(&diag),
                    action: description,
                    throughput_before: diag.throughput,
                    throughput_after: None,
                };
                {
                    let mut log = shared.log.lock();
                    log.actuations += 1;
                    log.decisions.push(decision);
                    let cap = cfg.log_capacity.max(1);
                    if log.decisions.len() > cap {
                        let excess = log.decisions.len() - cap;
                        log.decisions.drain(..excess);
                    }
                }
                pending = Some(seq);
                cooldown = cfg.cooldown;
                streak = 0;
                last_proposal = None;
                publish_gauges(&registry, &actuators);
            }
        }
        publish_status(&cfg, &actuators, &shared, Some(&diag));
    }
    sampler.stop();
}

/// Map the windowed verdict onto at most one actuation, in priority
/// order: widen the limiting farm, deepen starving read-ahead, grow a dry
/// buffer pool, then narrow an idle farm.
fn propose(diag: &WindowDiagnosis, actuators: &Actuators, cfg: &ControllerCfg) -> Option<Action> {
    // (1) The limiting stage is a farm running below its declared width:
    // more workers attack the bottleneck directly.
    if let Some(lim) = &diag.limiting {
        if let Some((i, farm)) = actuators
            .farms
            .iter()
            .enumerate()
            .find(|(_, f)| f.name() == lim)
        {
            let busy = diag
                .stages
                .iter()
                .find(|s| &s.name == lim)
                .is_some_and(|s| s.verdict == StageVerdict::Busy);
            if busy && farm.active() < farm.replica_count() {
                return Some(Action::GrowFarm(i));
            }
        }
    }
    // (2) Reads are going cold to the backend: deepen the read-ahead.
    if let Some(p) = diag.prefetch {
        if p.hits + p.misses >= 8 && p.hit_rate() < PREFETCH_WARN {
            if let Some((i, _)) = actuators
                .depths
                .iter()
                .enumerate()
                .find(|(_, d)| d.io_depth() < cfg.max_io_depth)
            {
                return Some(Action::RaiseDepth(i));
            }
        }
    }
    // (3) A recycle pool runs dry while the pipeline still has headroom:
    // more buffers in flight smooth the overlap.
    for (i, pool) in actuators.pools.iter().enumerate() {
        let dry = diag
            .queue_findings
            .iter()
            .find(|q| q.name == pool.recycle_name())
            .is_some_and(|q| q.empty_frac > PINNED_FRAC);
        if dry && pool.target() < pool.max() {
            return Some(Action::GrowPool(i));
        }
    }
    // (4) A farm is mostly starved: its upstream cannot feed the current
    // width, so shed a worker (never below one).
    for (i, farm) in actuators.farms.iter().enumerate() {
        let starved = diag
            .stages
            .iter()
            .find(|s| s.name == farm.name())
            .is_some_and(|s| s.verdict == StageVerdict::Starved && s.starved_frac > PINNED_FRAC);
        if starved && farm.active() > 1 {
            return Some(Action::ShrinkFarm(i));
        }
    }
    None
}

/// Apply one action and return its audit-log description.
fn apply(action: &Action, actuators: &Actuators, cfg: &ControllerCfg) -> String {
    match *action {
        Action::GrowFarm(i) => {
            let farm = &actuators.farms[i];
            let before = farm.active();
            let after = farm.set_active(before + 1);
            format!("grow farm `{}` {before} -> {after}", farm.name())
        }
        Action::ShrinkFarm(i) => {
            let farm = &actuators.farms[i];
            let before = farm.active();
            let after = farm.set_active(before.saturating_sub(1));
            format!("shrink farm `{}` {before} -> {after}", farm.name())
        }
        Action::RaiseDepth(i) => {
            let d = &actuators.depths[i];
            let before = d.io_depth();
            let after = d.set_io_depth((before * 2).min(cfg.max_io_depth.max(1)));
            format!("raise io depth `{}` {before} -> {after}", d.label())
        }
        Action::GrowPool(i) => {
            let pool = &actuators.pools[i];
            let before = pool.target();
            let after = pool.set_target(before + 1);
            format!("grow pool `{}` {before} -> {after}", pool.pipeline())
        }
    }
}

/// One-line summary of the window behind a decision.
fn describe_verdict(diag: &WindowDiagnosis) -> String {
    match &diag.limiting {
        Some(lim) => {
            let d = diag.stages.iter().find(|s| &s.name == lim);
            match d {
                Some(d) => format!(
                    "limiting `{lim}` {} {:.0}% (workers {})",
                    d.verdict.label(),
                    match d.verdict {
                        StageVerdict::Busy => d.busy_frac,
                        StageVerdict::Starved => d.starved_frac,
                        StageVerdict::Backpressured => d.backpressured_frac,
                    } * 100.0,
                    d.workers
                ),
                None => format!("limiting `{lim}`"),
            }
        }
        None => "no limiting stage in window".to_string(),
    }
}

fn publish_gauges(registry: &MetricsRegistry, actuators: &Actuators) {
    for farm in &actuators.farms {
        registry
            .gauge(&format!("controller/active_workers/{}", farm.name()))
            .set(farm.active() as u64);
    }
    for pool in &actuators.pools {
        registry
            .gauge(&format!("controller/pool_target/{}", pool.pipeline()))
            .set(pool.target() as u64);
    }
    for d in &actuators.depths {
        registry
            .gauge(&format!("controller/io_depth/{}", d.label()))
            .set(d.io_depth() as u64);
    }
}

fn publish_status(
    cfg: &ControllerCfg,
    actuators: &Actuators,
    shared: &Shared,
    diag: Option<&WindowDiagnosis>,
) {
    let log = shared.log.lock();
    let recent = log.decisions.iter().rev().take(8).rev();
    let doc = obj(vec![
        ("active", Json::Bool(true)),
        ("ticks", Json::from(log.ticks)),
        ("actuations", Json::from(log.actuations)),
        (
            "limiting",
            match diag.and_then(|d| d.limiting.clone()) {
                Some(l) => Json::from(l),
                None => Json::Null,
            },
        ),
        (
            "throughput",
            match diag {
                Some(d) => Json::from(d.throughput),
                None => Json::Null,
            },
        ),
        (
            "farms",
            Json::Arr(
                actuators
                    .farms
                    .iter()
                    .map(|f| {
                        obj(vec![
                            ("name", Json::from(f.name())),
                            ("active", Json::from(f.active())),
                            ("replicas", Json::from(f.replica_count())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "pools",
            Json::Arr(
                actuators
                    .pools
                    .iter()
                    .map(|p| {
                        obj(vec![
                            ("pipeline", Json::from(p.pipeline())),
                            ("target", Json::from(p.target())),
                            ("size", Json::from(p.size())),
                            ("max", Json::from(p.max())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "io",
            Json::Arr(
                actuators
                    .depths
                    .iter()
                    .map(|d| {
                        obj(vec![
                            ("label", Json::from(d.label())),
                            ("depth", Json::from(d.io_depth())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "recent_decisions",
            Json::Arr(recent.map(|d| d.to_json_value()).collect()),
        ),
    ]);
    drop(log);
    cfg.status.set(doc.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_control_clamps_and_converges() {
        let pool = PoolControl::new("p", "recycle/g0", 3, 1, 6);
        assert_eq!(pool.target(), 3);
        assert_eq!(pool.size(), 3);
        // Clamped to the declared ceiling / floor.
        assert_eq!(pool.set_target(99), 6);
        assert_eq!(pool.set_target(0), 1);
        // Source-side convergence: shrink three times, then refuse.
        assert!(pool.try_shrink());
        assert!(pool.try_shrink());
        assert_eq!(pool.size(), 1);
        assert!(!pool.try_shrink());
        // And grow back up toward a raised target.
        pool.set_target(3);
        assert!(pool.try_grow());
        assert!(pool.try_grow());
        assert!(!pool.try_grow());
        assert_eq!(pool.size(), 3);
    }

    #[test]
    fn decision_log_round_trips_through_json() {
        let log = ControllerLog {
            ticks: 40,
            actuations: 2,
            decisions: vec![
                Decision {
                    seq: 1,
                    at: Duration::from_millis(120),
                    window: Duration::from_millis(80),
                    verdict: "limiting `work` busy 93% (workers 1)".into(),
                    action: "grow farm `work` 1 -> 2".into(),
                    throughput_before: 110.5,
                    throughput_after: Some(180.25),
                },
                Decision {
                    seq: 2,
                    at: Duration::from_millis(400),
                    window: Duration::from_millis(80),
                    verdict: "limiting `read` busy 88% (workers 1)".into(),
                    action: "raise io depth `io` 1 -> 2".into(),
                    throughput_before: 180.25,
                    throughput_after: None,
                },
            ],
        };
        let text = log.to_json_value().to_string();
        let back = ControllerLog::from_json_value(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn controller_grows_a_busy_underwidth_farm() {
        let registry = Arc::new(MetricsRegistry::new());
        let farm = ReplicaGroup::new("work", 4, true);
        farm.set_active(1);
        let cfg = ControllerCfg {
            sample_interval: Duration::from_millis(1),
            decide_interval: Duration::from_millis(5),
            confirm: 1,
            cooldown: 0,
            ..ControllerCfg::default()
        };
        let status = Arc::clone(&cfg.status);
        // Drive the live counters by hand: replica 0 is flat-out busy.
        let busy = registry.counter("core/stage_busy_ns/work#0");
        let rounds = registry.counter("core/stage_rounds/work#0");
        registry.counter("core/stage_busy_ns/work#1");
        let controller = Controller::start(
            Arc::clone(&registry),
            cfg,
            Actuators {
                farms: vec![Arc::clone(&farm)],
                ..Actuators::default()
            },
            None,
        );
        let t0 = std::time::Instant::now();
        while farm.active() < 2 && t0.elapsed() < Duration::from_secs(5) {
            busy.add(1_000_000);
            rounds.inc();
            std::thread::sleep(Duration::from_millis(1));
        }
        let log = controller.stop();
        assert!(
            farm.active() >= 2,
            "controller never grew the farm: {log:?}"
        );
        assert!(log.actuations >= 1);
        let d = &log.decisions[0];
        assert!(d.action.contains("grow farm `work`"), "{d:?}");
        assert!(d.verdict.contains("limiting `work`"), "{d:?}");
        assert!(d.window > Duration::ZERO);
        // The live status document reflects the actuation.
        let doc = status.get_json();
        assert!(doc.contains("\"actuations\""), "{doc}");
        assert!(registry.snapshot().counter("controller/ticks").unwrap() >= 1);
        assert!(
            registry
                .snapshot()
                .gauge("controller/active_workers/work")
                .unwrap()
                .value
                >= 2
        );
    }

    #[test]
    fn controller_deepens_cold_read_ahead() {
        struct FakeDepth(AtomicUsize);
        impl DepthActuator for FakeDepth {
            fn label(&self) -> String {
                "io".into()
            }
            fn io_depth(&self) -> usize {
                self.0.load(Ordering::SeqCst)
            }
            fn set_io_depth(&self, depth: usize) -> usize {
                self.0.store(depth, Ordering::SeqCst);
                depth
            }
        }
        let registry = Arc::new(MetricsRegistry::new());
        let depth = Arc::new(FakeDepth(AtomicUsize::new(1)));
        let cfg = ControllerCfg {
            sample_interval: Duration::from_millis(1),
            decide_interval: Duration::from_millis(5),
            confirm: 1,
            cooldown: 0,
            ..ControllerCfg::default()
        };
        let misses = registry.counter("disk/0/prefetch_miss");
        let busy = registry.counter("core/stage_busy_ns/read");
        let controller = Controller::start(
            Arc::clone(&registry),
            cfg,
            Actuators {
                depths: vec![Arc::clone(&depth) as Arc<dyn DepthActuator>],
                ..Actuators::default()
            },
            None,
        );
        let t0 = std::time::Instant::now();
        while depth.io_depth() < 2 && t0.elapsed() < Duration::from_secs(5) {
            misses.add(8);
            busy.add(1_000_000);
            std::thread::sleep(Duration::from_millis(1));
        }
        let log = controller.stop();
        assert!(depth.io_depth() >= 2, "depth never raised: {log:?}");
        assert!(log
            .decisions
            .iter()
            .any(|d| d.action.contains("raise io depth")));
    }
}
