//! Dependency-free JSON tree, writer, and parser, plus machine-readable
//! export of [`Report`]s.
//!
//! The environment this crate builds in has no network access, so the usual
//! serde derive route is unavailable; the format needed here (reports and
//! Chrome trace events) is small enough that a hand-rolled tree + recursive
//! descent parser is simpler than a code-generation dependency anyway.
//!
//! Two exports matter:
//!
//! * [`Report::to_json`] / [`Report::from_json`] — lossless round-trip of a
//!   run report for archiving and offline comparison (`experiments
//!   --json-out`);
//! * [`Report::to_chrome_trace`] — the Chrome trace-event format, loadable
//!   in `chrome://tracing` or <https://ui.perfetto.dev>: one track (tid) per
//!   stage thread, with `busy` / `starved` / `backpressured` slices derived
//!   from the blocked-interval spans recorded under
//!   [`Program::enable_tracing`](crate::Program::enable_tracing).

use std::fmt;
use std::time::Duration;

use crate::metrics::{GaugeSnapshot, HistogramSnapshot, MetricsSnapshot};
use crate::stats::{QueueDepth, Report, Span, SpanKind, StageStats};

/// A JSON value.  Object members keep insertion order (the writer emits them
/// as given; the parser preserves document order).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.  Integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an ordered list of `(key, value)` members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if numeric and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's members, if an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Parse a JSON document.  Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null"); // JSON has no NaN/inf
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.into())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    char::from_u32(0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00))
                                } else {
                                    // High half paired with a non-low-half
                                    // escape: reject instead of combining.
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape at byte {}", self.pos)
                            })?);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slices at
                    // char boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

/// Build an object from `(key, value)` pairs; keeps the given order.
pub(crate) fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn span_to_json(s: &Span) -> Json {
    obj(vec![
        (
            "kind",
            Json::from(match s.kind {
                SpanKind::Accept => "accept",
                SpanKind::Convey => "convey",
            }),
        ),
        ("start_ns", Json::from(s.start_ns)),
        ("end_ns", Json::from(s.end_ns)),
    ])
}

fn span_from_json(j: &Json) -> Result<Span, String> {
    let kind = match j.get("kind").and_then(Json::as_str) {
        Some("accept") => SpanKind::Accept,
        Some("convey") => SpanKind::Convey,
        other => return Err(format!("bad span kind {other:?}")),
    };
    Ok(Span {
        kind,
        start_ns: field_u64(j, "start_ns")?,
        end_ns: field_u64(j, "end_ns")?,
    })
}

fn field_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn field_str(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn stage_to_json(s: &StageStats) -> Json {
    let mut members = vec![
        ("name", Json::from(s.name.as_str())),
        ("wall_ns", Json::from(s.wall.as_nanos() as u64)),
        (
            "blocked_accept_ns",
            Json::from(s.blocked_accept.as_nanos() as u64),
        ),
        (
            "blocked_convey_ns",
            Json::from(s.blocked_convey.as_nanos() as u64),
        ),
        ("parked_ns", Json::from(s.parked.as_nanos() as u64)),
        ("buffers_in", Json::from(s.buffers_in)),
        ("buffers_out", Json::from(s.buffers_out)),
        (
            "spans",
            Json::Arr(s.spans.iter().map(span_to_json).collect()),
        ),
    ];
    // Written only for pinned stages, so unpinned artifacts are unchanged.
    if let Some(core) = s.core {
        members.push(("core", Json::from(core as u64)));
    }
    obj(members)
}

fn stage_from_json(j: &Json) -> Result<StageStats, String> {
    let spans = j
        .get("spans")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(span_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(StageStats {
        name: field_str(j, "name")?,
        // Absent for unpinned runs and in artifacts written before pinning.
        core: j.get("core").and_then(Json::as_u64).map(|c| c as usize),
        wall: Duration::from_nanos(field_u64(j, "wall_ns")?),
        blocked_accept: Duration::from_nanos(field_u64(j, "blocked_accept_ns")?),
        blocked_convey: Duration::from_nanos(field_u64(j, "blocked_convey_ns")?),
        // Absent in artifacts written before controller-driven farm resizing.
        parked: Duration::from_nanos(j.get("parked_ns").and_then(Json::as_u64).unwrap_or(0)),
        buffers_in: field_u64(j, "buffers_in")?,
        buffers_out: field_u64(j, "buffers_out")?,
        spans,
    })
}

fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    obj(vec![
        (
            "counters",
            Json::Obj(
                m.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                m.gauges
                    .iter()
                    .map(|(k, g)| {
                        (
                            k.clone(),
                            obj(vec![
                                ("value", Json::from(g.value)),
                                ("peak", Json::from(g.peak)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Obj(
                m.histograms
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            obj(vec![
                                ("count", Json::from(h.count)),
                                ("sum", Json::from(h.sum)),
                                ("min", Json::from(h.min)),
                                ("max", Json::from(h.max)),
                                (
                                    "buckets",
                                    Json::Arr(h.buckets.iter().map(|&b| Json::from(b)).collect()),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

fn metrics_from_json(j: &Json) -> Result<MetricsSnapshot, String> {
    let mut m = MetricsSnapshot::default();
    for (k, v) in j.get("counters").and_then(Json::as_obj).unwrap_or(&[]) {
        let v = v.as_u64().ok_or_else(|| format!("bad counter {k:?}"))?;
        m.counters.push((k.clone(), v));
    }
    for (k, v) in j.get("gauges").and_then(Json::as_obj).unwrap_or(&[]) {
        m.gauges.push((
            k.clone(),
            GaugeSnapshot {
                value: field_u64(v, "value")?,
                peak: field_u64(v, "peak")?,
            },
        ));
    }
    for (k, v) in j.get("histograms").and_then(Json::as_obj).unwrap_or(&[]) {
        m.histograms.push((
            k.clone(),
            HistogramSnapshot {
                count: field_u64(v, "count")?,
                sum: field_u64(v, "sum")?,
                min: field_u64(v, "min")?,
                max: field_u64(v, "max")?,
                buckets: v
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|b| b.as_u64().ok_or_else(|| format!("bad bucket in {k:?}")))
                    .collect::<Result<Vec<_>, _>>()?,
            },
        ));
    }
    Ok(m)
}

impl MetricsSnapshot {
    /// The snapshot as a [`Json`] value (counters, gauges with peaks, and
    /// full histogram buckets) — the `"metrics"` member of
    /// [`Report::to_json_value`], also used standalone by the telemetry
    /// series export ([`crate::telemetry::series_to_json`]).
    pub fn to_json_value(&self) -> Json {
        metrics_to_json(self)
    }

    /// Parse a snapshot written by [`MetricsSnapshot::to_json_value`].
    pub fn from_json_value(j: &Json) -> Result<MetricsSnapshot, String> {
        metrics_from_json(j)
    }
}

impl Report {
    /// Serialize the report as a self-contained JSON document.  The inverse
    /// is [`Report::from_json`]; `from_json(to_json()) == self` for any
    /// report whose integer fields fit in 53 bits (true for any run shorter
    /// than ~104 days).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// The report as a [`Json`] value — use this to embed a report inside a
    /// larger document; [`Report::to_json`] is this rendered to text.
    pub fn to_json_value(&self) -> Json {
        let mut doc = obj(vec![
            ("wall_ns", Json::from(self.wall.as_nanos() as u64)),
            ("threads_spawned", Json::from(self.threads_spawned)),
            (
                "stages",
                Json::Arr(self.stages.iter().map(stage_to_json).collect()),
            ),
            (
                "queues",
                Json::Arr(
                    self.queues
                        .iter()
                        .map(|q| {
                            obj(vec![
                                ("name", Json::from(q.name.as_str())),
                                ("capacity", Json::from(q.capacity)),
                                ("max_depth", Json::from(q.max_depth)),
                                ("spsc", Json::Bool(q.spsc)),
                                ("flavor", Json::from(q.flavor.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "pipelines",
                Json::Arr(
                    self.pipelines
                        .iter()
                        .map(|p| {
                            obj(vec![
                                ("name", Json::from(p.name.as_str())),
                                (
                                    "stages",
                                    Json::Arr(
                                        p.stages.iter().map(|s| Json::from(s.as_str())).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("metrics", metrics_to_json(&self.metrics)),
        ]);
        if let Some(log) = &self.controller {
            if let Json::Obj(members) = &mut doc {
                members.push(("controller".into(), log.to_json_value()));
            }
        }
        if let Some(resources) = &self.resources {
            if let Json::Obj(members) = &mut doc {
                members.push(("resources".into(), resources.to_json_value()));
            }
        }
        doc
    }

    /// Parse a report previously produced by [`Report::to_json`].
    pub fn from_json(text: &str) -> Result<Report, String> {
        let j = Json::parse(text)?;
        let stages = j
            .get("stages")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(stage_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let queues = j
            .get("queues")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|q| {
                Ok(QueueDepth {
                    name: field_str(q, "name")?,
                    capacity: field_u64(q, "capacity")? as usize,
                    max_depth: field_u64(q, "max_depth")? as usize,
                    // Absent in artifacts written before the SPSC flavor.
                    spsc: matches!(q.get("spsc"), Some(Json::Bool(true))),
                    // Absent in artifacts written before the lock-free MPMC
                    // flavor; derive from the spsc bool (MPMC then meant
                    // the mutex deque).
                    flavor: match q.get("flavor").and_then(Json::as_str) {
                        Some(f) => f.to_string(),
                        None if matches!(q.get("spsc"), Some(Json::Bool(true))) => "spsc".into(),
                        None => "mutex".into(),
                    },
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        // Absent in artifacts written before topology was recorded.
        let pipelines = j
            .get("pipelines")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|p| {
                Ok(crate::stats::PipelineShape {
                    name: field_str(p, "name")?,
                    stages: p
                        .get("stages")
                        .and_then(Json::as_arr)
                        .unwrap_or(&[])
                        .iter()
                        .map(|s| {
                            s.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "pipeline stage name must be a string".to_string())
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let metrics = match j.get("metrics") {
            Some(m) => metrics_from_json(m)?,
            None => MetricsSnapshot::default(),
        };
        // Absent for runs without an attached controller.
        let controller = match j.get("controller") {
            Some(c) => Some(crate::controller::ControllerLog::from_json_value(c)?),
            None => None,
        };
        // Absent for runs that did not sample resources.
        let resources = match j.get("resources") {
            Some(r) => Some(crate::profile::ResourceReport::from_json_value(r)?),
            None => None,
        };
        Ok(Report {
            wall: Duration::from_nanos(field_u64(&j, "wall_ns")?),
            threads_spawned: field_u64(&j, "threads_spawned")? as usize,
            stages,
            queues,
            pipelines,
            metrics,
            controller,
            resources,
        })
    }

    /// Export the run as a Chrome trace-event JSON array, loadable in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    ///
    /// Each stage thread becomes one track (`tid`), named via an `"M"`
    /// metadata event.  The stage's timeline is tiled with non-overlapping
    /// `"X"` (complete) slices: `starved` for waits inside accept,
    /// `backpressured` for waits inside convey, and `busy` for the gaps in
    /// between.  Timestamps are microseconds since program start.  Stages
    /// recorded without spans (tracing disabled, sources/sinks) get a single
    /// `untraced` slice spanning their wall time.
    pub fn to_chrome_trace(&self) -> String {
        const PID: u64 = 1;
        let us = |ns: u64| Json::Num(ns as f64 / 1_000.0);
        let mut events = Vec::new();
        for (tid, s) in self.stages.iter().enumerate() {
            let tid = tid as u64 + 1;
            events.push(obj(vec![
                ("ph", Json::from("M")),
                ("name", Json::from("thread_name")),
                ("pid", Json::from(PID)),
                ("tid", Json::from(tid)),
                ("args", obj(vec![("name", Json::from(s.name.as_str()))])),
            ]));
            let slice = |name: &str, start_ns: u64, end_ns: u64| {
                obj(vec![
                    ("ph", Json::from("X")),
                    ("name", Json::from(name)),
                    ("cat", Json::from("stage")),
                    ("pid", Json::from(PID)),
                    ("tid", Json::from(tid)),
                    ("ts", us(start_ns)),
                    ("dur", us(end_ns.saturating_sub(start_ns))),
                ])
            };
            let wall_ns = s.wall.as_nanos() as u64;
            if s.spans.is_empty() {
                if wall_ns > 0 {
                    events.push(slice("untraced", 0, wall_ns));
                }
                continue;
            }
            let mut spans = s.spans.clone();
            spans.sort_by_key(|sp| sp.start_ns);
            let mut cursor = 0u64;
            for sp in &spans {
                let start = sp.start_ns.max(cursor);
                let end = sp.end_ns.max(start);
                if start > cursor {
                    events.push(slice("busy", cursor, start));
                }
                if end > start {
                    let name = match sp.kind {
                        SpanKind::Accept => "starved",
                        SpanKind::Convey => "backpressured",
                    };
                    events.push(slice(name, start, end));
                }
                cursor = end;
            }
            if wall_ns > cursor {
                events.push(slice("busy", cursor, wall_ns));
            }
        }
        Json::Arr(events).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars_and_nesting() {
        let j = Json::parse(r#"{"a": [1, 2.5, -3], "b": {"c": null, "d": true}, "e": "x\ny"}"#)
            .unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(j.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(j.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn write_parse_round_trip_with_escapes() {
        let doc = obj(vec![
            ("quote\"backslash\\", Json::from("tab\there\nnewline")),
            ("unicode", Json::from("héllo ☃")),
            ("nums", Json::Arr(vec![Json::from(0u64), Json::Num(1.25)])),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parse_unicode_escapes() {
        let j = Json::parse(r#""Aé😀""#).unwrap();
        assert_eq!(j.as_str(), Some("Aé😀"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integers_written_without_decimal_point() {
        assert_eq!(Json::from(42u64).to_string(), "42");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }
}
