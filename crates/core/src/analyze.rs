//! Bottleneck analysis: turn a [`Report`] and a telemetry time series into
//! a [`Diagnosis`] that names the limiting stage and says what to do about
//! it.
//!
//! FG's premise is that a pipeline runs as fast as its slowest stage while
//! everything else overlaps (§II); the tuning loop the paper implies —
//! find the limiting stage, then widen a queue, split the stage, or grow a
//! buffer pool — is manual.  [`diagnose`] automates the diagnosis half:
//!
//! * each stage's wall time splits into **busy** / **starved** (blocked in
//!   accept) / **backpressured** (blocked in convey) fractions, with the
//!   dominant one as its [`StageVerdict`] — refined by topology: a starved
//!   stage *upstream* of the limiting stage is reported as backpressured,
//!   because its missing buffers are the ones the bottleneck has yet to
//!   push around the recycle loop;
//! * the stage with the most busy time is the **limiting stage**: its busy
//!   time lower-bounds the program's wall time no matter how the other
//!   stages are tuned;
//! * **overlap efficiency** compares that bound against the achieved wall
//!   time ([`Report::overlap_efficiency`]) — near 1.0 means the pipeline
//!   already hides every other stage behind the bottleneck;
//! * queue-depth gauge series from a
//!   [`Sampler`](crate::telemetry::Sampler) show which queues sat pinned
//!   at capacity (a backpressure boundary) and which buffer pools ran dry
//!   (an under-provisioned pipeline), findings a single end-of-run
//!   high-water mark cannot distinguish from a momentary spike.

use std::time::Duration;

use crate::stats::Report;
use crate::telemetry::TimestampedSnapshot;

/// A stage's dominant state over the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageVerdict {
    /// Mostly doing its own work — a bottleneck candidate.
    Busy,
    /// Mostly blocked waiting to accept: its upstream cannot keep up.
    Starved,
    /// Mostly blocked by the stages after it — waiting to convey into a
    /// full queue, or (upstream of the limiting stage) waiting to accept a
    /// buffer the bottleneck has yet to release back into the recycle loop.
    Backpressured,
}

impl StageVerdict {
    /// Lowercase label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            StageVerdict::Busy => "busy",
            StageVerdict::Starved => "starved",
            StageVerdict::Backpressured => "backpressured",
        }
    }
}

/// Wall-time attribution for one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDiagnosis {
    /// Stage name from the [`Report`].  Replicated stages appear once
    /// under their base name, with the per-replica rows (`name#0`,
    /// `name#1`, …) rolled up.
    pub name: String,
    /// The stage's wall time (the slowest replica's, for a farm).
    pub wall: Duration,
    /// Fraction of wall spent doing its own work.  For a farm, fractions
    /// are taken against the summed replica wall, so two busy workers next
    /// to two idle ones read as 50% busy / 50% starved rather than four
    /// rows at the extremes.
    pub busy_frac: f64,
    /// Fraction of wall blocked in accept.
    pub starved_frac: f64,
    /// Fraction of wall blocked in convey.
    pub backpressured_frac: f64,
    /// The dominant of the three fractions.
    pub verdict: StageVerdict,
    /// Replica count: 1 for ordinary stages, `n` for a stage declared with
    /// `workers(n)` / `add_replicated_stage`.
    pub workers: usize,
}

/// Aggregate read-ahead effectiveness across every scheduled disk, folded
/// from the `disk/*/prefetch_hit` and `disk/*/prefetch_miss` counters in
/// the report's metrics snapshot.  Absent when no disk ran behind an I/O
/// scheduler (no such counters, or no reads at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchFinding {
    /// Reads served from a completed prefetch.
    pub hits: u64,
    /// Reads that went to the backend synchronously.
    pub misses: u64,
}

impl PrefetchFinding {
    /// Fraction of reads served from the prefetcher.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A queue-level finding from the depth-gauge time series.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueFinding {
    /// Queue name as wired (`p[1]`, `recycle/g0`, …).
    pub name: String,
    /// The queue's capacity.
    pub capacity: usize,
    /// Fraction of telemetry samples with the queue at capacity.
    pub full_frac: f64,
    /// Fraction of telemetry samples with the queue empty.
    pub empty_frac: f64,
}

/// Contention profile of one queue, folded from the
/// `core/queue_cas_retries/*`, `core/queue_*_parks/*`, and
/// `core/queue_items/*` counters the queue layer publishes.  Separates
/// "the queue itself is the fight" (CAS retries on the lock-free ring,
/// park storms) from "a stage is slow" (which shows up as depth pinning,
/// not retries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentionFinding {
    /// Queue name as wired (`csort/in`, `recycle/g0`, …).
    pub name: String,
    /// Failed position CASes on the lock-free ring.
    pub cas_retries: u64,
    /// Producer condvar waits.
    pub push_parks: u64,
    /// Consumer condvar waits.
    pub pop_parks: u64,
    /// Slow-path notifications issued for advertised sleepers.
    pub wakes: u64,
    /// Successful pushes — the per-item denominator.
    pub items: u64,
}

impl ContentionFinding {
    /// CAS retries per successfully pushed item; zero when nothing flowed.
    pub fn retries_per_item(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.cas_retries as f64 / self.items as f64
        }
    }
}

/// Why [`diagnose`] raised a [`ResourceFinding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceFindingKind {
    /// Peak memory came within [`MEMORY_BOUND_FRAC`] of the configured
    /// ledger budget — the run is memory-bound, not compute-bound.
    MemoryBound,
    /// A stage allocated heap memory at a high rate in its steady state
    /// (tracked by [`FgAlloc`](crate::alloc::FgAlloc) when installed).
    AllocChurn,
    /// A thread was involuntarily descheduled at a high rate — more
    /// runnable threads than cores to run them on.
    Oversubscribed,
}

/// A resource-level observation from the run's [`ResourceReport`]
/// (per-thread CPU attribution, the tracking allocator, and the memory
/// ledger): memory pressure, allocation churn, or core oversubscription.
///
/// [`ResourceReport`]: crate::profile::ResourceReport
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceFinding {
    /// What class of problem this is.
    pub kind: ResourceFindingKind,
    /// What the finding is about: a stage name, a thread name, or
    /// `"process"` for whole-process findings.
    pub subject: String,
    /// Human-readable evidence with the numbers that triggered it.
    pub detail: String,
}

/// What [`diagnose`] concluded about a run.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// Per-stage attribution, in the report's stage order.
    pub stages: Vec<StageDiagnosis>,
    /// Name of the limiting stage (most busy time among real pipeline
    /// stages), when any stage did work.
    pub limiting: Option<String>,
    /// [`Report::overlap_factor`]: total busy across stages over wall.
    pub overlap_factor: f64,
    /// [`Report::overlap_efficiency`]: the limiting stage's busy time over
    /// wall — 1.0 means the run was exactly as fast as its bottleneck.
    pub overlap_efficiency: f64,
    /// Queues that spent most of the sampled run pinned full or empty.
    pub queue_findings: Vec<QueueFinding>,
    /// Queues whose producers/consumers collided hard enough to matter
    /// (CAS-retry rate above [`CONTENTION_WARN`] with meaningful traffic),
    /// sorted by retry rate descending.
    pub contention: Vec<ContentionFinding>,
    /// Read-ahead effectiveness, when any disk ran behind an I/O scheduler.
    pub prefetch: Option<PrefetchFinding>,
    /// Per-round critical-path reconstruction, when flight-recorder logs
    /// were supplied (see [`diagnose_with_trace`]).
    pub critical_path: Option<crate::critical_path::CriticalPath>,
    /// Resource-level findings (memory-bound, allocation churn, core
    /// oversubscription), when the run carried a
    /// [`ResourceReport`](crate::profile::ResourceReport).
    pub resources: Vec<ResourceFinding>,
    /// Human-readable tuning recommendations, most important first.
    pub recommendations: Vec<String>,
}

/// A stage blocked (or busy) for more than this fraction of its wall time
/// is worth a recommendation.
pub(crate) const DOMINANT_FRAC: f64 = 0.5;

/// A queue pinned full/empty in more than this fraction of samples marks a
/// backpressure boundary / dry pool.
pub(crate) const PINNED_FRAC: f64 = 0.5;

/// Below this overlap efficiency the pipeline is leaving the bottleneck
/// idle — time is going somewhere other than the limiting stage.
const EFFICIENCY_WARN: f64 = 0.6;

/// Below this prefetch hit rate the I/O scheduler's read-ahead is not
/// keeping up with the read stream — most reads go cold to the backend.
pub(crate) const PREFETCH_WARN: f64 = 0.5;

/// A lock-free queue averaging more failed CASes than this per pushed item
/// is contended: producers/consumers are fighting over the ring's position
/// words rather than the data being slow to arrive.
pub(crate) const CONTENTION_WARN: f64 = 0.5;

/// Ignore contention on queues that moved fewer items than this — retry
/// rates over a handful of pushes are noise, not a bottleneck.
pub(crate) const CONTENTION_MIN_ITEMS: u64 = 100;

/// Peak memory above this fraction of a configured ledger budget means
/// the run is operating at the edge of its memory allowance: the next
/// buffer-count or record-size bump tips it over.
pub(crate) const MEMORY_BOUND_FRAC: f64 = 0.85;

/// A stage allocating faster than this in its steady state is churning
/// the heap inside the hot loop — the FG discipline is to preallocate
/// buffers up front and reuse scratch space across rounds.
pub(crate) const ALLOC_CHURN_PER_SEC: f64 = 1_000.0;

/// A thread involuntarily descheduled more often than this per second is
/// fighting other runnable threads for a core: the OS is time-slicing
/// where the plan assumed dedicated cores.
pub(crate) const OVERSUBSCRIBED_SWITCH_RATE: f64 = 500.0;

/// The runtime's implicit source/sink threads: real stages for timing
/// purposes, but not candidates for "the limiting stage" (their work is
/// the framework's, not the program's).
fn is_source_or_sink(name: &str) -> bool {
    name.ends_with("/source") || name.ends_with("/sink")
}

/// Metric-name prefix of the live per-stage busy counter (nanoseconds).
pub const STAGE_BUSY_PREFIX: &str = "core/stage_busy_ns/";
/// Metric-name prefix of the live per-stage blocked-accept counter.
pub const STAGE_STARVED_PREFIX: &str = "core/stage_blocked_accept_ns/";
/// Metric-name prefix of the live per-stage blocked-convey counter.
pub const STAGE_BACKPRESSURED_PREFIX: &str = "core/stage_blocked_convey_ns/";
/// Metric-name prefix of the live per-stage buffers-processed counter.
pub const STAGE_ROUNDS_PREFIX: &str = "core/stage_rounds/";
/// Metric-name prefix of the per-queue depth gauges.
pub const QUEUE_DEPTH_PREFIX: &str = "core/queue_depth/";
/// Metric-name prefix of the per-queue capacity gauges (set once at wire
/// time so windowed diagnosis can tell "full" without a [`Report`]).
pub const QUEUE_CAPACITY_PREFIX: &str = "core/queue_capacity/";
/// Metric-name prefix of the per-queue failed-CAS counters (lock-free
/// flavor only; each count is one producer/consumer collision on the
/// ring's position words).
pub const QUEUE_CAS_RETRY_PREFIX: &str = "core/queue_cas_retries/";
/// Metric-name prefix of the per-queue producer condvar-wait counters.
pub const QUEUE_PUSH_PARK_PREFIX: &str = "core/queue_push_parks/";
/// Metric-name prefix of the per-queue consumer condvar-wait counters.
pub const QUEUE_POP_PARK_PREFIX: &str = "core/queue_pop_parks/";
/// Metric-name prefix of the per-queue slow-path wake counters.
pub const QUEUE_WAKE_PREFIX: &str = "core/queue_wakes/";
/// Metric-name prefix of the per-queue successful-push counters — the
/// denominator that turns CAS retries into a per-item collision rate.
pub const QUEUE_ITEMS_PREFIX: &str = "core/queue_items/";

/// One stage's time attribution over some span (a whole run or a sliding
/// window), before fractions and verdicts are derived.  The shared input
/// to the verdict logic used by both [`diagnose`] and [`diagnose_window`].
struct Row {
    name: String,
    wall: Duration,
    busy: Duration,
    starved: Duration,
    backpressured: Duration,
    /// Denominator for the fractions: the summed replica wall for a
    /// farm, the stage's own wall otherwise.
    denom: Duration,
    workers: usize,
}

/// Derive per-stage fractions and verdicts from attribution rows — the
/// verdict core shared by end-of-run and windowed diagnosis.
fn stage_diagnoses(rows: &[Row]) -> Vec<StageDiagnosis> {
    rows.iter()
        .map(|r| {
            let denom = r.denom.as_secs_f64();
            let frac = |d: Duration| {
                if denom == 0.0 {
                    0.0
                } else {
                    (d.as_secs_f64() / denom).clamp(0.0, 1.0)
                }
            };
            let starved_frac = frac(r.starved);
            let backpressured_frac = frac(r.backpressured);
            let busy_frac = frac(r.busy);
            let verdict = if busy_frac >= starved_frac && busy_frac >= backpressured_frac {
                StageVerdict::Busy
            } else if starved_frac >= backpressured_frac {
                StageVerdict::Starved
            } else {
                StageVerdict::Backpressured
            };
            StageDiagnosis {
                name: r.name.clone(),
                wall: r.wall,
                busy_frac,
                starved_frac,
                backpressured_frac,
                verdict,
                workers: r.workers,
            }
        })
        .collect()
}

/// Name the limiting stage among attribution rows.  A farm's workers
/// overlap with each other, so its bound on wall time is the summed busy
/// divided by the worker count, not the sum itself.
fn limiting_stage(rows: &[Row]) -> Option<String> {
    rows.iter()
        .filter(|r| !is_source_or_sink(&r.name))
        .max_by_key(|r| r.busy / r.workers.max(1) as u32)
        .filter(|r| r.busy > Duration::ZERO)
        .map(|r| r.name.clone())
}

/// Attribute each stage's wall time, name the limiting stage, and read
/// backpressure boundaries out of the queue-depth time series.
///
/// `series` may be empty (no sampler attached): stage attribution and the
/// limiting stage still work from the report alone; only the queue
/// findings need the time series (the report's high-water marks cannot
/// tell "pinned at capacity" from "touched capacity once").
pub fn diagnose(report: &Report, series: &[TimestampedSnapshot]) -> Diagnosis {
    // Fold per-replica rows (`base#i`) into one farm row per base.  The
    // base must itself be a stage named in the report's pipeline topology,
    // so a user-chosen stage name that happens to contain `#` is never
    // misread as a replica of something else.
    let topo: std::collections::HashSet<&str> = report
        .pipelines
        .iter()
        .flat_map(|p| p.stages.iter().map(String::as_str))
        .collect();
    fn replica_base<'a>(name: &'a str, topo: &std::collections::HashSet<&str>) -> Option<&'a str> {
        let (base, idx) = name.rsplit_once('#')?;
        (!idx.is_empty() && idx.bytes().all(|b| b.is_ascii_digit()) && topo.contains(base))
            .then_some(base)
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    for s in &report.stages {
        match replica_base(&s.name, &topo) {
            Some(base) => {
                if !seen.insert(base.to_string()) {
                    continue;
                }
                let mut row = Row {
                    name: base.to_string(),
                    wall: Duration::ZERO,
                    busy: Duration::ZERO,
                    starved: Duration::ZERO,
                    backpressured: Duration::ZERO,
                    denom: Duration::ZERO,
                    workers: 0,
                };
                for r in report
                    .stages
                    .iter()
                    .filter(|r| replica_base(&r.name, &topo) == Some(base))
                {
                    row.workers += 1;
                    row.wall = row.wall.max(r.wall);
                    row.busy += r.busy();
                    row.starved += r.blocked_accept;
                    row.backpressured += r.blocked_convey;
                    row.denom += r.wall;
                }
                rows.push(row);
            }
            None => rows.push(Row {
                name: s.name.clone(),
                wall: s.wall,
                busy: s.busy(),
                starved: s.blocked_accept,
                backpressured: s.blocked_convey,
                denom: s.wall,
                workers: 1,
            }),
        }
    }

    let mut stages: Vec<StageDiagnosis> = stage_diagnoses(&rows);
    let limiting = limiting_stage(&rows);

    // A starved stage upstream of the limiting stage in the same chain is
    // effectively backpressured: FG provisions every queue above the buffer
    // pool size, so congestion at the bottleneck never fills a queue — it
    // drains the recycle loop instead, and the shortage surfaces upstream
    // as blocked accepts.  Reattribute those so the verdict names the
    // cause, not the symptom.
    if let Some(lim) = &limiting {
        for chain in &report.pipelines {
            let Some(pos) = chain.stages.iter().position(|s| s == lim) else {
                continue;
            };
            for name in &chain.stages[..pos] {
                if let Some(d) = stages.iter_mut().find(|d| &d.name == name) {
                    if d.verdict == StageVerdict::Starved {
                        d.verdict = StageVerdict::Backpressured;
                    }
                }
            }
        }
    }

    let queue_findings = queue_findings(report, series);
    let contention = contention_findings(report);
    let prefetch = prefetch_finding(report);
    let resources = resource_findings(report);

    let mut recommendations = Vec::new();
    if let Some(name) = &limiting {
        let d = stages
            .iter()
            .find(|d| &d.name == name)
            .expect("limiting stage is in stages");
        // Where the limiting stage physically ran, when the run was pinned
        // — lets the reader connect "this stage bounds the run" with the
        // core layout they asked for.
        let placement = report
            .stage(name)
            .and_then(|s| s.core)
            .map(|c| format!(" (pinned to core {c})"))
            .unwrap_or_default();
        if d.workers > 1 {
            recommendations.push(format!(
                "stage `{name}`{placement} is the limiting stage (busy {:.0}% across its {} workers): \
                 raise its worker count (`workers({})`), split it into substages, or \
                 reduce its per-buffer work",
                d.busy_frac * 100.0,
                d.workers,
                d.workers * 2
            ));
        } else {
            recommendations.push(format!(
                "stage `{name}`{placement} is the limiting stage (busy {:.0}% of its wall time): \
                 its busy time bounds the whole pipeline — farm it across replicas \
                 (`workers(n)`), split it into substages, or reduce its per-buffer work",
                d.busy_frac * 100.0
            ));
        }
    }
    for d in &stages {
        if is_source_or_sink(&d.name) {
            continue;
        }
        if Some(&d.name) == limiting.as_ref() {
            continue;
        }
        if d.backpressured_frac > DOMINANT_FRAC {
            recommendations.push(format!(
                "stage `{}` is backpressured {:.0}% of its wall time — its downstream \
                 cannot keep up; widen the downstream queue or speed up (split) the \
                 stage after it",
                d.name,
                d.backpressured_frac * 100.0
            ));
        } else if d.verdict == StageVerdict::Backpressured && d.starved_frac > DOMINANT_FRAC {
            recommendations.push(format!(
                "stage `{}` is upstream of the limiting stage and blocked {:.0}% of \
                 its wall time waiting for buffers the bottleneck has yet to recycle — \
                 speeding up the limiting stage or adding buffers to the pipeline \
                 would unblock it",
                d.name,
                d.starved_frac * 100.0
            ));
        } else if d.starved_frac > DOMINANT_FRAC {
            recommendations.push(format!(
                "stage `{}` is starved {:.0}% of its wall time — its upstream cannot \
                 keep up; this is expected downstream of the limiting stage",
                d.name,
                d.starved_frac * 100.0
            ));
        }
    }
    for q in &queue_findings {
        if q.full_frac > PINNED_FRAC {
            recommendations.push(format!(
                "queue `{}` sat at capacity ({}) in {:.0}% of samples — a backpressure \
                 boundary; its consumer is the local bottleneck",
                q.name,
                q.capacity,
                q.full_frac * 100.0
            ));
        }
        if q.empty_frac > PINNED_FRAC && q.name.starts_with("recycle/") {
            recommendations.push(format!(
                "recycle queue `{}` was empty in {:.0}% of samples — every buffer was \
                 in flight; the pool may be under-provisioned (add buffers to the \
                 pipeline)",
                q.name,
                q.empty_frac * 100.0
            ));
        }
    }
    for c in &contention {
        let pinned = report.stages.iter().any(|s| s.core.is_some());
        recommendations.push(format!(
            "queue `{}` is contended, not its stages busy: {} CAS retries over {} \
             pushes (~{:.1} per item), {} producer and {} consumer parks — the \
             threads are fighting over the queue itself{}",
            c.name,
            c.cas_retries,
            c.items,
            c.retries_per_item(),
            c.push_parks,
            c.pop_parks,
            if pinned {
                "; the run was already pinned, so reduce the number of threads \
                 sharing this queue or batch more work per buffer"
            } else {
                "; pin stage threads to distinct cores (`--pin` / \
                 `Program::set_pinning`) to stop the cache line ping-ponging"
            }
        ));
    }
    if let Some(p) = &prefetch {
        if p.hit_rate() < PREFETCH_WARN {
            recommendations.push(format!(
                "disk read-ahead hit rate is {:.0}% ({} of {} reads went cold to the \
                 backend): the prefetcher is not staying ahead of the read stream — \
                 raise the I/O scheduler depth (`--io-depth`) or check that reads are \
                 sequential within each file",
                p.hit_rate() * 100.0,
                p.misses,
                p.hits + p.misses
            ));
        }
    }
    for f in &resources {
        match f.kind {
            ResourceFindingKind::MemoryBound => recommendations.push(format!(
                "{} — the run is memory-bound: raise the budget (`--mem-budget`) \
                 or reduce the buffer count / buffer size so the working set fits",
                f.detail
            )),
            ResourceFindingKind::AllocChurn => recommendations.push(format!(
                "{} — the hot loop is churning the heap: preallocate scratch \
                 space once per replica and reuse it across rounds",
                f.detail
            )),
            ResourceFindingKind::Oversubscribed => recommendations.push(format!(
                "{} — more runnable threads than cores: reduce `--workers`, or \
                 pin stages to distinct cores (`--pin` / `Program::set_pinning`) \
                 so the scheduler stops migrating them",
                f.detail
            )),
        }
    }
    let overlap_efficiency = report.overlap_efficiency();
    if limiting.is_some() && overlap_efficiency < EFFICIENCY_WARN {
        recommendations.push(format!(
            "overlap efficiency is {:.0}%: wall time is {:.1}x the limiting stage's \
             busy time, so stages are waiting on each other rather than overlapping — \
             check the queue findings above and the per-pipeline buffer counts",
            overlap_efficiency * 100.0,
            if overlap_efficiency > 0.0 {
                1.0 / overlap_efficiency
            } else {
                f64::INFINITY
            }
        ));
    }

    Diagnosis {
        stages,
        limiting,
        overlap_factor: report.overlap_factor(),
        overlap_efficiency,
        queue_findings,
        contention,
        prefetch,
        critical_path: None,
        resources,
        recommendations,
    }
}

/// [`diagnose`], sharpened with flight-recorder span logs: reconstructs
/// each traced buffer's round timeline
/// ([`critical_path`](crate::critical_path::critical_path)) and adds
/// findings that cite **concrete rounds** — the slowest buffer journey
/// and the stage whose spans dominate it — instead of run-wide averages.
///
/// `logs` is what [`TraceSink::collect`](crate::trace::TraceSink::collect)
/// returns after a run.  With no traced rounds in the logs, the result is
/// identical to [`diagnose`].
pub fn diagnose_with_trace(
    report: &Report,
    series: &[TimestampedSnapshot],
    logs: &[crate::trace::ThreadLog],
) -> Diagnosis {
    let mut d = diagnose(report, series);
    let cp = crate::critical_path::critical_path(logs);
    if cp.rounds.is_empty() {
        return d;
    }
    if let Some(slow) = cp.slowest_round() {
        if let Some((stage, ns)) = slow.dominant() {
            d.recommendations.push(format!(
                "critical path ({} traced rounds): the slowest buffer journey is \
                 pipeline#{} round {} at {:.3} ms, {:.3} ms of it in stage `{}` \
                 ({:.3} ms queued) — profile that round first",
                cp.rounds.len(),
                slow.pipeline,
                slow.round,
                slow.dur_ns() as f64 / 1e6,
                ns as f64 / 1e6,
                stage,
                slow.queued_ns() as f64 / 1e6
            ));
        }
    }
    if let Some(stage) = cp.dominant_stage() {
        let ns = cp.stage_totals[0].1;
        let pct = if cp.total_ns == 0 {
            0.0
        } else {
            ns as f64 / cp.total_ns as f64 * 100.0
        };
        // Only worth a line when one stage really owns the path.
        if pct > DOMINANT_FRAC * 100.0 && !is_source_or_sink(stage) {
            d.recommendations.push(format!(
                "stage `{stage}` carries {pct:.0}% of the end-to-end critical path \
                 across the traced rounds — per-round evidence agreeing with (or \
                 overriding) the busy-time averages above"
            ));
        }
    }
    d.critical_path = Some(cp);
    d
}

/// What [`diagnose_window`] concluded about a sliding window of telemetry
/// samples taken *during* a run — the live counterpart of [`Diagnosis`],
/// built from counter deltas instead of a finished [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDiagnosis {
    /// The window's span (last sample's elapsed minus the first's).
    pub window: Duration,
    /// Per-stage attribution over the window.  Farm rows are folded under
    /// their base name; `workers` counts the replicas that showed any
    /// activity in the window (the farm's *active* width).
    pub stages: Vec<StageDiagnosis>,
    /// The limiting stage within the window, by the same busy-per-worker
    /// rule as [`diagnose`].
    pub limiting: Option<String>,
    /// Queues pinned full/empty across the window's samples (capacities
    /// read from the `core/queue_capacity/*` gauges).
    pub queue_findings: Vec<QueueFinding>,
    /// Read-ahead effectiveness over the window (hit/miss deltas).
    pub prefetch: Option<PrefetchFinding>,
    /// Buffers per second through the fastest stage in the window — the
    /// controller's "is it going faster now?" yardstick.
    pub throughput: f64,
    /// Per-stage buffer counts over the window (farm rows folded).
    pub stage_rounds: Vec<(String, u64)>,
}

/// The verdict half of [`diagnose`], run on a **sliding window** of
/// [`TimestampedSnapshot`]s mid-run: stage attribution and the limiting
/// stage come from deltas of the live `core/stage_*` counters between the
/// window's first and last samples, queue findings from the depth gauges
/// across the window, and prefetch effectiveness from hit/miss deltas.
///
/// Returns `None` when the window holds fewer than two samples or spans
/// zero time.  Replica rows (`base#i`) are folded by name; because the
/// live counters carry no topology, the fold applies to any numeric `#`
/// suffix shared by two or more stages (or idle farms parked to width 1).
pub fn diagnose_window(window: &[TimestampedSnapshot]) -> Option<WindowDiagnosis> {
    let first = window.first()?;
    let last = window.last()?;
    let span = last.elapsed.checked_sub(first.elapsed)?;
    if span.is_zero() || window.len() < 2 {
        return None;
    }

    let delta = |name: &str| -> u64 {
        let a = first.snapshot.counter(name).unwrap_or(0);
        let b = last.snapshot.counter(name).unwrap_or(0);
        b.saturating_sub(a)
    };

    // Every stage that has published a busy counter by the window's end.
    let names: Vec<String> = last
        .snapshot
        .counters
        .iter()
        .filter_map(|(n, _)| n.strip_prefix(STAGE_BUSY_PREFIX))
        .map(str::to_string)
        .collect();

    // Fold `base#i` replicas.  Without a Report there is no topology to
    // check the base against; fold any group of stages sharing a base with
    // a numeric suffix (farms always name replicas this way).
    fn base_of(name: &str) -> Option<&str> {
        let (base, idx) = name.rsplit_once('#')?;
        (!base.is_empty() && !idx.is_empty() && idx.bytes().all(|b| b.is_ascii_digit()))
            .then_some(base)
    }
    let mut grouped: Vec<(String, Vec<&str>)> = Vec::new();
    for n in &names {
        let key = base_of(n).unwrap_or(n).to_string();
        match grouped.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(n),
            None => grouped.push((key, vec![n])),
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut stage_rounds: Vec<(String, u64)> = Vec::new();
    for (key, members) in &grouped {
        let mut busy = 0u64;
        let mut starved = 0u64;
        let mut backp = 0u64;
        let mut rounds = 0u64;
        let mut active = 0usize;
        for m in members {
            let b = delta(&format!("{STAGE_BUSY_PREFIX}{m}"));
            let s = delta(&format!("{STAGE_STARVED_PREFIX}{m}"));
            let c = delta(&format!("{STAGE_BACKPRESSURED_PREFIX}{m}"));
            rounds += delta(&format!("{STAGE_ROUNDS_PREFIX}{m}"));
            if b + s + c > 0 {
                active += 1;
            }
            busy += b;
            starved += s;
            backp += c;
        }
        let workers = if members.len() > 1 { active.max(1) } else { 1 };
        rows.push(Row {
            name: key.clone(),
            wall: span,
            busy: Duration::from_nanos(busy),
            starved: Duration::from_nanos(starved),
            backpressured: Duration::from_nanos(backp),
            denom: span * workers as u32,
            workers,
        });
        stage_rounds.push((key.clone(), rounds));
    }

    let stages = stage_diagnoses(&rows);
    let limiting = limiting_stage(&rows);

    // Queue findings across the window, capacities from the wire-time
    // capacity gauges.
    let queue_findings: Vec<QueueFinding> = last
        .snapshot
        .gauges
        .iter()
        .filter_map(|(name, cap)| {
            let qname = name.strip_prefix(QUEUE_CAPACITY_PREFIX)?;
            let capacity = cap.value as usize;
            if capacity == 0 {
                return None;
            }
            let depth_name = format!("{QUEUE_DEPTH_PREFIX}{qname}");
            let mut samples = 0u64;
            let mut full = 0u64;
            let mut empty = 0u64;
            for point in window {
                let Some(g) = point.snapshot.gauge(&depth_name) else {
                    continue;
                };
                samples += 1;
                if g.value as usize >= capacity {
                    full += 1;
                }
                if g.value == 0 {
                    empty += 1;
                }
            }
            (samples > 0).then(|| QueueFinding {
                name: qname.to_string(),
                capacity,
                full_frac: full as f64 / samples as f64,
                empty_frac: empty as f64 / samples as f64,
            })
        })
        .collect();

    // Prefetch hit/miss deltas across every scheduled disk.
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut seen = false;
    for (name, _) in &last.snapshot.counters {
        if !name.starts_with("disk/") {
            continue;
        }
        if name.ends_with("/prefetch_hit") {
            hits += delta(name);
            seen = true;
        } else if name.ends_with("/prefetch_miss") {
            misses += delta(name);
            seen = true;
        }
    }
    let prefetch = (seen && hits + misses > 0).then_some(PrefetchFinding { hits, misses });

    let throughput = stage_rounds
        .iter()
        .map(|(_, r)| *r as f64 / span.as_secs_f64())
        .fold(0.0, f64::max);

    Some(WindowDiagnosis {
        window: span,
        stages,
        limiting,
        queue_findings,
        prefetch,
        throughput,
        stage_rounds,
    })
}

impl WindowDiagnosis {
    /// The window row for `name`, if present.
    pub fn stage(&self, name: &str) -> Option<&StageDiagnosis> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Buffers conveyed by stage `name` over the window.
    pub fn rounds(&self, name: &str) -> u64 {
        self.stage_rounds
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
            .unwrap_or(0)
    }
}

/// Fold the per-disk `disk/*/prefetch_hit` / `disk/*/prefetch_miss`
/// counters into one cluster-wide [`PrefetchFinding`].
fn prefetch_finding(report: &Report) -> Option<PrefetchFinding> {
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut seen = false;
    for (name, v) in &report.metrics.counters {
        if !name.starts_with("disk/") {
            continue;
        }
        if name.ends_with("/prefetch_hit") {
            hits += v;
            seen = true;
        } else if name.ends_with("/prefetch_miss") {
            misses += v;
            seen = true;
        }
    }
    (seen && hits + misses > 0).then_some(PrefetchFinding { hits, misses })
}

/// Fold the per-queue contention counters into [`ContentionFinding`]s for
/// every queue whose CAS-retry rate crosses [`CONTENTION_WARN`] with at
/// least [`CONTENTION_MIN_ITEMS`] items of traffic, sorted worst first.
fn contention_findings(report: &Report) -> Vec<ContentionFinding> {
    let counter = |prefix: &str, name: &str| {
        report
            .metrics
            .counter(&format!("{prefix}{name}"))
            .unwrap_or(0)
    };
    let mut findings: Vec<ContentionFinding> = report
        .queues
        .iter()
        .filter_map(|q| {
            let f = ContentionFinding {
                name: q.name.clone(),
                cas_retries: counter(QUEUE_CAS_RETRY_PREFIX, &q.name),
                push_parks: counter(QUEUE_PUSH_PARK_PREFIX, &q.name),
                pop_parks: counter(QUEUE_POP_PARK_PREFIX, &q.name),
                wakes: counter(QUEUE_WAKE_PREFIX, &q.name),
                items: counter(QUEUE_ITEMS_PREFIX, &q.name),
            };
            (f.items >= CONTENTION_MIN_ITEMS && f.retries_per_item() >= CONTENTION_WARN)
                .then_some(f)
        })
        .collect();
    findings.sort_by(|a, b| {
        b.retries_per_item()
            .partial_cmp(&a.retries_per_item())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    findings
}

/// Fold the `core/queue_depth/<name>` gauge series into per-queue
/// full/empty fractions, matched against the report's queue capacities.
fn queue_findings(report: &Report, series: &[TimestampedSnapshot]) -> Vec<QueueFinding> {
    if series.is_empty() {
        return Vec::new();
    }
    report
        .queues
        .iter()
        .filter(|q| q.capacity > 0)
        .filter_map(|q| {
            let gauge_name = format!("core/queue_depth/{}", q.name);
            let mut samples = 0u64;
            let mut full = 0u64;
            let mut empty = 0u64;
            for point in series {
                let Some(g) = point.snapshot.gauge(&gauge_name) else {
                    continue;
                };
                samples += 1;
                if g.value as usize >= q.capacity {
                    full += 1;
                }
                if g.value == 0 {
                    empty += 1;
                }
            }
            (samples > 0).then(|| QueueFinding {
                name: q.name.clone(),
                capacity: q.capacity,
                full_frac: full as f64 / samples as f64,
                empty_frac: empty as f64 / samples as f64,
            })
        })
        .collect()
}

/// Resource-level findings from the run's [`ResourceReport`]: memory
/// pressure against the ledger budget, steady-state allocation churn
/// (warmup-tagged and assertion-scoped counts are excluded), and
/// involuntary-context-switch storms.  Empty when the run carried no
/// resource data — the profiler is opt-in and degrades to silence.
///
/// [`ResourceReport`]: crate::profile::ResourceReport
fn resource_findings(report: &Report) -> Vec<ResourceFinding> {
    let Some(res) = report
        .resources
        .clone()
        .or_else(|| crate::profile::ResourceReport::from_metrics(&report.metrics))
    else {
        return Vec::new();
    };
    let wall = report.wall.as_secs_f64();
    let mut findings = Vec::new();
    if let Some(ledger) = &res.ledger {
        if ledger.budget_bytes > 0 {
            // Whichever peak is larger: process RSS (everything) or the
            // ledger's own accounting (pool buffers only).  RSS can be
            // zero when /proc was unreadable.
            let used = res.rss_peak_bytes.max(ledger.peak_bytes);
            let frac = used as f64 / ledger.budget_bytes as f64;
            if frac >= MEMORY_BOUND_FRAC {
                findings.push(ResourceFinding {
                    kind: ResourceFindingKind::MemoryBound,
                    subject: "process".into(),
                    detail: format!(
                        "peak memory {:.1} MiB is {:.0}% of the {:.1} MiB budget",
                        used as f64 / (1 << 20) as f64,
                        frac * 100.0,
                        ledger.budget_bytes as f64 / (1 << 20) as f64
                    ),
                });
            }
        }
    }
    if res.alloc_tracking && wall > 0.0 {
        for a in &res.alloc {
            // Warmup-tagged counts are first-call setup by design, and
            // `assert/…` tags belong to explicit steady-state assertions.
            if a.stage.starts_with("assert/") || a.stage.ends_with("/warmup") {
                continue;
            }
            let rate = a.allocs as f64 / wall;
            if rate >= ALLOC_CHURN_PER_SEC {
                findings.push(ResourceFinding {
                    kind: ResourceFindingKind::AllocChurn,
                    subject: a.stage.clone(),
                    detail: format!(
                        "stage `{}` made {} heap allocations ({} bytes) in steady \
                         state (~{:.0} allocs/s)",
                        a.stage, a.allocs, a.bytes, rate
                    ),
                });
            }
        }
    }
    if wall > 0.0 {
        for t in &res.threads {
            let rate = t.invol_switches as f64 / wall;
            if rate >= OVERSUBSCRIBED_SWITCH_RATE {
                findings.push(ResourceFinding {
                    kind: ResourceFindingKind::Oversubscribed,
                    subject: t.name.clone(),
                    detail: format!(
                        "thread `{}` was involuntarily switched out {} times \
                         (~{:.0}/s)",
                        t.name, t.invol_switches, rate
                    ),
                });
            }
        }
    }
    findings
}

impl Diagnosis {
    /// Render the diagnosis as text: a stage-attribution table, the
    /// limiting stage and overlap numbers, pinned queues, and the
    /// recommendation list.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== diagnosis ==\n");
        let display = |s: &StageDiagnosis| {
            if s.workers > 1 {
                format!("{} x{}", s.name, s.workers)
            } else {
                s.name.clone()
            }
        };
        let name_w = self
            .stages
            .iter()
            .map(|s| display(s).len())
            .max()
            .unwrap_or(5)
            .max(5);
        out.push_str(&format!(
            "{:<name_w$} {:>7} {:>8} {:>8} {:>6}  verdict\n",
            "stage", "busy%", "starve%", "backp%", "wall s"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<name_w$} {:>6.0}% {:>7.0}% {:>7.0}% {:>6.3}  {}\n",
                display(s),
                s.busy_frac * 100.0,
                s.starved_frac * 100.0,
                s.backpressured_frac * 100.0,
                s.wall.as_secs_f64(),
                s.verdict.label()
            ));
        }
        match &self.limiting {
            Some(name) => out.push_str(&format!(
                "limiting stage: `{name}`, overlap factor {:.2}, overlap efficiency {:.0}%\n",
                self.overlap_factor,
                self.overlap_efficiency * 100.0
            )),
            None => out.push_str("no stage did measurable work\n"),
        }
        if let Some(p) = &self.prefetch {
            out.push_str(&format!(
                "disk read-ahead: {:.0}% hit rate ({} hits, {} misses)\n",
                p.hit_rate() * 100.0,
                p.hits,
                p.misses
            ));
        }
        for q in &self.queue_findings {
            if q.full_frac > PINNED_FRAC || q.empty_frac > PINNED_FRAC {
                out.push_str(&format!(
                    "queue {:<12} cap {:>3}  full {:>3.0}%  empty {:>3.0}% of samples\n",
                    q.name,
                    q.capacity,
                    q.full_frac * 100.0,
                    q.empty_frac * 100.0
                ));
            }
        }
        for c in &self.contention {
            out.push_str(&format!(
                "queue {:<12} contended: {:.1} CAS retries/item ({} over {} pushes), \
                 parks {}+{}\n",
                c.name,
                c.retries_per_item(),
                c.cas_retries,
                c.items,
                c.push_parks,
                c.pop_parks
            ));
        }
        for f in &self.resources {
            let label = match f.kind {
                ResourceFindingKind::MemoryBound => "memory-bound",
                ResourceFindingKind::AllocChurn => "alloc churn",
                ResourceFindingKind::Oversubscribed => "oversubscribed",
            };
            out.push_str(&format!("resource [{label}]: {}\n", f.detail));
        }
        if !self.recommendations.is_empty() {
            out.push_str("recommendations:\n");
            for r in &self.recommendations {
                out.push_str(&format!("  - {r}\n"));
            }
        }
        if let Some(cp) = &self.critical_path {
            out.push_str(&cp.render());
        }
        out
    }
}

/// A rank's wall time must exceed the cluster mean by this ratio to be
/// called a straggler.
pub(crate) const STRAGGLER_RATIO: f64 = 1.25;

/// A rank must receive this many times the mean bytes to be called the hot
/// rank of a skewed exchange.
pub(crate) const SKEW_RATIO: f64 = 1.5;

/// A rank spending more than this fraction of its wall time inside
/// communicator operations is comm-bound.
pub(crate) const COMM_BOUND_FRAC: f64 = 0.5;

/// One rank's attribution inside a [`ClusterDiagnosis`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankVerdict {
    /// The rank.
    pub rank: usize,
    /// The rank's node-function wall time.
    pub wall: Duration,
    /// Total stage busy time across the rank's FG programs.
    pub busy: Duration,
    /// Time inside communicator operations (user sends, blocked receives,
    /// collectives), ns.
    pub comm_ns: u64,
    /// Of [`RankVerdict::comm_ns`], time blocked in `recv` — waiting on a
    /// peer rather than moving bytes.
    pub recv_wait_ns: u64,
    /// Bytes this rank sent (traffic-matrix row sum).
    pub bytes_sent: u64,
    /// Bytes this rank received (traffic-matrix column sum).
    pub bytes_recv: u64,
    /// Whether communication dominates the rank's wall time
    /// (`comm_ns > `[`COMM_BOUND_FRAC`]` * wall`).
    pub comm_bound: bool,
}

/// What [`diagnose_cluster`] concluded about a cluster run: which rank (if
/// any) drags the run, whether the exchange pattern is skewed, and whether
/// ranks are comm- or compute-bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterDiagnosis {
    /// Per-rank attribution, in rank order.
    pub ranks: Vec<RankVerdict>,
    /// The straggler rank, when one rank's wall time exceeds the mean by
    /// [`STRAGGLER_RATIO`] — the whole run ends when it does.
    pub straggler: Option<usize>,
    /// The hot rank of a skewed exchange, when one rank receives more than
    /// [`SKEW_RATIO`] times the mean bytes.
    pub hot_rank: Option<usize>,
    /// Human-readable findings, most important first.
    pub recommendations: Vec<String>,
}

/// Diagnose a cluster run from its merged [`ClusterReport`]: straggler
/// detection from per-rank wall imbalance, exchange skew from the traffic
/// matrix, and comm-bound vs compute-bound attribution per rank.
pub fn diagnose_cluster(report: &crate::cluster_report::ClusterReport) -> ClusterDiagnosis {
    let sent = report.bytes_sent();
    let recv = report.bytes_received();
    let ranks: Vec<RankVerdict> = report
        .ranks
        .iter()
        .map(|r| {
            let recv_wait_ns = r.recv_wait_ns();
            let comm_ns = r.send_ns() + recv_wait_ns + r.collective_ns();
            RankVerdict {
                rank: r.rank,
                wall: r.wall,
                busy: r.busy(),
                comm_ns,
                recv_wait_ns,
                bytes_sent: sent.get(r.rank).copied().unwrap_or(0),
                bytes_recv: recv.get(r.rank).copied().unwrap_or(0),
                comm_bound: comm_ns as f64 > COMM_BOUND_FRAC * r.wall.as_nanos() as f64,
            }
        })
        .collect();
    let mut recommendations = Vec::new();

    // Straggler: the run ends when the slowest rank does, so one rank with
    // outsized wall time caps the whole cluster.
    let straggler = argmax_over_mean(
        ranks.iter().map(|r| r.wall.as_nanos() as f64),
        STRAGGLER_RATIO,
    )
    .map(|i| ranks[i].rank);
    if let Some(rank) = straggler {
        let v = ranks.iter().find(|r| r.rank == rank).unwrap();
        let mean = ranks.iter().map(|r| r.wall.as_secs_f64()).sum::<f64>() / ranks.len() as f64;
        recommendations.push(format!(
            "rank {rank} is a straggler: its wall time ({:.3}s) is {:.1}x the cluster \
             mean ({mean:.3}s) — every other rank waits for it at the next collective",
            v.wall.as_secs_f64(),
            v.wall.as_secs_f64() / mean.max(f64::MIN_POSITIVE),
        ));
    }

    // Exchange skew: one rank receiving an outsized share of the bytes.
    let hot_rank = argmax_over_mean(ranks.iter().map(|r| r.bytes_recv as f64), SKEW_RATIO)
        .map(|i| ranks[i].rank);
    if let Some(rank) = hot_rank {
        let v = ranks.iter().find(|r| r.rank == rank).unwrap();
        let mean = ranks.iter().map(|r| r.bytes_recv as f64).sum::<f64>() / ranks.len() as f64;
        recommendations.push(format!(
            "the exchange is skewed: rank {rank} receives {} — {:.1}x the mean — so its \
             receive pipeline (and the senders blocked on it) governs the exchange; \
             rebalance the partition (e.g. sample splitters from more data) or give \
             rank {rank}'s receive pipeline more buffers",
            crate::cluster_report::fmt_bytes(v.bytes_recv),
            v.bytes_recv as f64 / mean.max(f64::MIN_POSITIVE),
        ));
    }

    // Comm- vs compute-bound attribution.
    let comm_bound: Vec<usize> = ranks
        .iter()
        .filter(|r| r.comm_bound)
        .map(|r| r.rank)
        .collect();
    if !comm_bound.is_empty() && comm_bound.len() < ranks.len() {
        for &rank in &comm_bound {
            let v = ranks.iter().find(|r| r.rank == rank).unwrap();
            let wait_frac = if v.comm_ns > 0 {
                v.recv_wait_ns as f64 / v.comm_ns as f64
            } else {
                0.0
            };
            if wait_frac > 0.5 {
                recommendations.push(format!(
                    "rank {rank} is comm-bound and mostly *waiting* ({:.0}% of its comm \
                     time is blocked receives): it is starved by a slow or overloaded \
                     peer, not by its own traffic",
                    wait_frac * 100.0
                ));
            } else {
                recommendations.push(format!(
                    "rank {rank} is comm-bound ({:.0}% of wall inside communicator \
                     operations): overlap the exchange with compute by splitting \
                     send/receive into disjoint pipelines",
                    100.0 * v.comm_ns as f64 / (v.wall.as_nanos() as f64).max(1.0)
                ));
            }
        }
    } else if !ranks.is_empty() && comm_bound.len() == ranks.len() {
        recommendations.push(
            "every rank is comm-bound: the interconnect (or the exchange pattern) limits \
             the run — reduce bytes on the wire or raise effective bandwidth before \
             tuning pipelines"
                .into(),
        );
    }
    if straggler.is_none() && hot_rank.is_none() && comm_bound.is_empty() && ranks.len() > 1 {
        recommendations.push(
            "the cluster is balanced and compute-bound: per-rank pipeline tuning (see \
             per-rank diagnoses) is the next lever"
                .into(),
        );
    }

    ClusterDiagnosis {
        ranks,
        straggler,
        hot_rank,
        recommendations,
    }
}

/// Index of the maximum of `vals` when it exceeds `ratio` times the mean;
/// `None` for empty/degenerate inputs or a balanced distribution.
fn argmax_over_mean(vals: impl Iterator<Item = f64>, ratio: f64) -> Option<usize> {
    let vals: Vec<f64> = vals.collect();
    if vals.len() < 2 {
        return None;
    }
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    if mean <= 0.0 {
        return None;
    }
    let (i, &max) = vals.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
    (max > ratio * mean).then_some(i)
}

impl ClusterDiagnosis {
    /// Render the cluster diagnosis as text: a per-rank attribution table
    /// and the recommendation list.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== cluster diagnosis ==\n");
        out.push_str(&format!(
            "{:<6} {:>8} {:>8} {:>7} {:>10} {:>10}  verdict\n",
            "rank", "wall s", "busy s", "comm%", "sent", "recv"
        ));
        for v in &self.ranks {
            let comm_frac = if v.wall.as_nanos() > 0 {
                v.comm_ns as f64 / v.wall.as_nanos() as f64
            } else {
                0.0
            };
            let mut verdict = if v.comm_bound {
                "comm-bound"
            } else {
                "compute-bound"
            }
            .to_string();
            if self.straggler == Some(v.rank) {
                verdict.push_str(", straggler");
            }
            if self.hot_rank == Some(v.rank) {
                verdict.push_str(", hot");
            }
            out.push_str(&format!(
                "{:<6} {:>8.3} {:>8.3} {:>6.0}% {:>10} {:>10}  {}\n",
                format!("r{}", v.rank),
                v.wall.as_secs_f64(),
                v.busy.as_secs_f64(),
                comm_frac * 100.0,
                crate::cluster_report::fmt_bytes(v.bytes_sent),
                crate::cluster_report::fmt_bytes(v.bytes_recv),
                verdict,
            ));
        }
        if !self.recommendations.is_empty() {
            out.push_str("recommendations:\n");
            for r in &self.recommendations {
                out.push_str(&format!("  - {r}\n"));
            }
        }
        out
    }

    /// The diagnosis as a [`Json`] value (the `hot_rank` / `straggler`
    /// fields are what CI gates assert against).
    pub fn to_json_value(&self) -> crate::json::Json {
        use crate::json::{obj, Json};
        let opt = |v: Option<usize>| v.map_or(Json::Null, Json::from);
        obj(vec![
            (
                "ranks",
                Json::Arr(
                    self.ranks
                        .iter()
                        .map(|v| {
                            obj(vec![
                                ("rank", Json::from(v.rank)),
                                ("wall_ns", Json::from(v.wall.as_nanos() as u64)),
                                ("busy_ns", Json::from(v.busy.as_nanos() as u64)),
                                ("comm_ns", Json::from(v.comm_ns)),
                                ("recv_wait_ns", Json::from(v.recv_wait_ns)),
                                ("bytes_sent", Json::from(v.bytes_sent)),
                                ("bytes_recv", Json::from(v.bytes_recv)),
                                ("comm_bound", Json::Bool(v.comm_bound)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("straggler", opt(self.straggler)),
            ("hot_rank", opt(self.hot_rank)),
            (
                "recommendations",
                Json::Arr(
                    self.recommendations
                        .iter()
                        .map(|r| Json::from(r.as_str()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StageStats;

    fn stage(name: &str, wall_ms: u64, acc_ms: u64, conv_ms: u64) -> StageStats {
        StageStats {
            name: name.into(),
            wall: Duration::from_millis(wall_ms),
            blocked_accept: Duration::from_millis(acc_ms),
            blocked_convey: Duration::from_millis(conv_ms),
            buffers_in: 1,
            buffers_out: 1,
            ..StageStats::default()
        }
    }

    fn report() -> Report {
        Report {
            wall: Duration::from_millis(100),
            stages: vec![
                stage("fast-up", 100, 5, 80),   // backpressured by the slow stage
                stage("slow", 100, 5, 5),       // the bottleneck
                stage("fast-down", 100, 80, 5), // starved behind it
                stage("p/source", 100, 0, 95),
                stage("p/sink", 100, 95, 0),
            ],
            threads_spawned: 5,
            ..Report::default()
        }
    }

    #[test]
    fn names_busy_stage_as_limiting_and_attributes_neighbors() {
        let d = diagnose(&report(), &[]);
        assert_eq!(d.limiting.as_deref(), Some("slow"));
        let by_name = |n: &str| d.stages.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("slow").verdict, StageVerdict::Busy);
        assert_eq!(by_name("fast-up").verdict, StageVerdict::Backpressured);
        assert_eq!(by_name("fast-down").verdict, StageVerdict::Starved);
        assert!(d.recommendations.iter().any(|r| r.contains("`slow`")));
        // Unfarmed busy-bound bottleneck: the fix on offer is `workers(n)`.
        assert!(d
            .recommendations
            .iter()
            .any(|r| r.contains("`slow`") && r.contains("workers(n)")));
        assert!(d
            .recommendations
            .iter()
            .any(|r| r.contains("`fast-up`") && r.contains("backpressured")));
        // The bottleneck ran 90% busy against a 100ms wall: efficiency ~0.9.
        assert!((d.overlap_efficiency - 0.9).abs() < 1e-9);
        let text = d.render();
        assert!(text.contains("limiting stage: `slow`"));
    }

    #[test]
    fn resource_findings_flag_pressure_churn_and_oversubscription() {
        use crate::profile::{AllocResources, LedgerSnapshot, ResourceReport, ThreadResources};
        let mut r = report();
        r.resources = Some(ResourceReport {
            rss_bytes: 900 << 20,
            rss_peak_bytes: 950 << 20,
            threads: vec![
                ThreadResources {
                    name: "slow".into(),
                    utime_ns: 90_000_000,
                    stime_ns: 1_000_000,
                    vol_switches: 10,
                    invol_switches: 500, // 5000/s over the 100ms wall
                },
                ThreadResources {
                    name: "fast-up".into(),
                    utime_ns: 5_000_000,
                    stime_ns: 0,
                    vol_switches: 3,
                    invol_switches: 1, // 10/s: fine
                },
            ],
            alloc_tracking: true,
            alloc: vec![
                AllocResources {
                    stage: "slow".into(),
                    allocs: 50_000, // 500k/s: churn
                    frees: 50_000,
                    bytes: 1 << 20,
                    freed_bytes: 1 << 20,
                },
                AllocResources {
                    stage: "sort/warmup".into(),
                    allocs: 1_000_000, // warmup is setup by design: excluded
                    frees: 0,
                    bytes: 1 << 30,
                    freed_bytes: 0,
                },
            ],
            ledger: Some(LedgerSnapshot {
                budget_bytes: 1024 << 20,
                total_bytes: 800 << 20,
                peak_bytes: 900 << 20,
                total_buffers: 8,
                stages: Vec::new(),
            }),
            ..ResourceReport::default()
        });
        let d = diagnose(&r, &[]);
        let kinds: Vec<_> = d.resources.iter().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ResourceFindingKind::MemoryBound,
                ResourceFindingKind::AllocChurn,
                ResourceFindingKind::Oversubscribed,
            ]
        );
        // Only the genuinely oversubscribed thread and the churning stage
        // are named; warmup counts never surface.
        assert!(d.resources.iter().all(|f| f.subject != "fast-up"));
        assert!(d.resources.iter().all(|f| !f.subject.contains("warmup")));
        assert!(d.recommendations.iter().any(|r| r.contains("--mem-budget")));
        assert!(d.recommendations.iter().any(|r| r.contains("preallocate")));
        assert!(d
            .recommendations
            .iter()
            .any(|r| r.contains("--workers") || r.contains("--pin")));
        let text = d.render();
        assert!(text.contains("resource [memory-bound]:"));
        assert!(text.contains("resource [alloc churn]:"));
        assert!(text.contains("resource [oversubscribed]: thread `slow`"));
    }

    #[test]
    fn no_resource_data_means_no_resource_findings() {
        let d = diagnose(&report(), &[]);
        assert!(d.resources.is_empty());
        assert!(!d.render().contains("resource ["));
    }

    #[test]
    fn upstream_starvation_is_reattributed_as_backpressure() {
        use crate::stats::PipelineShape;
        // `up` measures as starved (the recycle loop ran dry behind the
        // bottleneck), but topology says it sits upstream of `slow`, so the
        // verdict names the cause.  `other`, in a different pipeline, keeps
        // its measured verdict.
        let r = Report {
            wall: Duration::from_millis(100),
            stages: vec![
                stage("up", 100, 90, 0),
                stage("slow", 100, 5, 5),
                stage("down", 100, 85, 0),
                stage("other", 100, 90, 0),
            ],
            pipelines: vec![
                PipelineShape {
                    name: "p".into(),
                    stages: vec!["up".into(), "slow".into(), "down".into()],
                },
                PipelineShape {
                    name: "q".into(),
                    stages: vec!["other".into()],
                },
            ],
            threads_spawned: 4,
            ..Report::default()
        };
        let d = diagnose(&r, &[]);
        assert_eq!(d.limiting.as_deref(), Some("slow"));
        let by_name = |n: &str| d.stages.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("up").verdict, StageVerdict::Backpressured);
        assert_eq!(by_name("down").verdict, StageVerdict::Starved);
        assert_eq!(by_name("other").verdict, StageVerdict::Starved);
        assert!(d
            .recommendations
            .iter()
            .any(|r| r.contains("`up`") && r.contains("upstream of the limiting stage")));
    }

    #[test]
    fn farm_replicas_roll_up_into_one_row() {
        use crate::stats::PipelineShape;
        // A 4-worker farm: two workers carried most of the rounds, two sat
        // mostly idle.  The diagnosis must show one `sort` row (no `#`
        // names anywhere), attribute fractions against the summed replica
        // wall so the idle pair doesn't read as phantom starvation, and —
        // since the farm is still busy-bound and limiting — recommend
        // raising the worker count rather than `workers(n)` from scratch.
        let r = Report {
            wall: Duration::from_millis(100),
            stages: vec![
                stage("read", 100, 80, 10),
                stage("sort#0", 100, 5, 5),
                stage("sort#1", 100, 5, 5),
                stage("sort#2", 100, 60, 0),
                stage("sort#3", 100, 60, 0),
                stage("write", 100, 90, 0),
            ],
            pipelines: vec![PipelineShape {
                name: "p".into(),
                stages: vec!["read".into(), "sort".into(), "write".into()],
            }],
            threads_spawned: 6,
            ..Report::default()
        };
        let d = diagnose(&r, &[]);
        assert!(d.stages.iter().all(|s| !s.name.contains('#')));
        let sort = d.stages.iter().find(|s| s.name == "sort").unwrap();
        assert_eq!(sort.workers, 4);
        assert_eq!(sort.wall, Duration::from_millis(100));
        // busy = (90 + 90 + 40 + 40) / 400, starved = (5 + 5 + 60 + 60) / 400.
        assert!((sort.busy_frac - 0.65).abs() < 1e-9);
        assert!((sort.starved_frac - 0.325).abs() < 1e-9);
        assert_eq!(sort.verdict, StageVerdict::Busy);
        // Effective busy 65ms beats read/write at 10ms each.
        assert_eq!(d.limiting.as_deref(), Some("sort"));
        assert!(d
            .recommendations
            .iter()
            .any(|r| r.contains("`sort`") && r.contains("4 workers") && r.contains("workers(8)")));
        // No recommendation names an individual replica.
        assert!(d.recommendations.iter().all(|r| !r.contains('#')));
        assert!(d.render().contains("sort x4"));
    }

    #[test]
    fn farm_limits_by_effective_busy_not_summed_busy() {
        use crate::stats::PipelineShape;
        // The farm's four workers sum to 200ms busy, but they overlap: the
        // bound they place on wall time is 50ms.  The 80ms-busy plain stage
        // is the real bottleneck.
        let r = Report {
            wall: Duration::from_millis(100),
            stages: vec![
                stage("work#0", 100, 50, 0),
                stage("work#1", 100, 50, 0),
                stage("work#2", 100, 50, 0),
                stage("work#3", 100, 50, 0),
                stage("heavy", 100, 10, 10),
            ],
            pipelines: vec![PipelineShape {
                name: "p".into(),
                stages: vec!["work".into(), "heavy".into()],
            }],
            threads_spawned: 5,
            ..Report::default()
        };
        let d = diagnose(&r, &[]);
        assert_eq!(d.limiting.as_deref(), Some("heavy"));
    }

    #[test]
    fn hash_in_name_without_topology_match_is_not_a_replica() {
        // No pipeline names a `map` stage, so `map#1` is just a stage with
        // a `#` in its name: it stays its own row with workers == 1.
        let r = Report {
            wall: Duration::from_millis(100),
            stages: vec![stage("map#1", 100, 5, 5)],
            threads_spawned: 1,
            ..Report::default()
        };
        let d = diagnose(&r, &[]);
        assert_eq!(d.stages.len(), 1);
        assert_eq!(d.stages[0].name, "map#1");
        assert_eq!(d.stages[0].workers, 1);
        assert_eq!(d.limiting.as_deref(), Some("map#1"));
    }

    #[test]
    fn sources_and_sinks_never_limit() {
        let r = Report {
            wall: Duration::from_millis(100),
            stages: vec![stage("p/source", 100, 0, 0), stage("p/sink", 100, 0, 0)],
            threads_spawned: 2,
            ..Report::default()
        };
        assert_eq!(diagnose(&r, &[]).limiting, None);
    }

    #[test]
    fn empty_report_is_inert() {
        let d = diagnose(&Report::default(), &[]);
        assert!(d.stages.is_empty());
        assert_eq!(d.limiting, None);
        assert!(d.queue_findings.is_empty());
        assert!(d.render().contains("no stage did measurable work"));
    }

    #[test]
    fn queue_series_distinguishes_pinned_from_spike() {
        use crate::stats::QueueDepth;
        let mut r = report();
        r.queues = vec![
            QueueDepth {
                name: "p[1]".into(),
                capacity: 3,
                max_depth: 3,
                spsc: false,
                flavor: "mutex".into(),
            },
            QueueDepth {
                name: "p[2]".into(),
                capacity: 3,
                max_depth: 3,
                spsc: false,
                flavor: "mutex".into(),
            },
        ];
        // p[1] pinned at capacity in every sample; p[2] touched it once.
        let point = |d1: u64, d2: u64, ms: u64| {
            let reg = crate::metrics::MetricsRegistry::new();
            reg.gauge("core/queue_depth/p[1]").set(d1);
            reg.gauge("core/queue_depth/p[2]").set(d2);
            TimestampedSnapshot {
                elapsed: Duration::from_millis(ms),
                snapshot: reg.snapshot(),
            }
        };
        let series = vec![
            point(3, 3, 0),
            point(3, 0, 1),
            point(3, 1, 2),
            point(3, 0, 3),
        ];
        let d = diagnose(&r, &series);
        let f = |n: &str| d.queue_findings.iter().find(|q| q.name == n).unwrap();
        assert_eq!(f("p[1]").full_frac, 1.0);
        assert_eq!(f("p[2]").full_frac, 0.25);
        assert!(d
            .recommendations
            .iter()
            .any(|r| r.contains("`p[1]`") && r.contains("capacity")));
        assert!(!d
            .recommendations
            .iter()
            .any(|r| r.contains("`p[2]`") && r.contains("capacity")));
        // Without a time series there is nothing to distinguish: no
        // findings at all, rather than findings from high-water marks.
        assert!(diagnose(&r, &[]).queue_findings.is_empty());
    }

    /// A report whose metrics carry prefetch counters for two disks.
    fn report_with_prefetch(hits: &[(u64, u64)]) -> Report {
        let reg = crate::metrics::MetricsRegistry::new();
        for (i, (h, m)) in hits.iter().enumerate() {
            reg.counter(&format!("disk/d{i}/prefetch_hit")).add(*h);
            reg.counter(&format!("disk/d{i}/prefetch_miss")).add(*m);
        }
        let mut r = report();
        r.metrics = reg.snapshot();
        r
    }

    #[test]
    fn cold_prefetch_recommends_raising_io_depth() {
        let d = diagnose(&report_with_prefetch(&[(1, 9), (2, 8)]), &[]);
        let p = d.prefetch.expect("prefetch counters present");
        assert_eq!(p.hits, 3);
        assert_eq!(p.misses, 17);
        assert!((p.hit_rate() - 0.15).abs() < 1e-9);
        assert!(d
            .recommendations
            .iter()
            .any(|r| r.contains("read-ahead hit rate") && r.contains("--io-depth")));
        assert!(d.render().contains("disk read-ahead: 15% hit rate"));
    }

    #[test]
    fn warm_prefetch_reported_without_recommendation() {
        let d = diagnose(&report_with_prefetch(&[(9, 1), (10, 0)]), &[]);
        let p = d.prefetch.expect("prefetch counters present");
        assert!(p.hit_rate() > 0.9);
        assert!(!d.recommendations.iter().any(|r| r.contains("--io-depth")));
        assert!(d.render().contains("disk read-ahead: 95% hit rate"));
    }

    #[test]
    fn no_scheduler_means_no_prefetch_finding() {
        let d = diagnose(&report(), &[]);
        assert_eq!(d.prefetch, None);
        assert!(!d.render().contains("read-ahead"));
    }

    #[test]
    fn dry_recycle_pool_flagged() {
        use crate::stats::QueueDepth;
        let mut r = report();
        r.queues = vec![QueueDepth {
            name: "recycle/g0".into(),
            capacity: 4,
            max_depth: 4,
            spsc: false,
            flavor: "lockfree".into(),
        }];
        let point = |depth: u64, ms: u64| {
            let reg = crate::metrics::MetricsRegistry::new();
            reg.gauge("core/queue_depth/recycle/g0").set(depth);
            TimestampedSnapshot {
                elapsed: Duration::from_millis(ms),
                snapshot: reg.snapshot(),
            }
        };
        let series = vec![point(0, 0), point(0, 1), point(1, 2), point(0, 3)];
        let d = diagnose(&r, &series);
        assert!(d
            .recommendations
            .iter()
            .any(|r| r.contains("recycle/g0") && r.contains("under-provisioned")));
    }

    fn report_with_contention(retries: u64, items: u64) -> Report {
        use crate::stats::QueueDepth;
        let reg = crate::metrics::MetricsRegistry::new();
        reg.counter("core/queue_cas_retries/in/sort").add(retries);
        reg.counter("core/queue_items/in/sort").add(items);
        reg.counter("core/queue_push_parks/in/sort").add(7);
        reg.counter("core/queue_pop_parks/in/sort").add(3);
        reg.counter("core/queue_wakes/in/sort").add(10);
        let mut r = report();
        r.queues = vec![QueueDepth {
            name: "in/sort".into(),
            capacity: 8,
            max_depth: 8,
            spsc: false,
            flavor: "lockfree".into(),
        }];
        r.metrics = reg.snapshot();
        r
    }

    #[test]
    fn contended_queue_flagged_with_pin_recommendation() {
        let d = diagnose(&report_with_contention(900, 1000), &[]);
        assert_eq!(d.contention.len(), 1);
        let c = &d.contention[0];
        assert_eq!(c.name, "in/sort");
        assert_eq!(
            (c.cas_retries, c.items, c.push_parks, c.pop_parks),
            (900, 1000, 7, 3)
        );
        assert!((c.retries_per_item() - 0.9).abs() < 1e-9);
        // Unpinned run: the fix on offer is pinning, and the verdict names
        // the queue, not a stage, as the fight.
        assert!(d
            .recommendations
            .iter()
            .any(|r| r.contains("`in/sort`") && r.contains("contended") && r.contains("--pin")));
        assert!(d.render().contains("contended: 0.9 CAS retries/item"));
    }

    #[test]
    fn contended_queue_on_pinned_run_suggests_fewer_threads() {
        let mut r = report_with_contention(900, 1000);
        r.stages[0].core = Some(2);
        let d = diagnose(&r, &[]);
        assert!(d
            .recommendations
            .iter()
            .any(|r| r.contains("already pinned")));
        assert!(!d.recommendations.iter().any(|r| r.contains("--pin")));
    }

    #[test]
    fn quiet_queues_produce_no_contention_finding() {
        // Below the traffic floor: 90 retries over 99 pushes is a hot rate
        // but too few items to trust.
        assert!(diagnose(&report_with_contention(90, 99), &[])
            .contention
            .is_empty());
        // Plenty of traffic, low rate.
        assert!(diagnose(&report_with_contention(100, 1000), &[])
            .contention
            .is_empty());
    }

    /// Build a window sample: `(stage, busy_ms, starved_ms, backp_ms,
    /// rounds)` rows as cumulative counters at `elapsed` ms.
    fn window_point(ms: u64, rows: &[(&str, u64, u64, u64, u64)]) -> TimestampedSnapshot {
        let reg = crate::metrics::MetricsRegistry::new();
        for (name, busy, starved, backp, rounds) in rows {
            reg.counter(&format!("{STAGE_BUSY_PREFIX}{name}"))
                .add(busy * 1_000_000);
            reg.counter(&format!("{STAGE_STARVED_PREFIX}{name}"))
                .add(starved * 1_000_000);
            reg.counter(&format!("{STAGE_BACKPRESSURED_PREFIX}{name}"))
                .add(backp * 1_000_000);
            reg.counter(&format!("{STAGE_ROUNDS_PREFIX}{name}"))
                .add(*rounds);
        }
        TimestampedSnapshot {
            elapsed: Duration::from_millis(ms),
            snapshot: reg.snapshot(),
        }
    }

    #[test]
    fn window_needs_two_samples_and_nonzero_span() {
        assert_eq!(diagnose_window(&[]), None);
        let p = window_point(5, &[("a", 1, 0, 0, 1)]);
        assert_eq!(diagnose_window(std::slice::from_ref(&p)), None);
        assert_eq!(diagnose_window(&[p.clone(), p]), None);
    }

    #[test]
    fn window_names_limiting_stage_from_counter_deltas() {
        let w = vec![
            window_point(0, &[("up", 10, 0, 0, 5), ("slow", 10, 0, 0, 5)]),
            window_point(100, &[("up", 20, 0, 80, 10), ("slow", 105, 5, 0, 10)]),
        ];
        let d = diagnose_window(&w).unwrap();
        assert_eq!(d.window, Duration::from_millis(100));
        assert_eq!(d.limiting.as_deref(), Some("slow"));
        assert_eq!(d.stage("slow").unwrap().verdict, StageVerdict::Busy);
        assert_eq!(d.stage("up").unwrap().verdict, StageVerdict::Backpressured);
        assert_eq!(d.rounds("slow"), 5);
        // 5 buffers / 0.1 s.
        assert!((d.throughput - 50.0).abs() < 1e-9);
    }

    #[test]
    fn window_folds_replicas_and_counts_active_workers() {
        // Farm `w` declared with three replicas; only two did anything in
        // the window, so the farm reads as two workers wide.
        let w = vec![
            window_point(
                0,
                &[
                    ("w#0", 0, 0, 0, 0),
                    ("w#1", 0, 0, 0, 0),
                    ("w#2", 0, 0, 0, 0),
                ],
            ),
            window_point(
                100,
                &[
                    ("w#0", 90, 10, 0, 4),
                    ("w#1", 80, 20, 0, 4),
                    ("w#2", 0, 0, 0, 0),
                ],
            ),
        ];
        let d = diagnose_window(&w).unwrap();
        let farm = d.stage("w").unwrap();
        assert_eq!(farm.workers, 2);
        // 170 ms busy over a 2-worker 100 ms window.
        assert!((farm.busy_frac - 0.85).abs() < 1e-9);
        assert_eq!(d.rounds("w"), 8);
        assert_eq!(d.limiting.as_deref(), Some("w"));
    }

    #[test]
    fn window_reads_queue_capacity_gauges_and_prefetch_deltas() {
        let point = |ms: u64, depth: u64, hits: u64, misses: u64| {
            let reg = crate::metrics::MetricsRegistry::new();
            reg.counter(&format!("{STAGE_BUSY_PREFIX}s"))
                .add(ms * 500_000);
            reg.gauge(&format!("{QUEUE_CAPACITY_PREFIX}recycle/g0"))
                .set(4);
            reg.gauge(&format!("{QUEUE_DEPTH_PREFIX}recycle/g0"))
                .set(depth);
            reg.counter("disk/d0/prefetch_hit").add(hits);
            reg.counter("disk/d0/prefetch_miss").add(misses);
            TimestampedSnapshot {
                elapsed: Duration::from_millis(ms),
                snapshot: reg.snapshot(),
            }
        };
        let w = vec![
            point(0, 0, 10, 10),
            point(50, 0, 10, 30),
            point(100, 4, 10, 50),
        ];
        let d = diagnose_window(&w).unwrap();
        let q = &d.queue_findings[0];
        assert_eq!((q.name.as_str(), q.capacity), ("recycle/g0", 4));
        assert!((q.empty_frac - 2.0 / 3.0).abs() < 1e-9);
        assert!((q.full_frac - 1.0 / 3.0).abs() < 1e-9);
        // Only the window's deltas count: 0 hits, 40 misses.
        let p = d.prefetch.unwrap();
        assert_eq!((p.hits, p.misses), (0, 40));
        assert!(p.hit_rate() < PREFETCH_WARN);
    }

    /// Build a rank report with given wall time and received-byte counters
    /// credited to it by its peers.
    fn cluster_rank(
        rank: usize,
        nodes: usize,
        wall_ms: u64,
        send_to_next: u64,
        comm_ms: u64,
    ) -> crate::cluster_report::RankReport {
        let reg = crate::metrics::MetricsRegistry::new();
        reg.counter(&format!("comm/bytes/{rank}->{}", (rank + 1) % nodes))
            .add(send_to_next);
        reg.histogram(&format!("comm/send_ns/r{rank}"))
            .record(comm_ms * 1_000_000);
        crate::cluster_report::RankReport {
            rank,
            wall: Duration::from_millis(wall_ms),
            reports: Vec::new(),
            metrics: reg.snapshot(),
        }
    }

    #[test]
    fn cluster_diagnosis_names_the_straggler() {
        let mut cr = crate::cluster_report::ClusterReport::new(4);
        for rank in 0..4 {
            let wall = if rank == 2 { 400 } else { 100 };
            cr.push(cluster_rank(rank, 4, wall, 1000, 1));
        }
        let d = diagnose_cluster(&cr);
        assert_eq!(d.straggler, Some(2));
        assert_eq!(d.hot_rank, None);
        assert!(d
            .recommendations
            .iter()
            .any(|r| r.contains("rank 2 is a straggler")));
        assert!(d.render().contains("straggler"));
    }

    #[test]
    fn cluster_diagnosis_names_the_hot_rank_of_a_skewed_exchange() {
        let mut cr = crate::cluster_report::ClusterReport::new(4);
        for rank in 0..4 {
            // Everyone sends to its neighbor; rank 3 sends a flood to rank 0.
            let bytes = if rank == 3 { 100_000 } else { 1000 };
            cr.push(cluster_rank(rank, 4, 100, bytes, 1));
        }
        let d = diagnose_cluster(&cr);
        assert_eq!(d.hot_rank, Some(0));
        assert_eq!(d.straggler, None);
        let json = d.to_json_value();
        assert_eq!(
            json.get("hot_rank").and_then(crate::json::Json::as_u64),
            Some(0)
        );
        assert!(json.get("straggler").is_some());
    }

    #[test]
    fn cluster_diagnosis_flags_comm_bound_ranks() {
        let mut cr = crate::cluster_report::ClusterReport::new(2);
        // Rank 0 spends 80 of its 100ms wall inside sends; rank 1 does not.
        cr.push(cluster_rank(0, 2, 100, 1000, 80));
        cr.push(cluster_rank(1, 2, 100, 1000, 1));
        let d = diagnose_cluster(&cr);
        assert!(d.ranks[0].comm_bound);
        assert!(!d.ranks[1].comm_bound);
        assert!(d
            .recommendations
            .iter()
            .any(|r| r.contains("rank 0 is comm-bound")));
    }

    #[test]
    fn balanced_cluster_diagnosis_is_quiet() {
        let mut cr = crate::cluster_report::ClusterReport::new(3);
        for rank in 0..3 {
            cr.push(cluster_rank(rank, 3, 100, 1000, 1));
        }
        let d = diagnose_cluster(&cr);
        assert_eq!(d.straggler, None);
        assert_eq!(d.hot_rank, None);
        assert!(d
            .recommendations
            .iter()
            .any(|r| r.contains("balanced and compute-bound")));
    }
}
