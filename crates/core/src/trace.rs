//! Causal tracing: per-buffer spans, the flight recorder, and watchdog
//! post-mortems.
//!
//! Aggregate metrics (PR 1–2) say which stage is busy *on average*; they
//! cannot explain a slow round, a tail-latency spike, or a hung farm.  This
//! module records *what actually happened*, cheaply enough to leave on:
//!
//! * every buffer carries a **trace id** (assigned by the source when it
//!   injects a round), and
//! * every stage transition — source-inject, accept, work, convey, recycle,
//!   farm turnstile wait, I/O-scheduler prefetch hit/miss — appends a
//!   fixed-size [`SpanRec`] into a per-thread **flight recorder ring**
//!   ([`SpanRing`]).
//!
//! The ring is bounded (overwrite-oldest), allocation-free on the hot path,
//! and entirely absent when no [`TraceSink`] is installed: stages hold an
//! `Option<Arc<SpanRing>>` that is `None`, so the untraced cost is one
//! never-taken branch per transition (the same zero-cost idiom as
//! [`Observer`](crate::Observer)).
//!
//! From the collected span log, [`crate::critical_path`] reconstructs
//! per-round buffer timelines, and [`TraceSink::to_chrome_trace`] exports
//! the spans with *flow events* linking each buffer's journey across stage
//! tracks (loadable in <https://ui.perfetto.dev>).
//!
//! On top of the recorder sits the **watchdog**
//! ([`Program::set_watchdog`](crate::Program::set_watchdog)): if no span is
//! recorded pipeline-wide for a configurable timeout, it assembles a
//! [`Postmortem`] — per-thread state with the last N spans, live queue
//! depths, farm turnstile positions, and a best-guess culprit — renders it
//! to stderr and optionally a JSON artifact, then aborts the program (or
//! keeps waiting, per [`WatchdogAction`]).

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::json::Json;

/// Sentinel `pipeline` value for spans not tied to any pipeline (the I/O
/// scheduler's prefetch spans).
pub const IO_PIPELINE: u32 = u32::MAX;

/// Sentinel `pipeline` value for cluster-communication spans (p2p sends and
/// receives, collectives) recorded by a `Communicator` rather than a
/// pipeline stage.
pub const COMM_PIPELINE: u32 = u32::MAX - 1;

/// Default number of span slots per thread ring.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Trace context that rides every fabric message envelope: which rank
/// originated the message, the trace id of the buffer (or collective) it
/// carries, and the sender's per-communicator sequence number.
///
/// This is the **cross-node causality contract**: a receiver records its
/// `comm-recv` span under the *sender's* trace id, so the Chrome-trace
/// exporter can stitch one flow arrow from the sending rank's pipeline
/// through the fabric into the receiving rank's pipeline.  The simulated
/// fabric passes the struct by value; a network transport must carry
/// [`TraceCtx::encode`]'s fixed [`TraceCtx::WIRE_LEN`]-byte frame header
/// (all fields little-endian) so traces survive the socket boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Rank that originated the message.
    pub origin: u32,
    /// Trace id of the buffer or collective the message belongs to
    /// (0 = untraced).
    pub trace_id: u64,
    /// The sender's send/collective sequence number when it sent.
    pub seq: u64,
}

impl TraceCtx {
    /// Encoded size in bytes: origin (4) + trace_id (8) + seq (8).
    pub const WIRE_LEN: usize = 20;

    /// The "no tracing" context (untraced runs send this).
    pub const NONE: TraceCtx = TraceCtx {
        origin: 0,
        trace_id: 0,
        seq: 0,
    };

    /// True when the context carries no trace id (untraced message).
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }

    /// Fixed-size little-endian wire encoding (the TCP frame-header
    /// contract for the trace context).
    pub fn encode(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[0..4].copy_from_slice(&self.origin.to_le_bytes());
        out[4..12].copy_from_slice(&self.trace_id.to_le_bytes());
        out[12..20].copy_from_slice(&self.seq.to_le_bytes());
        out
    }

    /// Parse an encoding written by [`TraceCtx::encode`].  `None` when the
    /// slice is not exactly [`TraceCtx::WIRE_LEN`] bytes.
    pub fn decode(bytes: &[u8]) -> Option<TraceCtx> {
        if bytes.len() != Self::WIRE_LEN {
            return None;
        }
        Some(TraceCtx {
            origin: u32::from_le_bytes(bytes[0..4].try_into().ok()?),
            trace_id: u64::from_le_bytes(bytes[4..12].try_into().ok()?),
            seq: u64::from_le_bytes(bytes[12..20].try_into().ok()?),
        })
    }
}

/// What a [`SpanRec`] measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// The source injected a buffer for a new round (waiting for a free
    /// buffer from the recycle queue is part of the preceding gap, not of
    /// this span; the span covers the push into the first stage's queue).
    SourceInject,
    /// A stage waited on and popped its input queue.
    Accept,
    /// A stage's own computation between accepting a buffer and starting to
    /// convey it.
    Work,
    /// A stage pushed a buffer into its output queue (includes time blocked
    /// on a full queue).
    Convey,
    /// The sink returned a buffer to its pipeline's recycle queue.
    Recycle,
    /// An ordered farm replica waited at the turnstile for its round's turn
    /// to emit.
    TurnWait,
    /// The I/O scheduler served a read from its prefetch cache.
    PrefetchHit,
    /// The I/O scheduler had to issue a blocking read (prefetch miss).
    PrefetchMiss,
    /// The live controller applied an actuation (grew a farm, resized a
    /// buffer pool, retuned an I/O depth).  Not tied to any buffer; the
    /// `round` field carries the decision sequence number.
    Actuate,
    /// A `Communicator` handed a tagged point-to-point message to the
    /// fabric.  `round` carries the sender's send sequence; `trace_id` the
    /// buffer's id when the caller propagated one.
    CommSend,
    /// A `Communicator` waited for and received a point-to-point message.
    /// `round` and `trace_id` come from the *sender's* [`TraceCtx`], which
    /// is what stitches the cross-rank flow.
    CommRecv,
    /// One rank's participation in a `barrier` call (entry to release).
    Barrier,
    /// One rank's participation in a `broadcast` call.
    Broadcast,
    /// One rank's participation in an `allgather` call.
    Allgather,
    /// One rank's participation in an `alltoallv` call.
    Alltoallv,
}

impl TraceKind {
    /// Short stable label (used in Chrome traces and JSON).
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::SourceInject => "inject",
            TraceKind::Accept => "accept",
            TraceKind::Work => "work",
            TraceKind::Convey => "convey",
            TraceKind::Recycle => "recycle",
            TraceKind::TurnWait => "turn-wait",
            TraceKind::PrefetchHit => "prefetch-hit",
            TraceKind::PrefetchMiss => "prefetch-miss",
            TraceKind::Actuate => "actuate",
            TraceKind::CommSend => "comm-send",
            TraceKind::CommRecv => "comm-recv",
            TraceKind::Barrier => "barrier",
            TraceKind::Broadcast => "broadcast",
            TraceKind::Allgather => "allgather",
            TraceKind::Alltoallv => "alltoallv",
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "inject" => TraceKind::SourceInject,
            "accept" => TraceKind::Accept,
            "work" => TraceKind::Work,
            "convey" => TraceKind::Convey,
            "recycle" => TraceKind::Recycle,
            "turn-wait" => TraceKind::TurnWait,
            "prefetch-hit" => TraceKind::PrefetchHit,
            "prefetch-miss" => TraceKind::PrefetchMiss,
            "actuate" => TraceKind::Actuate,
            "comm-send" => TraceKind::CommSend,
            "comm-recv" => TraceKind::CommRecv,
            "barrier" => TraceKind::Barrier,
            "broadcast" => TraceKind::Broadcast,
            "allgather" => TraceKind::Allgather,
            "alltoallv" => TraceKind::Alltoallv,
            _ => return None,
        })
    }

    /// True for span kinds that consume a buffer from upstream.
    fn is_intake(self) -> bool {
        matches!(self, TraceKind::Accept | TraceKind::Recycle)
    }

    /// True for span kinds that hand a buffer downstream.
    fn is_emit(self) -> bool {
        matches!(self, TraceKind::Convey | TraceKind::SourceInject)
    }
}

/// One fixed-size flight-recorder record: `kind` happened to the buffer
/// `(pipeline, round, trace_id)` between `start_ns` and `end_ns`
/// (nanoseconds since the owning [`TraceSink`]'s epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// What happened.
    pub kind: TraceKind,
    /// Pipeline the buffer belongs to ([`IO_PIPELINE`] for scheduler spans).
    pub pipeline: u32,
    /// Round of the buffer involved.
    pub round: u64,
    /// Trace id of the buffer involved (0 when the transition involved no
    /// traced buffer — e.g. a pop that returned a caboose).
    pub trace_id: u64,
    /// Span start, ns since the sink epoch.
    pub start_ns: u64,
    /// Span end, ns since the sink epoch.
    pub end_ns: u64,
}

impl SpanRec {
    const EMPTY: SpanRec = SpanRec {
        kind: TraceKind::Accept,
        pipeline: 0,
        round: 0,
        trace_id: 0,
        start_ns: 0,
        end_ns: 0,
    };

    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// JSON object for this record.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str(self.kind.label().into())),
            ("pipeline".into(), Json::Num(self.pipeline as f64)),
            ("round".into(), Json::Num(self.round as f64)),
            ("trace_id".into(), Json::Num(self.trace_id as f64)),
            ("start_ns".into(), Json::Num(self.start_ns as f64)),
            ("end_ns".into(), Json::Num(self.end_ns as f64)),
        ])
    }

    /// Parse a record written by [`SpanRec::to_json`].
    pub fn from_json(v: &Json) -> Option<SpanRec> {
        Some(SpanRec {
            kind: TraceKind::from_label(v.get("kind")?.as_str()?)?,
            pipeline: v.get("pipeline")?.as_u64()? as u32,
            round: v.get("round")?.as_u64()?,
            trace_id: v.get("trace_id")?.as_u64()?,
            start_ns: v.get("start_ns")?.as_u64()?,
            end_ns: v.get("end_ns")?.as_u64()?,
        })
    }
}

/// Coarse state a traced thread advertises for the watchdog's post-mortem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Not yet past its first transition.
    Starting,
    /// Executing stage code (or the source generating a round).
    Busy,
    /// Blocked popping an input (or recycle) queue.
    BlockedAccept,
    /// Blocked pushing an output queue.
    BlockedConvey,
    /// Blocked at an ordered farm's emission turnstile.
    TurnWait,
    /// Finished; the thread has exited (or is draining for exit).
    Done,
}

impl ThreadState {
    fn as_u64(self) -> u64 {
        match self {
            ThreadState::Starting => 0,
            ThreadState::Busy => 1,
            ThreadState::BlockedAccept => 2,
            ThreadState::BlockedConvey => 3,
            ThreadState::TurnWait => 4,
            ThreadState::Done => 5,
        }
    }

    fn from_u64(v: u64) -> ThreadState {
        match v {
            1 => ThreadState::Busy,
            2 => ThreadState::BlockedAccept,
            3 => ThreadState::BlockedConvey,
            4 => ThreadState::TurnWait,
            5 => ThreadState::Done,
            _ => ThreadState::Starting,
        }
    }

    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            ThreadState::Starting => "starting",
            ThreadState::Busy => "busy",
            ThreadState::BlockedAccept => "blocked-accept",
            ThreadState::BlockedConvey => "blocked-convey",
            ThreadState::TurnWait => "turn-wait",
            ThreadState::Done => "done",
        }
    }
}

impl fmt::Display for ThreadState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One thread's flight recorder: a fixed number of [`SpanRec`] slots
/// overwritten oldest-first, plus the thread's advertised [`ThreadState`].
///
/// `record` never allocates: it claims a slot with one `fetch_add` and
/// overwrites it under that slot's (uncontended) mutex — the mutexes exist
/// only so the watchdog can snapshot a consistent record without `unsafe`.
/// Memory is bounded at `capacity * size_of::<SpanRec>()` per thread for
/// the life of the run.
pub struct SpanRing {
    name: String,
    /// Track group (cluster rank) this thread belongs to, if any; grouped
    /// rings render under a per-node track group in the Chrome export.
    group: Option<u32>,
    epoch: Instant,
    slots: Box<[Mutex<SpanRec>]>,
    /// Total records ever written; `cursor % slots.len()` is the next slot.
    cursor: AtomicU64,
    /// Buffers taken in (accept/recycle spans recorded).
    intakes: AtomicU64,
    /// Buffers handed on (convey/inject spans recorded).
    emits: AtomicU64,
    state: AtomicU64,
    state_since_ns: AtomicU64,
    /// Shared with the owning sink: bumped on every record, pipeline-wide.
    last_activity_ns: Arc<AtomicU64>,
}

impl SpanRing {
    fn new(
        name: String,
        group: Option<u32>,
        epoch: Instant,
        capacity: usize,
        last: Arc<AtomicU64>,
    ) -> SpanRing {
        let slots: Vec<Mutex<SpanRec>> = (0..capacity.max(1))
            .map(|_| Mutex::new(SpanRec::EMPTY))
            .collect();
        SpanRing {
            name,
            group,
            epoch,
            slots: slots.into_boxed_slice(),
            cursor: AtomicU64::new(0),
            intakes: AtomicU64::new(0),
            emits: AtomicU64::new(0),
            state: AtomicU64::new(ThreadState::Starting.as_u64()),
            state_since_ns: AtomicU64::new(0),
            last_activity_ns: last,
        }
    }

    /// Name of the thread this ring records (`program/task`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Track group (cluster rank) this thread was registered under, if any.
    pub fn group(&self) -> Option<u32> {
        self.group
    }

    /// Nanoseconds since the owning sink's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Convert an [`Instant`] into sink-epoch nanoseconds (0 if earlier
    /// than the epoch).
    pub fn ns_of(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_nanos() as u64)
    }

    /// Append one span record, overwriting the oldest when full.
    pub fn record(
        &self,
        kind: TraceKind,
        pipeline: u32,
        round: u64,
        trace_id: u64,
        start_ns: u64,
        end_ns: u64,
    ) {
        let i = self.cursor.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        *slot.lock() = SpanRec {
            kind,
            pipeline,
            round,
            trace_id,
            start_ns,
            end_ns,
        };
        if kind.is_intake() {
            self.intakes.fetch_add(1, Ordering::Relaxed);
        } else if kind.is_emit() {
            self.emits.fetch_add(1, Ordering::Relaxed);
        }
        self.last_activity_ns.fetch_max(end_ns, Ordering::Relaxed);
    }

    /// Advertise what this thread is currently doing (for post-mortems).
    pub fn set_state(&self, state: ThreadState) {
        self.state.store(state.as_u64(), Ordering::Relaxed);
        self.state_since_ns.store(self.now_ns(), Ordering::Relaxed);
    }

    /// Current advertised state and how long the thread has been in it.
    pub fn state(&self) -> (ThreadState, Duration) {
        let st = ThreadState::from_u64(self.state.load(Ordering::Relaxed));
        let since = self.state_since_ns.load(Ordering::Relaxed);
        let for_ns = self.now_ns().saturating_sub(since);
        (st, Duration::from_nanos(for_ns))
    }

    /// Buffers this thread took in (accepts + recycles recorded).
    pub fn intakes(&self) -> u64 {
        self.intakes.load(Ordering::Relaxed)
    }

    /// Buffers this thread handed on (conveys + injects recorded).
    pub fn emits(&self) -> u64 {
        self.emits.load(Ordering::Relaxed)
    }

    /// Records written over the ring's lifetime (may exceed capacity).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Copy out the live records, oldest first.
    ///
    /// Concurrent writers may overwrite slots while the copy runs; each
    /// individual record is still read consistently (per-slot lock), which
    /// is all a diagnostic snapshot needs.
    pub fn snapshot(&self) -> Vec<SpanRec> {
        let n = self.cursor.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let mut out = Vec::with_capacity(n.min(cap) as usize);
        if n <= cap {
            for slot in &self.slots[..n as usize] {
                out.push(*slot.lock());
            }
        } else {
            let split = (n % cap) as usize;
            for slot in &self.slots[split..] {
                out.push(*slot.lock());
            }
            for slot in &self.slots[..split] {
                out.push(*slot.lock());
            }
        }
        out
    }
}

impl fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanRing")
            .field("name", &self.name)
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// The collected span log of one thread.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadLog {
    /// Thread name (`program/task`).
    pub thread: String,
    /// Live records, oldest first.
    pub spans: Vec<SpanRec>,
}

impl ThreadLog {
    /// The task part of the thread name (after the `program/` prefix).
    pub fn task(&self) -> &str {
        self.thread
            .split_once('/')
            .map_or(self.thread.as_str(), |(_, t)| t)
    }

    /// JSON object for this log.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("thread".into(), Json::Str(self.thread.clone())),
            (
                "spans".into(),
                Json::Arr(self.spans.iter().map(SpanRec::to_json).collect()),
            ),
        ])
    }

    /// Parse a log written by [`ThreadLog::to_json`].
    pub fn from_json(v: &Json) -> Option<ThreadLog> {
        Some(ThreadLog {
            thread: v.get("thread")?.as_str()?.to_string(),
            spans: v
                .get("spans")?
                .as_arr()?
                .iter()
                .map(SpanRec::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// Destination for causal traces: owns the epoch all spans are measured
/// against, hands out per-thread [`SpanRing`]s, assigns buffer trace ids,
/// and exports the collected log.
///
/// Install one on a program with
/// [`Program::set_trace_sink`](crate::Program::set_trace_sink); the sink
/// outlives the run, so the log can be collected after `run()` returns.
/// One sink may serve several programs (e.g. both passes of a sort) — ring
/// names carry the program name, keeping threads distinct.
pub struct TraceSink {
    epoch: Instant,
    ring_capacity: usize,
    rings: Mutex<Vec<Arc<SpanRing>>>,
    last_activity_ns: Arc<AtomicU64>,
    next_trace_id: AtomicU64,
}

impl TraceSink {
    /// A sink whose rings hold [`DEFAULT_RING_CAPACITY`] spans each.
    pub fn new() -> Arc<TraceSink> {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A sink whose rings hold `capacity` spans each (min 1).
    pub fn with_ring_capacity(capacity: usize) -> Arc<TraceSink> {
        Arc::new(TraceSink {
            epoch: Instant::now(),
            ring_capacity: capacity.max(1),
            rings: Mutex::new(Vec::new()),
            last_activity_ns: Arc::new(AtomicU64::new(0)),
            next_trace_id: AtomicU64::new(1),
        })
    }

    /// Register (and return) the flight-recorder ring for thread `name`.
    pub fn register_thread(&self, name: impl Into<String>) -> Arc<SpanRing> {
        self.register(name.into(), None)
    }

    /// Register a ring under track group `group` (a cluster rank): the
    /// Chrome export renders all of a group's threads under one per-node
    /// process track instead of the flat default.
    pub fn register_thread_in_group(&self, name: impl Into<String>, group: u32) -> Arc<SpanRing> {
        self.register(name.into(), Some(group))
    }

    fn register(&self, name: String, group: Option<u32>) -> Arc<SpanRing> {
        let ring = Arc::new(SpanRing::new(
            name,
            group,
            self.epoch,
            self.ring_capacity,
            Arc::clone(&self.last_activity_ns),
        ));
        self.rings.lock().push(Arc::clone(&ring));
        ring
    }

    /// A fresh non-zero trace id for a buffer about to be injected.
    pub fn next_trace_id(&self) -> u64 {
        self.next_trace_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds since the sink's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Mark "activity now": called at run start so a watchdog's idle clock
    /// starts from the run, not from sink creation.
    pub fn touch(&self) {
        self.last_activity_ns
            .fetch_max(self.now_ns(), Ordering::Relaxed);
    }

    /// How long since *any* ring recorded a span.
    pub fn idle(&self) -> Duration {
        let last = self.last_activity_ns.load(Ordering::Relaxed);
        Duration::from_nanos(self.now_ns().saturating_sub(last))
    }

    /// Snapshot of all registered rings (for the watchdog).
    pub(crate) fn rings(&self) -> Vec<Arc<SpanRing>> {
        self.rings.lock().clone()
    }

    /// Collect every thread's live records, oldest first per thread.
    pub fn collect(&self) -> Vec<ThreadLog> {
        self.rings
            .lock()
            .iter()
            .map(|r| ThreadLog {
                thread: r.name().to_string(),
                spans: r.snapshot(),
            })
            .collect()
    }

    /// Export the collected spans as a Chrome trace-event JSON document:
    /// one track per traced thread with a slice per span, plus *flow
    /// events* stitching each trace id's spans together across tracks —
    /// Perfetto draws an arrow following the buffer from stage to stage.
    ///
    /// Rings registered with [`TraceSink::register_thread_in_group`] render
    /// under a per-group *process* track (`pid = group + 2`, named
    /// `node{group}`), so a cluster run shows one track group per rank and
    /// the flow arrows cross rank boundaries; ungrouped rings keep the flat
    /// single-process layout (`pid = 1`).
    pub fn to_chrome_trace(&self) -> String {
        let rings = self.rings.lock().clone();
        let mut events: Vec<Json> = Vec::new();
        let us = |ns: u64| Json::Num(ns as f64 / 1_000.0);
        let pid_of = |group: Option<u32>| group.map_or(1u64, |g| g as u64 + 2);
        // Name each grouped process track once.
        let mut named_pids: Vec<u64> = Vec::new();
        // (pid, tid, span) of every traced-buffer span, for flow stitching.
        let mut flows: Vec<(u64, u64, SpanRec)> = Vec::new();
        for (i, ring) in rings.iter().enumerate() {
            let tid = i as u64 + 1;
            let pid = pid_of(ring.group());
            if let Some(g) = ring.group() {
                if !named_pids.contains(&pid) {
                    named_pids.push(pid);
                    events.push(Json::Obj(vec![
                        ("name".into(), Json::Str("process_name".into())),
                        ("ph".into(), Json::Str("M".into())),
                        ("pid".into(), Json::Num(pid as f64)),
                        (
                            "args".into(),
                            Json::Obj(vec![("name".into(), Json::Str(format!("node{g}")))]),
                        ),
                    ]));
                }
            }
            events.push(Json::Obj(vec![
                ("name".into(), Json::Str("thread_name".into())),
                ("ph".into(), Json::Str("M".into())),
                ("pid".into(), Json::Num(pid as f64)),
                ("tid".into(), Json::Num(tid as f64)),
                (
                    "args".into(),
                    Json::Obj(vec![("name".into(), Json::Str(ring.name().to_string()))]),
                ),
            ]));
            for s in ring.snapshot() {
                events.push(Json::Obj(vec![
                    ("name".into(), Json::Str(s.kind.label().into())),
                    ("cat".into(), Json::Str("span".into())),
                    ("ph".into(), Json::Str("X".into())),
                    ("pid".into(), Json::Num(pid as f64)),
                    ("tid".into(), Json::Num(tid as f64)),
                    ("ts".into(), us(s.start_ns)),
                    ("dur".into(), us(s.dur_ns().max(1))),
                    (
                        "args".into(),
                        Json::Obj(vec![
                            ("pipeline".into(), Json::Num(s.pipeline as f64)),
                            ("round".into(), Json::Num(s.round as f64)),
                            ("trace_id".into(), Json::Num(s.trace_id as f64)),
                        ]),
                    ),
                ]));
                if s.trace_id != 0 {
                    flows.push((pid, tid, s));
                }
            }
        }
        // Flow events: for each trace id, one start ("s") at the earliest
        // span, steps ("t") in between, and a finish ("f", binding to the
        // enclosing slice) at the last.  `ts` sits just inside each span's
        // slice so the viewer can attach the arrow.
        flows.sort_by_key(|(_, _, s)| (s.trace_id, s.start_ns, s.end_ns));
        let mut i = 0;
        while i < flows.len() {
            let id = flows[i].2.trace_id;
            let mut j = i;
            while j < flows.len() && flows[j].2.trace_id == id {
                j += 1;
            }
            if j - i >= 2 {
                for (k, (pid, tid, s)) in flows[i..j].iter().enumerate() {
                    let ph = if i + k == i {
                        "s"
                    } else if i + k == j - 1 {
                        "f"
                    } else {
                        "t"
                    };
                    // The id is a hex *string*: collective trace ids set
                    // bit 62, beyond f64's exact-integer range, and a
                    // numeric id would collapse distinct collectives.
                    let mut ev = vec![
                        ("name".into(), Json::Str("buffer".into())),
                        ("cat".into(), Json::Str("flow".into())),
                        ("ph".into(), Json::Str(ph.into())),
                        ("id".into(), Json::Str(format!("{id:x}"))),
                        ("pid".into(), Json::Num(*pid as f64)),
                        ("tid".into(), Json::Num(*tid as f64)),
                        ("ts".into(), us(s.start_ns)),
                    ];
                    if ph == "f" {
                        ev.push(("bp".into(), Json::Str("e".into())));
                    }
                    events.push(Json::Obj(ev));
                }
            }
            i = j;
        }
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(events)),
            ("displayTimeUnit".into(), Json::Str("ms".into())),
        ])
        .to_string()
    }
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink")
            .field("ring_capacity", &self.ring_capacity)
            .field("threads", &self.rings.lock().len())
            .finish()
    }
}

/// What the watchdog does once it has reported a stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogAction {
    /// Cancel the program: queues close, stages unblock, and
    /// [`Program::run`](crate::Program::run) returns
    /// [`FgError::Stalled`](crate::FgError::Stalled) naming the culprit.
    Abort,
    /// Report (once per stall episode) but let the program keep waiting.
    KeepWaiting,
}

/// Watchdog configuration: fire when no span is recorded pipeline-wide for
/// `timeout`.
#[derive(Debug, Clone)]
pub struct WatchdogCfg {
    /// Pipeline-wide idle time that counts as a stall.
    pub timeout: Duration,
    /// What to do after reporting.
    pub action: WatchdogAction,
    /// Where to write the post-mortem JSON artifact (stderr always gets the
    /// rendered report).
    pub artifact: Option<PathBuf>,
    /// How many trailing spans per thread the post-mortem keeps.
    pub last_spans: usize,
}

impl WatchdogCfg {
    /// Abort-on-stall watchdog with the given timeout and no artifact.
    pub fn new(timeout: Duration) -> WatchdogCfg {
        WatchdogCfg {
            timeout,
            action: WatchdogAction::Abort,
            artifact: None,
            last_spans: 16,
        }
    }

    /// Set the action taken after reporting.
    pub fn action(mut self, action: WatchdogAction) -> WatchdogCfg {
        self.action = action;
        self
    }

    /// Write the post-mortem JSON to `path` in addition to stderr.
    pub fn artifact(mut self, path: impl Into<PathBuf>) -> WatchdogCfg {
        self.artifact = Some(path.into());
        self
    }
}

/// One thread's entry in a [`Postmortem`].
#[derive(Debug, Clone)]
pub struct ThreadPostmortem {
    /// Thread name (`program/task`).
    pub thread: String,
    /// Advertised state when the stall was detected.
    pub state: ThreadState,
    /// How long the thread had been in that state.
    pub in_state_for: Duration,
    /// Buffers taken in over the thread's lifetime.
    pub intakes: u64,
    /// Buffers handed on over the thread's lifetime.
    pub emits: u64,
    /// The last spans the thread recorded (oldest first).
    pub last_spans: Vec<SpanRec>,
}

/// One queue's entry in a [`Postmortem`].
#[derive(Debug, Clone)]
pub struct QueuePostmortem {
    /// Queue name as built by the planner.
    pub queue: String,
    /// Items in the queue when the stall was detected (approximate).
    pub depth: usize,
    /// Queue capacity.
    pub capacity: usize,
}

/// One ordered-farm turnstile position in a [`Postmortem`].
#[derive(Debug, Clone)]
pub struct TurnstilePostmortem {
    /// Replica-group (farm) name.
    pub group: String,
    /// Pipeline the turnstile position belongs to.
    pub pipeline: u32,
    /// The round the turnstile is waiting to let through next.
    pub next_round: u64,
}

/// Snapshot of a stalled program, assembled by the watchdog.
#[derive(Debug, Clone)]
pub struct Postmortem {
    /// Program name.
    pub program: String,
    /// How long the pipeline had recorded no span when the snapshot was
    /// taken.
    pub stalled_for: Duration,
    /// Per-thread state, counters, and trailing spans.
    pub threads: Vec<ThreadPostmortem>,
    /// Live depth of every queue in the program.
    pub queues: Vec<QueuePostmortem>,
    /// Ordered-farm turnstile positions.
    pub turnstiles: Vec<TurnstilePostmortem>,
    /// Best-guess culprit task name, if the heuristic found one.
    pub culprit: Option<String>,
    /// Resource snapshot at the moment of the stall (the threads are still
    /// alive, so per-thread CPU rows are present) — see
    /// [`ResourceReport`](crate::profile::ResourceReport).
    pub resources: Option<crate::profile::ResourceReport>,
}

impl Postmortem {
    /// JSON artifact for this post-mortem.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::Obj(vec![
            ("program".into(), Json::Str(self.program.clone())),
            (
                "stalled_for_ms".into(),
                Json::Num(self.stalled_for.as_secs_f64() * 1_000.0),
            ),
            (
                "culprit".into(),
                match &self.culprit {
                    Some(c) => Json::Str(c.clone()),
                    None => Json::Null,
                },
            ),
            (
                "threads".into(),
                Json::Arr(
                    self.threads
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("thread".into(), Json::Str(t.thread.clone())),
                                ("state".into(), Json::Str(t.state.label().into())),
                                (
                                    "in_state_for_ms".into(),
                                    Json::Num(t.in_state_for.as_secs_f64() * 1_000.0),
                                ),
                                ("intakes".into(), Json::Num(t.intakes as f64)),
                                ("emits".into(), Json::Num(t.emits as f64)),
                                (
                                    "last_spans".into(),
                                    Json::Arr(t.last_spans.iter().map(SpanRec::to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "queues".into(),
                Json::Arr(
                    self.queues
                        .iter()
                        .map(|q| {
                            Json::Obj(vec![
                                ("queue".into(), Json::Str(q.queue.clone())),
                                ("depth".into(), Json::Num(q.depth as f64)),
                                ("capacity".into(), Json::Num(q.capacity as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "turnstiles".into(),
                Json::Arr(
                    self.turnstiles
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("group".into(), Json::Str(t.group.clone())),
                                ("pipeline".into(), Json::Num(t.pipeline as f64)),
                                ("next_round".into(), Json::Num(t.next_round as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        if let Some(resources) = &self.resources {
            if let Json::Obj(members) = &mut doc {
                members.push(("resources".into(), resources.to_json_value()));
            }
        }
        doc
    }

    /// Human-readable report (what the watchdog prints to stderr).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== FG watchdog: `{}` stalled for {:.1}s ===\n",
            self.program,
            self.stalled_for.as_secs_f64()
        ));
        match &self.culprit {
            Some(c) => out.push_str(&format!("likely culprit: {c}\n")),
            None => out.push_str("likely culprit: (none identified)\n"),
        }
        out.push_str("threads:\n");
        for t in &self.threads {
            out.push_str(&format!(
                "  {:<28} {:<15} for {:>7.1}s  in={} out={}\n",
                t.thread,
                t.state.label(),
                t.in_state_for.as_secs_f64(),
                t.intakes,
                t.emits
            ));
            if let Some(s) = t.last_spans.last() {
                out.push_str(&format!(
                    "    last span: {} p{} r{} id{} [{:.3}ms..{:.3}ms]\n",
                    s.kind.label(),
                    s.pipeline,
                    s.round,
                    s.trace_id,
                    s.start_ns as f64 / 1e6,
                    s.end_ns as f64 / 1e6,
                ));
            }
        }
        out.push_str("queues:\n");
        for q in &self.queues {
            out.push_str(&format!(
                "  {:<28} {}/{}{}\n",
                q.queue,
                q.depth,
                q.capacity,
                if q.depth >= q.capacity { "  FULL" } else { "" }
            ));
        }
        if !self.turnstiles.is_empty() {
            out.push_str("turnstiles:\n");
            for t in &self.turnstiles {
                out.push_str(&format!(
                    "  {:<28} pipeline#{} waiting for round {}\n",
                    t.group, t.pipeline, t.next_round
                ));
            }
        }
        if let Some(resources) = self.resources.as_ref().filter(|r| !r.is_empty()) {
            out.push_str("resources:\n");
            for line in resources.render().lines() {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out
    }
}

/// Best-guess culprit among a post-mortem's threads.
///
/// A stage that took in more buffers than it handed on is hoarding them —
/// with a bounded pool, a hoarder starves the source and wedges everyone
/// else, so the largest positive intake/emit imbalance wins.  When no
/// thread is imbalanced (e.g. a genuinely slow stage), fall back to the
/// thread longest in a blocked state, preferring stage threads over the
/// implicit source/sink (whose blocking is a symptom, not a cause).
pub fn guess_culprit(threads: &[ThreadPostmortem]) -> Option<String> {
    let active = |t: &&ThreadPostmortem| t.state != ThreadState::Done;
    let hoarder = threads
        .iter()
        .filter(active)
        .filter(|t| t.intakes > t.emits)
        .max_by_key(|t| t.intakes - t.emits);
    if let Some(t) = hoarder {
        return Some(t.thread.clone());
    }
    let is_plumbing =
        |t: &&ThreadPostmortem| t.thread.ends_with("/source") || t.thread.ends_with("/sink");
    let blocked = |t: &&ThreadPostmortem| {
        matches!(
            t.state,
            ThreadState::BlockedAccept | ThreadState::BlockedConvey | ThreadState::TurnWait
        ) || t.state == ThreadState::Busy
    };
    threads
        .iter()
        .filter(active)
        .filter(blocked)
        .filter(|t| !is_plumbing(t))
        .max_by_key(|t| t.in_state_for)
        .or_else(|| {
            threads
                .iter()
                .filter(active)
                .filter(blocked)
                .max_by_key(|t| t.in_state_for)
        })
        .map(|t| t.thread.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_records_in_order_until_capacity() {
        let sink = TraceSink::with_ring_capacity(8);
        let ring = sink.register_thread("p/s");
        for i in 0..5 {
            ring.record(TraceKind::Accept, 0, i, i + 1, i * 10, i * 10 + 5);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        for (i, s) in snap.iter().enumerate() {
            assert_eq!(s.round, i as u64);
            assert_eq!(s.trace_id, i as u64 + 1);
        }
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.intakes(), 5);
        assert_eq!(ring.emits(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_on_wrap() {
        let sink = TraceSink::with_ring_capacity(4);
        let ring = sink.register_thread("p/s");
        for i in 0..10u64 {
            ring.record(TraceKind::Convey, 0, i, 0, i, i + 1);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        let rounds: Vec<u64> = snap.iter().map(|s| s.round).collect();
        assert_eq!(rounds, vec![6, 7, 8, 9]);
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.emits(), 10);
    }

    #[test]
    fn sink_assigns_distinct_trace_ids() {
        let sink = TraceSink::new();
        let a = sink.next_trace_id();
        let b = sink.next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn idle_clock_resets_on_record() {
        let sink = TraceSink::with_ring_capacity(4);
        let ring = sink.register_thread("p/s");
        std::thread::sleep(Duration::from_millis(5));
        let idle_before = sink.idle();
        let now = ring.now_ns();
        ring.record(TraceKind::Accept, 0, 0, 1, now, now);
        assert!(sink.idle() < idle_before);
    }

    #[test]
    fn span_rec_json_round_trips() {
        let s = SpanRec {
            kind: TraceKind::TurnWait,
            pipeline: 3,
            round: 17,
            trace_id: 42,
            start_ns: 1000,
            end_ns: 2500,
        };
        let log = ThreadLog {
            thread: "prog/worker#1".into(),
            spans: vec![s],
        };
        let parsed = ThreadLog::from_json(&Json::parse(&log.to_json().to_string()).unwrap());
        assert_eq!(parsed, Some(log));
    }

    #[test]
    fn chrome_trace_links_buffer_spans_with_flows() {
        let sink = TraceSink::with_ring_capacity(16);
        let a = sink.register_thread("p/first");
        let b = sink.register_thread("p/second");
        // Buffer 7 visits both stages; buffer 8 only one (no flow pair).
        a.record(TraceKind::Convey, 0, 0, 7, 100, 200);
        b.record(TraceKind::Accept, 0, 0, 7, 250, 300);
        a.record(TraceKind::Convey, 0, 1, 8, 400, 500);
        let doc = Json::parse(&sink.to_chrome_trace()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("flow"))
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases, vec!["s", "f"], "one flow pair for buffer 7 only");
        let finish = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("f"))
            .unwrap();
        assert_eq!(finish.get("bp").and_then(Json::as_str), Some("e"));
        assert_eq!(finish.get("id").and_then(Json::as_str), Some("7"));
    }

    #[test]
    fn chrome_trace_flow_ids_with_high_bits_stay_distinct() {
        // Collective trace ids set bit 62 — past f64's exact range — so the
        // exporter must not round two adjacent ids onto each other.
        let sink = TraceSink::with_ring_capacity(16);
        let a = sink.register_thread("n0/comm");
        let b = sink.register_thread("n1/comm");
        let base = 1u64 << 62;
        for seq in 0..2u64 {
            a.record(
                TraceKind::Barrier,
                0,
                seq,
                base | seq,
                seq * 100,
                seq * 100 + 10,
            );
            b.record(
                TraceKind::Barrier,
                0,
                seq,
                base | seq,
                seq * 100,
                seq * 100 + 10,
            );
        }
        let doc = Json::parse(&sink.to_chrome_trace()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let ids: std::collections::HashSet<&str> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("flow"))
            .map(|e| e.get("id").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(ids.len(), 2, "adjacent high-bit ids collapsed: {ids:?}");
    }

    #[test]
    fn trace_ctx_wire_round_trips() {
        let ctx = TraceCtx {
            origin: 3,
            trace_id: 0xDEAD_BEEF_CAFE,
            seq: 42,
        };
        let bytes = ctx.encode();
        assert_eq!(bytes.len(), TraceCtx::WIRE_LEN);
        assert_eq!(TraceCtx::decode(&bytes), Some(ctx));
        assert_eq!(TraceCtx::decode(&bytes[..19]), None);
        assert!(TraceCtx::NONE.is_none());
        assert!(!ctx.is_none());
    }

    #[test]
    fn comm_kind_labels_round_trip() {
        for kind in [
            TraceKind::CommSend,
            TraceKind::CommRecv,
            TraceKind::Barrier,
            TraceKind::Broadcast,
            TraceKind::Allgather,
            TraceKind::Alltoallv,
        ] {
            assert_eq!(TraceKind::from_label(kind.label()), Some(kind));
        }
    }

    #[test]
    fn chrome_trace_groups_rings_into_per_node_processes() {
        let sink = TraceSink::with_ring_capacity(16);
        let r0 = sink.register_thread_in_group("node0/send", 0);
        let r1 = sink.register_thread_in_group("node1/recv", 1);
        let ungrouped = sink.register_thread("io/disk0");
        // Buffer 9 crosses from rank 0 to rank 1.
        r0.record(TraceKind::CommSend, COMM_PIPELINE, 0, 9, 100, 200);
        r1.record(TraceKind::CommRecv, COMM_PIPELINE, 0, 9, 250, 300);
        ungrouped.record(TraceKind::PrefetchHit, IO_PIPELINE, 0, 0, 10, 20);
        let doc = Json::parse(&sink.to_chrome_trace()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let proc_names: Vec<(u64, &str)> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .map(|e| {
                (
                    e.get("pid").unwrap().as_u64().unwrap(),
                    e.get("args")
                        .unwrap()
                        .get("name")
                        .unwrap()
                        .as_str()
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(proc_names, vec![(2, "node0"), (3, "node1")]);
        // The flow pair for buffer 9 spans two distinct pids.
        let flow_pids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("flow"))
            .map(|e| e.get("pid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(flow_pids, vec![2, 3]);
        // Ungrouped ring stays on the flat pid 1.
        let io_slice = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("prefetch-hit"))
            .unwrap();
        assert_eq!(io_slice.get("pid").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn culprit_prefers_hoarder_over_blocked() {
        let t = |name: &str, state, secs, intakes, emits| ThreadPostmortem {
            thread: name.to_string(),
            state,
            in_state_for: Duration::from_secs(secs),
            intakes,
            emits,
            last_spans: Vec::new(),
        };
        let threads = vec![
            t("p/source", ThreadState::BlockedAccept, 60, 0, 3),
            t("p/hoard", ThreadState::BlockedAccept, 50, 3, 0),
            t("p/down", ThreadState::BlockedAccept, 55, 0, 0),
        ];
        assert_eq!(guess_culprit(&threads).as_deref(), Some("p/hoard"));
        // Without an imbalance, the longest-blocked stage thread wins and
        // the implicit source is skipped despite blocking longest.
        let threads = vec![
            t("p/source", ThreadState::BlockedAccept, 60, 3, 3),
            t("p/slow", ThreadState::Busy, 40, 3, 3),
            t("p/sink", ThreadState::BlockedAccept, 59, 3, 3),
        ];
        assert_eq!(guess_culprit(&threads).as_deref(), Some("p/slow"));
    }

    #[test]
    fn postmortem_json_and_render_name_culprit() {
        let pm = Postmortem {
            program: "demo".into(),
            stalled_for: Duration::from_secs(2),
            threads: vec![ThreadPostmortem {
                thread: "demo/wedge".into(),
                state: ThreadState::BlockedAccept,
                in_state_for: Duration::from_secs(2),
                intakes: 4,
                emits: 0,
                last_spans: vec![SpanRec::EMPTY],
            }],
            queues: vec![QueuePostmortem {
                queue: "p[0]".into(),
                depth: 2,
                capacity: 2,
            }],
            turnstiles: vec![TurnstilePostmortem {
                group: "farm".into(),
                pipeline: 0,
                next_round: 5,
            }],
            culprit: Some("demo/wedge".into()),
            resources: Some(crate::profile::ResourceReport {
                rss_bytes: 1 << 20,
                rss_peak_bytes: 1 << 20,
                ..crate::profile::ResourceReport::default()
            }),
        };
        let text = pm.render();
        assert!(text.contains("demo/wedge"));
        assert!(text.contains("FULL"));
        assert!(text.contains("round 5"));
        assert!(text.contains("process rss"));
        let json = Json::parse(&pm.to_json().to_string()).unwrap();
        assert_eq!(
            json.get("culprit").and_then(Json::as_str),
            Some("demo/wedge")
        );
        assert_eq!(
            json.get("threads").unwrap().as_arr().unwrap()[0]
                .get("state")
                .and_then(Json::as_str),
            Some("blocked-accept")
        );
    }
}
