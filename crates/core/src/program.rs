//! Declaring and running FG programs.
//!
//! A [`Program`] is a set of pipelines over a set of stages, all running on
//! one node.  Declare stages with [`Program::add_stage`] (or
//! [`Program::add_virtual_stage`]), declare pipelines with
//! [`Program::add_pipeline`] giving each its chain of stages, then call
//! [`Program::run`], which:
//!
//! * adds a **source** and a **sink** to every pipeline and a bounded queue
//!   between each pair of consecutive stages,
//! * allocates each pipeline's buffer pool and recycles buffers
//!   sink → source so memory stays fixed (§II),
//! * treats a stage appearing in several pipelines as the **common stage**
//!   of intersecting pipelines (§IV),
//! * collapses stages declared *virtual* — and, automatically, the sources
//!   and sinks of their pipelines — onto single shared threads and a single
//!   shared input queue (§IV, Figure 5(b)),
//! * spawns one thread per (non-virtualized) stage, runs the program to
//!   completion, and returns a timing [`Report`].

use std::collections::HashMap;
use std::sync::Arc;

use crate::affinity::PinMode;
use crate::buffer::{PipelineId, StageId};
use crate::error::{FgError, Result};
use crate::queue::{FlavorKind, Queue, QueueMetrics};
use crate::runtime;
use crate::stage::{Port, Registry, ReplicaGroup, Rounds, Stage, StopFlag};
use crate::stats::Report;

/// Configuration of one pipeline: its buffer pool and round policy.
#[derive(Debug, Clone)]
pub struct PipelineCfg {
    pub(crate) name: String,
    pub(crate) buffers: usize,
    pub(crate) buffer_size: usize,
    pub(crate) rounds: Rounds,
    pub(crate) max_buffers: Option<usize>,
}

impl PipelineCfg {
    /// A pipeline with `buffers` buffers of `buffer_size` bytes each.
    ///
    /// The buffer size typically equals the block size of the high-latency
    /// transfers the pipeline performs (§II).
    pub fn new(name: impl Into<String>, buffers: usize, buffer_size: usize) -> Self {
        PipelineCfg {
            name: name.into(),
            buffers,
            buffer_size,
            rounds: Rounds::UntilStopped,
            max_buffers: None,
        }
    }

    /// Allow a controller to grow this pipeline's buffer pool up to `n`
    /// buffers at runtime (queues are pre-sized to admit the ceiling).
    /// Values below `buffers` are treated as `buffers`.  Without a
    /// controller the pool stays at `buffers`.
    pub fn max_buffers(mut self, n: usize) -> Self {
        self.max_buffers = Some(n);
        self
    }

    /// Set how many rounds the source runs (default: until stopped).
    pub fn rounds(mut self, rounds: Rounds) -> Self {
        self.rounds = rounds;
        self
    }

    /// Shorthand for `.rounds(Rounds::Count(n))`.
    pub fn count(mut self, n: u64) -> Self {
        self.rounds = Rounds::Count(n);
        self
    }
}

pub(crate) struct StageSlot {
    pub(crate) name: String,
    /// One object per replica (length 1 for ordinary stages).
    pub(crate) stages: Vec<Box<dyn Stage>>,
    pub(crate) is_virtual: bool,
    /// Replicated stages only: whether emission is serialized by round
    /// (a worker farm built with [`Program::workers`]).
    pub(crate) ordered: bool,
}

pub(crate) struct PipeSpec {
    pub(crate) name: String,
    pub(crate) buffers: usize,
    pub(crate) buffer_size: usize,
    pub(crate) rounds: Rounds,
    pub(crate) chain: Vec<StageId>,
    pub(crate) max_buffers: Option<usize>,
}

impl PipeSpec {
    /// Pool ceiling the queues must admit: the declared `max_buffers` when
    /// at least `buffers`, else `buffers`.
    fn pool_ceiling(&self) -> usize {
        self.max_buffers.unwrap_or(self.buffers).max(self.buffers)
    }
}

/// A declared FG program: pipelines of stages on one node.
pub struct Program {
    name: String,
    stages: Vec<StageSlot>,
    pipelines: Vec<PipeSpec>,
    trace: bool,
    observer: Option<Arc<dyn crate::observe::Observer>>,
    metrics: Option<Arc<crate::metrics::MetricsRegistry>>,
    trace_sink: Option<Arc<crate::trace::TraceSink>>,
    trace_group: Option<u32>,
    watchdog: Option<crate::trace::WatchdogCfg>,
    controller: Option<crate::controller::ControllerCfg>,
    depth_actuators: Vec<Arc<dyn crate::controller::DepthActuator>>,
    pin: Option<PinMode>,
    ledger: Option<Arc<crate::profile::MemoryLedger>>,
}

impl Program {
    /// Create an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            stages: Vec::new(),
            pipelines: Vec::new(),
            trace: false,
            observer: None,
            metrics: None,
            trace_sink: None,
            trace_group: None,
            watchdog: None,
            controller: None,
            depth_actuators: Vec::new(),
            pin: None,
            ledger: None,
        }
    }

    /// Pin every runtime thread (stages, replicas, sources, sinks) to a
    /// core chosen by `mode` at spawn.  Placement is recorded per thread
    /// in the [`Report`](crate::Report)
    /// ([`StageStats::core`](crate::StageStats)).  On hosts where
    /// affinity cannot be changed (non-Linux, no `taskset`) threads run
    /// unpinned and record no placement.  Off by default: the OS
    /// scheduler usually wins until queue contention dominates — see
    /// `diagnose`'s contention findings for when to turn this on.
    pub fn set_pinning(&mut self, mode: PinMode) {
        self.pin = Some(mode);
    }

    /// Record every stage's blocked intervals so the finished
    /// [`Report`](crate::Report) can render a Gantt chart
    /// ([`Report::render_gantt`](crate::Report::render_gantt)).  Off by
    /// default (tracing allocates per blocked interval).
    pub fn enable_tracing(&mut self) {
        self.trace = true;
    }

    /// Install an [`Observer`](crate::observe::Observer) receiving a
    /// callback at every runtime event (stage start/exit, buffer
    /// accept/convey, source rounds, sink recycles).  Without an observer
    /// the hook sites cost a single never-taken branch.
    pub fn set_observer(&mut self, observer: Arc<dyn crate::observe::Observer>) {
        self.observer = Some(observer);
    }

    /// Attach a [`MetricsRegistry`](crate::metrics::MetricsRegistry):
    /// every queue samples its depth into a
    /// `core/queue_depth/<queue>` gauge, and the registry's snapshot is
    /// embedded in the final [`Report`](crate::Report) (rendered by
    /// [`Report::render_dashboard`](crate::Report::render_dashboard) and
    /// exported by [`Report::to_json`](crate::Report::to_json)).  Other
    /// layers (communicators, disks) and observers may record into the
    /// same registry to land in the same report.
    pub fn set_metrics(&mut self, metrics: Arc<crate::metrics::MetricsRegistry>) {
        self.metrics = Some(metrics);
    }

    /// Attach a [`MemoryLedger`](crate::profile::MemoryLedger): sources
    /// charge the pool as they create (and retire) buffers, and every
    /// stage charges/credits its per-stage residency row as buffers flow
    /// through — so at any instant the ledger says which stage holds how
    /// much of the pool, against the ledger's budget.  Share one ledger
    /// across programs to account for a whole process.  The ledger rows
    /// land in [`ResourceReport`](crate::profile::ResourceReport) samples
    /// (`GET /resources`, `fgsort --profile`, the watchdog post-mortem).
    pub fn set_memory_ledger(&mut self, ledger: Arc<crate::profile::MemoryLedger>) {
        self.ledger = Some(ledger);
    }

    /// Install a [`TraceSink`](crate::trace::TraceSink): every runtime
    /// thread (stages, replicas, sources, sinks) gets a flight-recorder
    /// ring and records a causal span per transition, and every injected
    /// buffer carries a fresh trace id.  Without a sink the hook sites
    /// cost a single never-taken branch (like
    /// [`Program::set_observer`]).  The sink outlives the run: collect
    /// the log afterwards with
    /// [`TraceSink::collect`](crate::trace::TraceSink::collect) or export
    /// it with
    /// [`TraceSink::to_chrome_trace`](crate::trace::TraceSink::to_chrome_trace).
    pub fn set_trace_sink(&mut self, sink: Arc<crate::trace::TraceSink>) {
        self.trace_sink = Some(sink);
    }

    /// Put every thread this program registers with its trace sink into
    /// track group `group` (a cluster rank): the Chrome export then renders
    /// this program's threads under a per-node `node{group}` track group.
    /// No effect without a trace sink.
    pub fn set_trace_group(&mut self, group: u32) {
        self.trace_group = Some(group);
    }

    /// Arm the stall watchdog: if no span is recorded pipeline-wide for
    /// `cfg.timeout`, a [`Postmortem`](crate::trace::Postmortem) is
    /// rendered to stderr (and optionally a JSON artifact), then the
    /// program is aborted with
    /// [`FgError::Stalled`](crate::FgError::Stalled) — or left running,
    /// per [`WatchdogAction`](crate::trace::WatchdogAction).  Implies an
    /// internal trace sink when none is installed.
    pub fn set_watchdog(&mut self, cfg: crate::trace::WatchdogCfg) {
        self.watchdog = Some(cfg);
    }

    /// Shorthand: arm an abort-on-stall watchdog with `timeout`.
    pub fn with_watchdog(&mut self, timeout: std::time::Duration) {
        self.set_watchdog(crate::trace::WatchdogCfg::new(timeout));
    }

    /// Attach a closed-loop controller
    /// ([`Controller`](crate::controller::Controller)): during the run it
    /// samples the metrics registry, diagnoses a sliding window, and
    /// actuates farm widths, buffer pools, and registered I/O depths.
    /// Requires [`Program::set_metrics`]; without a registry the
    /// controller is silently skipped (it would have nothing to observe).
    /// The decision audit log lands in
    /// [`Report::controller`](crate::Report).
    pub fn set_controller(&mut self, cfg: crate::controller::ControllerCfg) {
        self.controller = Some(cfg);
    }

    /// Register a resizable read-ahead depth (e.g. an I/O scheduler) for
    /// the controller to actuate.  No-op unless
    /// [`Program::set_controller`] is also called.
    pub fn add_depth_actuator(&mut self, actuator: Arc<dyn crate::controller::DepthActuator>) {
        self.depth_actuators.push(actuator);
    }

    /// Program name (used in thread names and diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declare a stage.  The same [`StageId`] may be placed in several
    /// pipelines' chains, making those pipelines intersect at this stage.
    pub fn add_stage(&mut self, name: impl Into<String>, stage: Box<dyn Stage>) -> StageId {
        self.push_stage(name.into(), stage, false)
    }

    /// Declare a *virtual* stage: if placed in k pipelines, FG creates one
    /// thread and one shared input queue instead of k of each, and shares
    /// the sources and sinks of those pipelines too.
    pub fn add_virtual_stage(&mut self, name: impl Into<String>, stage: Box<dyn Stage>) -> StageId {
        self.push_stage(name.into(), stage, true)
    }

    fn push_stage(&mut self, name: String, stage: Box<dyn Stage>, is_virtual: bool) -> StageId {
        let id = StageId(self.stages.len() as u32);
        self.stages.push(StageSlot {
            name,
            stages: vec![stage],
            is_virtual,
            ordered: false,
        });
        id
    }

    /// Declare a *replicated* stage: `n` copies (built by `factory`) share
    /// the stage's position in a pipeline, its input queue, and its output
    /// queue, so buffers fan out to whichever replica is free and rejoin
    /// downstream — FG's fork–join, used to parallelize a slow stage.
    ///
    /// Buffers rejoin *out of round order*; place a
    /// [`reorder_stage`](crate::reorder_stage) downstream if order matters.
    /// A replicated stage must belong to exactly one pipeline and cannot
    /// be virtual.
    pub fn add_replicated_stage<F>(
        &mut self,
        name: impl Into<String>,
        replicas: usize,
        factory: F,
    ) -> StageId
    where
        F: Fn(usize) -> Box<dyn Stage>,
    {
        assert!(replicas > 0, "need at least one replica");
        let id = StageId(self.stages.len() as u32);
        self.stages.push(StageSlot {
            name: name.into(),
            stages: (0..replicas).map(factory).collect(),
            is_virtual: false,
            ordered: false,
        });
        id
    }

    /// Declare a *worker farm*: an ordered replicated stage.  `n` worker
    /// threads (built by `factory`, which receives the worker index) share
    /// the stage's position in a pipeline and its input queue, so rounds
    /// fan out to whichever worker is free — but unlike
    /// [`Program::add_replicated_stage`], emission is serialized by round:
    /// a worker holding round `r` waits (inside `convey`/`discard`) until
    /// rounds `0..r` have been emitted, so downstream stages observe rounds
    /// in order with no [`reorder_stage`](crate::reorder_stage) and no
    /// stash buffers.
    ///
    /// Each accepted round must be conveyed or discarded exactly once
    /// (the natural shape of a [`map_stage`](crate::map_stage)); a farm
    /// stage that emits twice for one round fails with a usage error.
    /// Caboose, error, and shutdown semantics are those of a replicated
    /// stage: the caboose travels downstream only after every worker has
    /// finished, and teardown wakes workers parked on the ordering gate.
    /// A farm must belong to exactly one pipeline and cannot be virtual.
    /// `workers(name, 1, factory)` degenerates to an ordinary stage with
    /// zero ordering overhead.
    pub fn workers<F>(&mut self, name: impl Into<String>, n: usize, factory: F) -> StageId
    where
        F: Fn(usize) -> Box<dyn Stage>,
    {
        assert!(n > 0, "need at least one worker");
        let id = StageId(self.stages.len() as u32);
        self.stages.push(StageSlot {
            name: name.into(),
            stages: (0..n).map(factory).collect(),
            is_virtual: false,
            ordered: true,
        });
        id
    }

    /// Declare a pipeline running `chain` (source and sink are implicit).
    pub fn add_pipeline(&mut self, cfg: PipelineCfg, chain: &[StageId]) -> Result<PipelineId> {
        if chain.is_empty() {
            return Err(FgError::Config(format!(
                "pipeline `{}` has an empty stage chain",
                cfg.name
            )));
        }
        if cfg.buffers == 0 {
            return Err(FgError::Config(format!(
                "pipeline `{}` must have at least one buffer",
                cfg.name
            )));
        }
        if cfg.buffer_size == 0 {
            return Err(FgError::Config(format!(
                "pipeline `{}` must have a positive buffer size",
                cfg.name
            )));
        }
        for (i, s) in chain.iter().enumerate() {
            if s.index() >= self.stages.len() {
                return Err(FgError::Config(format!(
                    "pipeline `{}` references unknown {s}",
                    cfg.name
                )));
            }
            if chain[..i].contains(s) {
                return Err(FgError::Config(format!(
                    "pipeline `{}` lists stage `{}` twice",
                    cfg.name,
                    self.stages[s.index()].name
                )));
            }
        }
        let id = PipelineId(self.pipelines.len() as u32);
        self.pipelines.push(PipeSpec {
            name: cfg.name,
            buffers: cfg.buffers,
            buffer_size: cfg.buffer_size,
            rounds: cfg.rounds,
            chain: chain.to_vec(),
            max_buffers: cfg.max_buffers,
        });
        Ok(id)
    }

    /// Number of declared pipelines.
    pub fn pipeline_count(&self) -> usize {
        self.pipelines.len()
    }

    /// Validate, wire, spawn, and run the program to completion.
    pub fn run(mut self) -> Result<Report> {
        self.validate()?;
        let plan = self.wire()?;
        runtime::execute(self.name, plan)
    }

    fn validate(&self) -> Result<()> {
        for (i, slot) in self.stages.iter().enumerate() {
            let used = self
                .pipelines
                .iter()
                .any(|p| p.chain.contains(&StageId(i as u32)));
            if !used {
                return Err(FgError::Config(format!(
                    "stage `{}` is not part of any pipeline",
                    slot.name
                )));
            }
        }
        if self.pipelines.is_empty() {
            return Err(FgError::Config("program has no pipelines".into()));
        }
        for (i, slot) in self.stages.iter().enumerate() {
            if slot.stages.len() > 1 {
                let memberships = self
                    .pipelines
                    .iter()
                    .filter(|p| p.chain.contains(&StageId(i as u32)))
                    .count();
                if memberships != 1 {
                    return Err(FgError::Config(format!(
                        "replicated stage `{}` must belong to exactly one                          pipeline (found {memberships})",
                        slot.name
                    )));
                }
            }
        }
        // Pipelines sharing a virtual stage form a virtual group; their
        // round counts must be known (the shared source retires lanes by
        // count, not by stop()).
        let groups = self.virtual_groups();
        for (gi, members) in groups.iter().enumerate() {
            if members.len() > 1 {
                for &p in members {
                    if !matches!(self.pipelines[p].rounds, Rounds::Count(_)) {
                        return Err(FgError::Config(format!(
                            "pipeline `{}` is in virtual group {gi} and must \
                             use Rounds::Count",
                            self.pipelines[p].name
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Partition pipelines: pipelines sharing any virtual stage land in the
    /// same group (union-find).  Returns disjoint member lists covering all
    /// pipelines (singletons for ungrouped ones), in pipeline order.
    fn virtual_groups(&self) -> Vec<Vec<usize>> {
        let n = self.pipelines.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for (sid, slot) in self.stages.iter().enumerate() {
            if !slot.is_virtual {
                continue;
            }
            let members: Vec<usize> = self
                .pipelines
                .iter()
                .enumerate()
                .filter(|(_, p)| p.chain.contains(&StageId(sid as u32)))
                .map(|(i, _)| i)
                .collect();
            for w in members.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        let mut by_root: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            by_root.entry(r).or_default().push(i);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }

    /// Build every queue, port, source set, and sink set.
    fn wire(&mut self) -> Result<runtime::Plan> {
        let registry = Registry::new();
        let groups = self.virtual_groups();
        let group_of: HashMap<usize, usize> = groups
            .iter()
            .enumerate()
            .flat_map(|(gi, ms)| ms.iter().map(move |&m| (m, gi)))
            .collect();

        // Build a queue, register it for shutdown, and — when a metrics
        // registry is attached — wire up its depth gauge, contention
        // counters, and capacity (so windowed diagnosis can tell "full"
        // without a Report).  `FlavorKind::Spsc` may only be passed for
        // stage-to-stage links the planner has proven exclusive; every
        // other queue takes the lock-free MPMC ring (the mutex flavor
        // survives as the property-test oracle and `Queue::new` default).
        let metrics = self.metrics.clone();
        let reg = |name: String, cap: usize, kind: FlavorKind| {
            let gauge = metrics.as_ref().map(|m| {
                m.gauge(&format!("{}{name}", crate::analyze::QUEUE_CAPACITY_PREFIX))
                    .set(cap as u64);
                m.gauge(&format!("{}{name}", crate::analyze::QUEUE_DEPTH_PREFIX))
            });
            let qmetrics = metrics.as_ref().map(|m| QueueMetrics {
                cas_retries: m
                    .counter(&format!("{}{name}", crate::analyze::QUEUE_CAS_RETRY_PREFIX)),
                push_parks: m.counter(&format!("{}{name}", crate::analyze::QUEUE_PUSH_PARK_PREFIX)),
                pop_parks: m.counter(&format!("{}{name}", crate::analyze::QUEUE_POP_PARK_PREFIX)),
                wakes: m.counter(&format!("{}{name}", crate::analyze::QUEUE_WAKE_PREFIX)),
                items: m.counter(&format!("{}{name}", crate::analyze::QUEUE_ITEMS_PREFIX)),
            });
            let q = Queue::flavored(name, cap, kind, gauge, qmetrics);
            registry.register(Arc::clone(&q));
            q
        };

        // Per-group shared recycle and sink queues: always MPMC (every
        // stage of the group discards into the recycle queue, and several
        // last stages may feed one sink).
        // Queue capacities admit the pool *ceiling*, not just the starting
        // pool, so a controller can grow a pool without deadlocking a
        // too-small queue.
        let mut recycle_q: Vec<Arc<Queue>> = Vec::new();
        let mut sink_q: Vec<Arc<Queue>> = Vec::new();
        for (gi, members) in groups.iter().enumerate() {
            let cap: usize = members
                .iter()
                .map(|&m| self.pipelines[m].pool_ceiling() + 1)
                .sum();
            recycle_q.push(reg(format!("recycle/g{gi}"), cap, FlavorKind::LockFree));
            sink_q.push(reg(format!("sink/g{gi}"), cap, FlavorKind::LockFree));
        }

        // Stop flags per pipeline, attached to their (possibly shared)
        // recycle queue.
        let stops: Vec<Arc<StopFlag>> = (0..self.pipelines.len())
            .map(|p| {
                let f = StopFlag::new();
                f.attach_recycle(Arc::clone(&recycle_q[group_of[&p]]));
                f
            })
            .collect();

        // Shared input queues for virtual stages.
        let mut shared_in: HashMap<usize, Arc<Queue>> = HashMap::new();
        for (sid, slot) in self.stages.iter().enumerate() {
            if slot.is_virtual {
                let members: Vec<usize> = self
                    .pipelines
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.chain.contains(&StageId(sid as u32)))
                    .map(|(i, _)| i)
                    .collect();
                let cap: usize = members
                    .iter()
                    .map(|&m| self.pipelines[m].pool_ceiling() + 1)
                    .sum();
                // Shared (virtual) inputs are fed by many pipelines'
                // upstreams: never SPSC.  Floor at 2: the lock-free ring
                // needs at least two slots (`Queue::flavored` would fall
                // back to the mutex flavor for a capacity-1 request).
                shared_in.insert(
                    sid,
                    reg(
                        format!("in/{}", slot.name),
                        cap.max(2),
                        FlavorKind::LockFree,
                    ),
                );
            }
        }

        // Queues along each pipeline.  into_q[p][i] feeds stage i of
        // pipeline p; out of the last stage is the pipeline's sink queue.
        // A per-stage queue is specialized to the SPSC ring when exactly
        // one thread pushes and one pops: the consumer stage has a single
        // replica (replicas also *push* — they hand the caboose around
        // their own input queue), and the producer — the group's source
        // thread for position 0, the upstream stage otherwise — has a
        // single replica too.  Virtual stages are excluded on both sides
        // by construction (their shared queue is built above).
        let mut into_q: Vec<Vec<Arc<Queue>>> = Vec::new();
        for (pi, pipe) in self.pipelines.iter().enumerate() {
            let mut qs = Vec::with_capacity(pipe.chain.len());
            for (pos, sid) in pipe.chain.iter().enumerate() {
                let q = if self.stages[sid.index()].is_virtual {
                    Arc::clone(&shared_in[&sid.index()])
                } else {
                    let consumer_single = self.stages[sid.index()].stages.len() == 1;
                    let producer_single = match pos {
                        0 => true, // one source thread per group
                        _ => self.stages[pipe.chain[pos - 1].index()].stages.len() == 1,
                    };
                    // Proven-exclusive links get the SPSC ring; the rest —
                    // farm inputs/outputs, whose replicas both pop and
                    // push (caboose handoff) — get the lock-free MPMC ring.
                    let kind = if consumer_single && producer_single {
                        FlavorKind::Spsc
                    } else {
                        FlavorKind::LockFree
                    };
                    reg(
                        format!("{}[{}]", pipe.name, pos),
                        pipe.pool_ceiling() + 1,
                        kind,
                    )
                };
                qs.push(q);
            }
            into_q.push(qs);
            let _ = pi;
        }

        // Ports for every stage, in pipeline declaration order.
        let mut ports: Vec<Vec<Port>> = (0..self.stages.len()).map(|_| Vec::new()).collect();
        for (pi, pipe) in self.pipelines.iter().enumerate() {
            let gi = group_of[&pi];
            for (pos, sid) in pipe.chain.iter().enumerate() {
                let is_virtual = self.stages[sid.index()].is_virtual;
                let output = if pos + 1 < pipe.chain.len() {
                    Arc::clone(&into_q[pi][pos + 1])
                } else {
                    Arc::clone(&sink_q[gi])
                };
                ports[sid.index()].push(Port {
                    pipeline: PipelineId(pi as u32),
                    input: if is_virtual {
                        None
                    } else {
                        Some(Arc::clone(&into_q[pi][pos]))
                    },
                    output,
                    recycle: Arc::clone(&recycle_q[gi]),
                    rounds: pipe.rounds,
                    stop: Arc::clone(&stops[pi]),
                    eos: false,
                    forwarded: false,
                    deferred_caboose: false,
                });
            }
        }

        // Live buffer-pool handles, one per pipeline, only when a
        // controller will drive them (otherwise pools stay at their
        // declared size and the handles would be dead weight).
        let pools: Vec<Option<Arc<crate::controller::PoolControl>>> = self
            .pipelines
            .iter()
            .enumerate()
            .map(|(pi, pipe)| {
                self.controller.as_ref().map(|_| {
                    crate::controller::PoolControl::new(
                        pipe.name.clone(),
                        format!("recycle/g{}", group_of[&pi]),
                        pipe.buffers,
                        1,
                        pipe.pool_ceiling(),
                    )
                })
            })
            .collect();

        // Source and sink sets: one each per group.
        let mut sources = Vec::new();
        let mut sinks = Vec::new();
        for (gi, members) in groups.iter().enumerate() {
            let pipes = members
                .iter()
                .map(|&m| runtime::SourcePipe {
                    pipeline: PipelineId(m as u32),
                    first: Arc::clone(&into_q[m][0]),
                    rounds: self.pipelines[m].rounds,
                    stop: Arc::clone(&stops[m]),
                    buffers: self.pipelines[m].buffers,
                    buffer_size: self.pipelines[m].buffer_size,
                    pool: pools[m].clone(),
                })
                .collect();
            let label = if members.len() == 1 {
                self.pipelines[members[0]].name.clone()
            } else {
                format!("group{gi}")
            };
            sources.push(runtime::SourceSet {
                label: format!("{label}/source"),
                pipes,
                recycle: Arc::clone(&recycle_q[gi]),
            });
            sinks.push(runtime::SinkSet {
                label: format!("{label}/sink"),
                queue: Arc::clone(&sink_q[gi]),
                recycle: Arc::clone(&recycle_q[gi]),
                members: members.len(),
            });
        }

        // Stage tasks (one per replica; ordinary stages have one replica).
        let mut tasks = Vec::new();
        let mut farms: Vec<Arc<ReplicaGroup>> = Vec::new();
        for (sid, slot) in self.stages.iter_mut().enumerate() {
            let shared_input = shared_in.get(&sid).map(Arc::clone);
            let replicas = slot.stages.len();
            let group = if replicas > 1 {
                let g = ReplicaGroup::new(slot.name.clone(), replicas, slot.ordered);
                registry.register_group(Arc::clone(&g));
                farms.push(Arc::clone(&g));
                Some(g)
            } else {
                None
            };
            let base_ports = std::mem::take(&mut ports[sid]);
            for (i, stage) in slot.stages.drain(..).enumerate() {
                let task_ports = base_ports.iter().map(|p| p.clone_for_replica()).collect();
                tasks.push(runtime::StageTask {
                    name: if replicas > 1 {
                        format!("{}#{i}", slot.name)
                    } else {
                        slot.name.clone()
                    },
                    stage,
                    ports: task_ports,
                    shared_input: shared_input.clone(),
                    replica_group: group.clone(),
                    replica_index: i,
                });
            }
        }

        Ok(runtime::Plan {
            registry,
            tasks,
            sources,
            sinks,
            trace: self.trace,
            observer: self.observer.clone(),
            metrics: self.metrics.clone(),
            trace_sink: self.trace_sink.clone(),
            trace_group: self.trace_group,
            watchdog: self.watchdog.clone(),
            controller: self.controller.clone(),
            pools: pools.into_iter().flatten().collect(),
            farms,
            depth_actuators: self.depth_actuators.clone(),
            pin: self.pin.clone(),
            ledger: self.ledger.clone(),
            pipelines: self
                .pipelines
                .iter()
                .map(|p| crate::stats::PipelineShape {
                    name: p.name.clone(),
                    stages: p
                        .chain
                        .iter()
                        .map(|sid| self.stages[sid.index()].name.clone())
                        .collect(),
                })
                .collect(),
        })
    }
}

/// Convenience: run a single linear pipeline of `stages` to completion.
///
/// This is the shape of every program writable in FG's original release
/// (§II): one copy of one linear pipeline.
pub fn run_linear(
    name: impl Into<String>,
    cfg: PipelineCfg,
    stages: Vec<(&str, Box<dyn Stage>)>,
) -> Result<Report> {
    let mut prog = Program::new(name);
    let ids: Vec<StageId> = stages
        .into_iter()
        .map(|(n, s)| prog.add_stage(n, s))
        .collect();
    prog.add_pipeline(cfg, &ids)?;
    prog.run()
}
