//! Critical-path reconstruction from flight-recorder span logs.
//!
//! The flight recorder ([`crate::trace`]) gives every traced buffer a
//! per-round causal id and logs a [`SpanRec`] for each transition the
//! buffer makes — source inject, stage accept, the stage's own work, the
//! convey, the sink's recycle.  [`critical_path`] inverts that log: it
//! regroups spans by trace id to rebuild each buffer's **round timeline**
//! across threads, then attributes the round's end-to-end latency to the
//! stages on it with a priority sweep: every instant of the round is
//! credited to exactly one covering span, and *active* spans (work,
//! convey, inject, recycle) always outrank *wait* spans (accept,
//! turnstile) — a consumer's blocked accept overlaps the producer's work
//! on the very buffer it is waiting for, and the work is where the time
//! really went.  Within a class the earlier span wins, so nested
//! overlaps (a turnstile wait inside a convey, say) are never
//! double-counted.
//!
//! The result answers the question averages cannot: not "which stage was
//! busiest over the run" but "which stage's spans sit on the longest
//! buffer journeys, and in which concrete rounds".
//! [`diagnose_with_trace`](crate::analyze::diagnose_with_trace) folds the
//! answer into the bottleneck diagnosis so its verdicts cite rounds.
//!
//! Spans with `trace_id == 0` (caboose handling, untraced I/O) and spans
//! on the [`IO_PIPELINE`] sentinel are not part of any buffer's journey
//! and are skipped.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::trace::{SpanRec, ThreadLog, TraceKind, IO_PIPELINE};

/// One span on a round's timeline, with its non-overlapped contribution
/// to the round's end-to-end latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// Task name of the thread that recorded the span (`read`, `sort#1`,
    /// `p/source`, …).
    pub stage: String,
    /// What happened.
    pub kind: TraceKind,
    /// Span start, nanoseconds since the sink's epoch.
    pub start_ns: u64,
    /// Span end, nanoseconds since the sink's epoch.
    pub end_ns: u64,
    /// The part of `[start_ns, end_ns]` this segment won in the round's
    /// priority sweep — its share of the round's critical path.  Active
    /// spans outrank blocked waits wherever they overlap.
    pub contribution_ns: u64,
}

/// One buffer's reconstructed journey: every span that carried its trace
/// id, in timeline order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundPath {
    /// Pipeline the buffer belongs to.
    pub pipeline: u32,
    /// Round in which the source injected it.
    pub round: u64,
    /// The causal id stitching the segments together.
    pub trace_id: u64,
    /// Earliest segment start (normally the source inject).
    pub start_ns: u64,
    /// Latest segment end (normally the sink recycle).
    pub end_ns: u64,
    /// Segments in timeline order (by start, then end).
    pub segments: Vec<PathSegment>,
}

impl RoundPath {
    /// End-to-end latency of this round's buffer.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Nanoseconds of this round not covered by any span: the buffer sat
    /// in a queue while its next stage was off working on another round.
    pub fn queued_ns(&self) -> u64 {
        self.dur_ns()
            .saturating_sub(self.segments.iter().map(|s| s.contribution_ns).sum())
    }

    /// The stage contributing the most non-overlapped time to this round,
    /// with its total contribution.  Ties keep the earlier stage.
    pub fn dominant(&self) -> Option<(&str, u64)> {
        let mut totals: Vec<(&str, u64)> = Vec::new();
        for seg in &self.segments {
            match totals.iter_mut().find(|(name, _)| *name == seg.stage) {
                Some((_, t)) => *t += seg.contribution_ns,
                None => totals.push((&seg.stage, seg.contribution_ns)),
            }
        }
        totals
            .into_iter()
            .reduce(|best, cur| if cur.1 > best.1 { cur } else { best })
    }
}

/// The program-wide critical-path reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Every reconstructed round, ordered by `(pipeline, round)`.
    pub rounds: Vec<RoundPath>,
    /// Per-stage contribution summed across all rounds, largest first.
    pub stage_totals: Vec<(String, u64)>,
    /// Sum of all rounds' end-to-end latencies (rounds overlap in wall
    /// time, so this is path time, not wall time).
    pub total_ns: u64,
}

impl CriticalPath {
    /// The stage carrying the most path time overall.
    pub fn dominant_stage(&self) -> Option<&str> {
        self.stage_totals.first().map(|(name, _)| name.as_str())
    }

    /// The round with the longest end-to-end latency.
    pub fn slowest_round(&self) -> Option<&RoundPath> {
        self.rounds.iter().reduce(|best, cur| {
            if cur.dur_ns() > best.dur_ns() {
                cur
            } else {
                best
            }
        })
    }

    /// Total contribution of one `(stage, kind)` pair across all rounds —
    /// e.g. how much of the path is `sort`'s `Work` spans.
    pub fn kind_total(&self, stage: &str, kind: TraceKind) -> u64 {
        self.rounds
            .iter()
            .flat_map(|r| &r.segments)
            .filter(|s| s.stage == stage && s.kind == kind)
            .map(|s| s.contribution_ns)
            .sum()
    }

    /// Render as text: stage totals, then the slowest round's timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== critical path ==\n");
        if self.rounds.is_empty() {
            out.push_str("no traced rounds\n");
            return out;
        }
        let _ = writeln!(
            out,
            "{} traced rounds, {:.3} ms of path time",
            self.rounds.len(),
            self.total_ns as f64 / 1e6
        );
        let name_w = self
            .stage_totals
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(5)
            .max(5);
        for (name, ns) in &self.stage_totals {
            let pct = if self.total_ns == 0 {
                0.0
            } else {
                *ns as f64 / self.total_ns as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "{name:<name_w$} {:>10.3} ms {pct:>5.1}%",
                *ns as f64 / 1e6
            );
        }
        if let Some(slow) = self.slowest_round() {
            let _ = writeln!(
                out,
                "slowest round: pipeline#{} round {} (trace id {}): {:.3} ms ({:.3} ms queued)",
                slow.pipeline,
                slow.round,
                slow.trace_id,
                slow.dur_ns() as f64 / 1e6,
                slow.queued_ns() as f64 / 1e6
            );
            for seg in &slow.segments {
                let _ = writeln!(
                    out,
                    "  {:<name_w$} {:<12} +{:>10.3} ms (at {:.3}..{:.3} ms)",
                    seg.stage,
                    seg.kind.label(),
                    seg.contribution_ns as f64 / 1e6,
                    seg.start_ns as f64 / 1e6,
                    seg.end_ns as f64 / 1e6
                );
            }
        }
        out
    }
}

/// Rebuild every traced buffer's round timeline from the per-thread span
/// logs and attribute each round's latency to the stages on it.
///
/// `logs` is what [`TraceSink::collect`](crate::trace::TraceSink::collect)
/// returns (or a hand-built log in tests).  Because each ring is bounded
/// and overwrites its oldest records, very long runs keep only the most
/// recent rounds — exactly the ones a post-mortem cares about.
pub fn critical_path(logs: &[ThreadLog]) -> CriticalPath {
    let mut by_id: HashMap<u64, Vec<(usize, SpanRec)>> = HashMap::new();
    for (i, log) in logs.iter().enumerate() {
        for s in &log.spans {
            if s.trace_id == 0 || s.pipeline == IO_PIPELINE {
                continue;
            }
            by_id.entry(s.trace_id).or_default().push((i, *s));
        }
    }

    // Wait spans measure a thread being blocked; whatever overlaps them
    // (typically the upstream stage's work on this very buffer) is where
    // the time actually went.
    let is_wait = |k: TraceKind| matches!(k, TraceKind::Accept | TraceKind::TurnWait);

    let mut rounds: Vec<RoundPath> = Vec::with_capacity(by_id.len());
    for (trace_id, mut spans) in by_id {
        spans.sort_by_key(|(_, s)| (s.start_ns, s.end_ns));
        let start_ns = spans[0].1.start_ns;
        let (pipeline, round) = (spans[0].1.pipeline, spans[0].1.round);
        let end_ns = spans
            .iter()
            .map(|(_, s)| s.end_ns)
            .max()
            .unwrap_or(start_ns);

        // Priority sweep: split the round into elementary intervals at
        // every span boundary and credit each interval to its best cover
        // (active beats wait; within a class, sorted order — earlier
        // start — wins).  Groups are a handful of spans, so the quadratic
        // scan is cheap.
        let mut bounds: Vec<u64> = spans
            .iter()
            .flat_map(|(_, s)| [s.start_ns, s.end_ns])
            .collect();
        bounds.sort_unstable();
        bounds.dedup();
        let mut contrib = vec![0u64; spans.len()];
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let covering = |&(_, s): &&(usize, SpanRec)| s.start_ns <= lo && s.end_ns >= hi;
            let winner = spans
                .iter()
                .position(|p| !is_wait(p.1.kind) && covering(&p))
                .or_else(|| spans.iter().position(|p| covering(&p)));
            if let Some(k) = winner {
                contrib[k] += hi - lo;
            }
        }

        let segments = spans
            .iter()
            .zip(&contrib)
            .map(|((i, s), c)| PathSegment {
                stage: logs[*i].task().to_string(),
                kind: s.kind,
                start_ns: s.start_ns,
                end_ns: s.end_ns,
                contribution_ns: *c,
            })
            .collect();
        rounds.push(RoundPath {
            pipeline,
            round,
            trace_id,
            start_ns,
            end_ns,
            segments,
        });
    }
    rounds.sort_by_key(|r| (r.pipeline, r.round, r.trace_id));

    let mut totals: HashMap<&str, u64> = HashMap::new();
    for r in &rounds {
        for seg in &r.segments {
            *totals.entry(&seg.stage).or_default() += seg.contribution_ns;
        }
    }
    let mut stage_totals: Vec<(String, u64)> = totals
        .into_iter()
        .map(|(name, ns)| (name.to_string(), ns))
        .collect();
    stage_totals.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let total_ns = rounds.iter().map(|r| r.dur_ns()).sum();

    CriticalPath {
        rounds,
        stage_totals,
        total_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(thread: &str, spans: Vec<SpanRec>) -> ThreadLog {
        ThreadLog {
            thread: thread.to_string(),
            spans,
        }
    }

    fn span(
        kind: TraceKind,
        pipeline: u32,
        round: u64,
        trace_id: u64,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanRec {
        SpanRec {
            kind,
            pipeline,
            round,
            trace_id,
            start_ns,
            end_ns,
        }
    }

    #[test]
    fn empty_logs_yield_empty_path() {
        let cp = critical_path(&[]);
        assert!(cp.rounds.is_empty());
        assert_eq!(cp.dominant_stage(), None);
        assert!(cp.render().contains("no traced rounds"));
    }

    #[test]
    fn untraced_and_io_spans_are_skipped() {
        let logs = vec![log(
            "p/read",
            vec![
                span(TraceKind::Accept, 0, 0, 0, 0, 10),
                span(TraceKind::PrefetchMiss, IO_PIPELINE, 3, 5, 0, 10),
            ],
        )];
        assert!(critical_path(&logs).rounds.is_empty());
    }

    #[test]
    fn overlapping_spans_are_not_double_counted() {
        // A convey (100..200) with a turnstile wait inside it (120..180):
        // the round's path is 100ns, not 180ns.
        let logs = vec![log(
            "p/emit",
            vec![
                span(TraceKind::Convey, 0, 0, 1, 100, 200),
                span(TraceKind::TurnWait, 0, 0, 1, 120, 180),
            ],
        )];
        let cp = critical_path(&logs);
        assert_eq!(cp.rounds.len(), 1);
        let r = &cp.rounds[0];
        assert_eq!(r.dur_ns(), 100);
        // Segments are timeline-ordered; the nested wait contributes 0.
        assert_eq!(r.segments[0].kind, TraceKind::Convey);
        assert_eq!(r.segments[0].contribution_ns, 100);
        assert_eq!(r.segments[1].contribution_ns, 0);
        assert_eq!(cp.total_ns, 100);
    }

    #[test]
    fn gap_between_spans_counts_as_queued_time() {
        // convey ends at 200, downstream accept only starts at 350: the
        // buffer sat queued for 150ns while the consumer chewed on an
        // earlier round.
        let logs = vec![
            log("p/up", vec![span(TraceKind::Convey, 0, 4, 9, 100, 200)]),
            log("p/down", vec![span(TraceKind::Accept, 0, 4, 9, 350, 400)]),
        ];
        let cp = critical_path(&logs);
        let r = &cp.rounds[0];
        assert_eq!(r.dur_ns(), 300);
        assert_eq!(r.queued_ns(), 150);
    }

    /// The satellite scenario: a 3-stage pipeline whose middle stage is
    /// deliberately slow.  Two rounds, hand-built with realistic
    /// inject → accept → work → convey → … → recycle timelines.
    fn slow_middle_logs() -> Vec<ThreadLog> {
        let mut read = Vec::new();
        let mut slow = Vec::new();
        let mut write = Vec::new();
        let mut source = Vec::new();
        let mut sink = Vec::new();
        for round in 0..2u64 {
            let tid = round + 1;
            let t = round * 10_000; // rounds pipeline 10µs apart
            source.push(span(TraceKind::SourceInject, 0, round, tid, t, t + 100));
            read.push(span(TraceKind::Accept, 0, round, tid, t + 100, t + 200));
            read.push(span(TraceKind::Work, 0, round, tid, t + 200, t + 700));
            read.push(span(TraceKind::Convey, 0, round, tid, t + 700, t + 800));
            slow.push(span(TraceKind::Accept, 0, round, tid, t + 800, t + 900));
            // The middle stage's own computation dominates the round.
            slow.push(span(TraceKind::Work, 0, round, tid, t + 900, t + 7_900));
            slow.push(span(TraceKind::Convey, 0, round, tid, t + 7_900, t + 8_000));
            write.push(span(TraceKind::Accept, 0, round, tid, t + 8_000, t + 8_100));
            write.push(span(TraceKind::Work, 0, round, tid, t + 8_100, t + 8_600));
            write.push(span(TraceKind::Convey, 0, round, tid, t + 8_600, t + 8_700));
            sink.push(span(
                TraceKind::Recycle,
                0,
                round,
                tid,
                t + 8_700,
                t + 8_800,
            ));
        }
        vec![
            log("p/source", source),
            log("p/read", read),
            log("p/slow", slow),
            log("p/write", write),
            log("p/sink", sink),
        ]
    }

    #[test]
    fn slow_middle_stage_dominates_the_critical_path() {
        let cp = critical_path(&slow_middle_logs());
        assert_eq!(cp.rounds.len(), 2);
        for (i, r) in cp.rounds.iter().enumerate() {
            assert_eq!(r.round, i as u64);
            assert_eq!(r.dur_ns(), 8_800);
            assert_eq!(r.queued_ns(), 0);
            let (stage, ns) = r.dominant().unwrap();
            assert_eq!(stage, "slow");
            assert_eq!(ns, 7_200); // accept 100 + work 7000 + convey 100
        }
        assert_eq!(cp.dominant_stage(), Some("slow"));
        assert_eq!(cp.total_ns, 17_600);
        // Specifically the *work* spans carry the path, not its queue ops.
        assert_eq!(cp.kind_total("slow", TraceKind::Work), 14_000);
        assert!(cp.kind_total("slow", TraceKind::Work) > cp.total_ns / 2);
        assert_eq!(cp.kind_total("read", TraceKind::Work), 1_000);
        // stage_totals is sorted: `slow` first.
        assert_eq!(cp.stage_totals[0].0, "slow");
        let text = cp.render();
        assert!(text.contains("2 traced rounds"));
        assert!(text.contains("slowest round: pipeline#0 round"));
        assert!(text.contains("slow"));
    }

    #[test]
    fn slowest_round_names_the_concrete_round() {
        let mut logs = slow_middle_logs();
        // Stretch round 1's middle work by 5µs: it becomes the slowest.
        for s in &mut logs[2].spans {
            if s.round == 1 && s.kind == TraceKind::Work {
                s.end_ns += 5_000;
            }
        }
        // Shift the rest of round 1 later so the timeline stays ordered.
        for l in logs.iter_mut() {
            for s in &mut l.spans {
                if s.round == 1 && s.start_ns >= 17_900 {
                    s.start_ns += 5_000;
                    s.end_ns += 5_000;
                }
            }
        }
        let cp = critical_path(&logs);
        let slow = cp.slowest_round().unwrap();
        assert_eq!(slow.round, 1);
        assert_eq!(slow.dur_ns(), 13_800);
    }
}
