//! Opt-in CPU core pinning for stage/replica threads.
//!
//! FG's farm hot path is a shared lock-free queue; once the queue itself
//! stops serializing producers, the next loss is threads migrating between
//! cores mid-run (cold caches, cross-core CAS traffic).  A [`PinMode`] on
//! the [`Program`](crate::Program) assigns each runtime thread a core at
//! spawn, either round-robin over all online cores or from an explicit
//! list, and the per-thread placement is recorded in the
//! [`Report`](crate::Report) so the critical-path view can say which core
//! ran the dominant stage.
//!
//! The crate forbids `unsafe`, so pinning does not call
//! `sched_setaffinity(2)` directly.  On Linux a thread instead learns its
//! own TID from `/proc/thread-self` and delegates to `taskset(1)`, which
//! performs the same syscall on our behalf.  Where either piece is missing
//! (non-Linux hosts, containers without util-linux) pinning degrades to a
//! recorded no-op: the run proceeds unpinned and the report shows no
//! placement rather than wrong placement.

use crate::degrade::WarnOnce;
use crate::profile::current_tid;

/// How a [`Program`](crate::Program) maps runtime threads onto cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinMode {
    /// Assign cores `0, 1, 2, …` round-robin over every online core, in
    /// thread spawn order (stage/replica threads first, then sources,
    /// then sinks — so stage threads get the distinct cores first).
    RoundRobin,
    /// Round-robin over an explicit core list (e.g. one NUMA node, or
    /// every other core to skip SMT siblings).  Must be non-empty.
    Cores(Vec<usize>),
}

impl PinMode {
    /// The core list this mode cycles over: the explicit list, or
    /// `0..available_parallelism` for round-robin.  Round-robin on a
    /// single-core host returns no cores at all: pinning every thread to
    /// the only core changes nothing except the per-thread `taskset`
    /// exec, so the placement degrades to a no-op instead of a tax.  An
    /// explicit list is honored verbatim — the caller asked for it.
    pub(crate) fn cores(&self) -> Vec<usize> {
        match self {
            PinMode::RoundRobin => match core_count() {
                1 => Vec::new(),
                n => (0..n).collect(),
            },
            PinMode::Cores(cores) => cores.clone(),
        }
    }
}

/// Number of cores the scheduler will let this process use.
pub(crate) fn core_count() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Pin the calling thread to `core`.  Returns `true` when the affinity
/// change was applied, `false` when pinning is unavailable on this host
/// (the thread keeps running unpinned).
pub(crate) fn pin_current_thread(core: usize) -> bool {
    // First pinning failure is reported once per process: a fleet of
    // stage threads failing identically should not flood the log.
    static WARN: WarnOnce = WarnOnce::new();
    match try_pin(core) {
        Ok(()) => true,
        Err(reason) => {
            WARN.warn(|| format!("fg: core pinning unavailable, running unpinned ({reason})"));
            false
        }
    }
}

fn try_pin(core: usize) -> Result<(), String> {
    let tid = current_tid()?;
    let out = std::process::Command::new("taskset")
        .args(["-p", "-c", &core.to_string(), &tid.to_string()])
        .output()
        .map_err(|e| format!("taskset unavailable: {e}"))?;
    if out.status.success() {
        Ok(())
    } else {
        Err(format!(
            "taskset -p -c {core} {tid} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_all_cores() {
        let cores = PinMode::RoundRobin.cores();
        if core_count() == 1 {
            // Single-core: pinning would be a per-thread exec with no
            // effect, so round-robin degrades to "place nothing".
            assert!(cores.is_empty());
        } else {
            assert_eq!(cores.len(), core_count());
            assert_eq!(cores.first(), Some(&0));
        }
    }

    #[test]
    fn explicit_list_is_used_verbatim() {
        assert_eq!(PinMode::Cores(vec![2, 4]).cores(), vec![2, 4]);
    }

    #[test]
    fn pin_current_thread_never_panics() {
        // Applied or degraded, the call must return rather than unwind —
        // teardown correctness depends on stage threads always reaching
        // their stage body.
        let _ = pin_current_thread(0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn current_tid_is_parseable_on_linux() {
        let tid = current_tid().expect("linux exposes /proc/thread-self");
        assert!(tid > 0);
    }
}
