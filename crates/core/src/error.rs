//! Error types for the FG runtime.

use std::fmt;

/// Errors produced while building or running an FG program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FgError {
    /// The program graph was malformed (empty pipeline, unknown stage,
    /// buffer conveyed to a pipeline the stage does not belong to, ...).
    Config(String),
    /// A stage returned an application-level error; the program was torn down.
    Stage {
        /// Name of the failing stage.
        stage: String,
        /// The message the stage reported.
        message: String,
    },
    /// A stage panicked; the program was torn down.
    Panic {
        /// Name of the panicking stage.
        stage: String,
        /// Best-effort panic payload rendered to a string.
        message: String,
    },
    /// The program is shutting down because some other stage failed; queue
    /// operations in the remaining stages observe this error.
    Cancelled,
    /// A stage used the context incorrectly at runtime (e.g. called
    /// `accept()` on a stage with several input pipelines).
    Usage(String),
    /// The watchdog saw no pipeline-wide progress for its timeout and
    /// aborted the program; `culprit` is its best guess at the wedged task.
    Stalled {
        /// Best-guess culprit thread/stage name ("unknown" when the
        /// heuristic found none).
        culprit: String,
    },
}

impl fmt::Display for FgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FgError::Config(m) => write!(f, "FG configuration error: {m}"),
            FgError::Stage { stage, message } => {
                write!(f, "stage `{stage}` failed: {message}")
            }
            FgError::Panic { stage, message } => {
                write!(f, "stage `{stage}` panicked: {message}")
            }
            FgError::Cancelled => write!(f, "FG program cancelled"),
            FgError::Usage(m) => write!(f, "FG usage error: {m}"),
            FgError::Stalled { culprit } => {
                write!(
                    f,
                    "FG watchdog aborted a stalled program (culprit: {culprit})"
                )
            }
        }
    }
}

impl std::error::Error for FgError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FgError>;

impl FgError {
    /// Build a [`FgError::Stage`] from any displayable error.
    pub fn stage(stage: &str, err: impl fmt::Display) -> Self {
        FgError::Stage {
            stage: stage.to_string(),
            message: err.to_string(),
        }
    }

    /// True when this error is a secondary "shutting down" error rather than
    /// the root cause of a failure.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, FgError::Cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = FgError::Config("bad".into());
        assert!(e.to_string().contains("configuration"));
        let e = FgError::stage("read", "io failed");
        assert_eq!(
            e,
            FgError::Stage {
                stage: "read".into(),
                message: "io failed".into()
            }
        );
        assert!(e.to_string().contains("read"));
        assert!(FgError::Cancelled.is_cancelled());
        assert!(!e.is_cancelled());
    }
}
