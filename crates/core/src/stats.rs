//! Per-stage timing statistics.
//!
//! FG's value proposition is *overlap*: while one stage blocks on a
//! high-latency operation, other stages' threads make progress.  To make that
//! overlap observable (and to power the paper's per-pass breakdowns without
//! an external profiler), the runtime records, for every stage:
//!
//! * time spent blocked waiting to **accept** a buffer (starved),
//! * time spent blocked waiting to **convey** a buffer (backpressured),
//! * the remaining wall time, which is the stage's own **busy** time, and
//! * how many buffers it processed.

use std::time::Duration;

/// What a traced stage was doing during a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Blocked waiting to accept a buffer (starved).
    Accept,
    /// Blocked waiting to convey a buffer (backpressured).
    Convey,
}

/// One blocked interval of a traced stage, in nanoseconds since the
/// program's start.  The gaps between blocked spans are the stage's busy
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What the stage was waiting on.
    pub kind: SpanKind,
    /// Nanoseconds since program start when the wait began.
    pub start_ns: u64,
    /// Nanoseconds since program start when the wait ended.
    pub end_ns: u64,
}

/// Timing record for one stage (or one source/sink) of a finished program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Stage name as given at construction.
    pub name: String,
    /// Wall-clock time from thread start to thread exit.
    pub wall: Duration,
    /// Time blocked inside `accept`/`accept_from`/`accept_any`.
    pub blocked_accept: Duration,
    /// Time blocked inside `convey` (downstream queue full).
    pub blocked_convey: Duration,
    /// Buffers this stage accepted.
    pub buffers_in: u64,
    /// Buffers this stage conveyed.
    pub buffers_out: u64,
    /// Blocked intervals, present when the program ran with
    /// [`Program::enable_tracing`](crate::Program::enable_tracing).
    pub spans: Vec<Span>,
}

impl StageStats {
    /// Time the stage spent doing its own work (wall minus blocking).
    pub fn busy(&self) -> Duration {
        self.wall
            .saturating_sub(self.blocked_accept)
            .saturating_sub(self.blocked_convey)
    }

    /// Fraction of wall time spent busy, in `[0, 1]`; zero for a zero-wall
    /// stage.
    pub fn utilization(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            self.busy().as_secs_f64() / wall
        }
    }
}

/// Report produced by a finished [`Program`](crate::Program) run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Wall-clock duration of the whole program (all pipelines).
    pub wall: Duration,
    /// One entry per stage thread, in declaration order, followed by the
    /// source and sink threads.
    pub stages: Vec<StageStats>,
    /// Number of OS threads the program created (stages + sources + sinks).
    /// Virtual stages and virtual pipelines reduce this count; experiment A2
    /// measures exactly this field.
    pub threads_spawned: usize,
}

impl Report {
    /// Look up the stats of a stage by name (first match).
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Sum of busy time across all stages — a proxy for total work performed.
    pub fn total_busy(&self) -> Duration {
        self.stages.iter().map(|s| s.busy()).sum()
    }

    /// Overlap factor: total busy time divided by wall time.  A value close
    /// to the number of concurrently-busy stages indicates good overlap; a
    /// value near 1.0 means execution was effectively serial.
    pub fn overlap_factor(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            self.total_busy().as_secs_f64() / wall
        }
    }

    /// Render a text Gantt chart of the traced stages: one row per stage,
    /// `width` time buckets across the program's wall time, with `#` for
    /// busy, `.` for starved (waiting to accept), and `o` for
    /// backpressured (waiting to convey).  Stages without spans (tracing
    /// disabled, or sources/sinks) are drawn from their aggregate numbers
    /// as a single proportion bar prefixed with `~`.
    ///
    /// Requires the program to have run with
    /// [`Program::enable_tracing`](crate::Program::enable_tracing) for
    /// per-interval resolution.
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let wall_ns = self.wall.as_nanos() as u64;
        let mut out = String::new();
        out.push_str(&format!(
            "gantt over {:.3}s, {} buckets ('#' busy, '.' starved, 'o' backpressured)\n",
            self.wall.as_secs_f64(),
            width
        ));
        let name_w = self
            .stages
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(5)
            .max(5);
        for s in &self.stages {
            let mut row = vec![b'#'; width];
            if s.spans.is_empty() {
                // No trace: render aggregate proportions, left-to-right.
                let total = s.wall.as_secs_f64().max(1e-12);
                let acc = ((s.blocked_accept.as_secs_f64() / total) * width as f64) as usize;
                let conv = ((s.blocked_convey.as_secs_f64() / total) * width as f64) as usize;
                for slot in row.iter_mut().take(acc.min(width)) {
                    *slot = b'.';
                }
                for slot in row.iter_mut().skip(width.saturating_sub(conv.min(width))) {
                    *slot = b'o';
                }
                out.push_str(&format!(
                    "{:<name_w$} ~{}\n",
                    s.name,
                    String::from_utf8(row).expect("ascii")
                ));
                continue;
            }
            if wall_ns > 0 {
                for span in &s.spans {
                    let a = (span.start_ns.min(wall_ns) as usize * width) / wall_ns as usize;
                    let b = (span.end_ns.min(wall_ns) as usize * width) / wall_ns as usize;
                    let ch = match span.kind {
                        SpanKind::Accept => b'.',
                        SpanKind::Convey => b'o',
                    };
                    for slot in row.iter_mut().take((b + 1).min(width)).skip(a) {
                        *slot = ch;
                    }
                }
            }
            out.push_str(&format!(
                "{:<name_w$}  {}\n",
                s.name,
                String::from_utf8(row).expect("ascii")
            ));
        }
        out
    }

    /// Render the report as an aligned text table: one row per stage with
    /// busy / starved / backpressured times, utilization, and buffer
    /// counts.  Useful for eyeballing where a pipeline's time goes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "wall {:.3}s, {} threads, overlap factor {:.2}\n",
            self.wall.as_secs_f64(),
            self.threads_spawned,
            self.overlap_factor()
        ));
        let name_w = self
            .stages
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(5)
            .max(5);
        out.push_str(&format!(
            "{:<name_w$} {:>9} {:>9} {:>9} {:>6} {:>8} {:>8}\n",
            "stage", "busy ms", "starve ms", "backp ms", "util", "bufs in", "bufs out",
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<name_w$} {:>9.1} {:>9.1} {:>9.1} {:>5.0}% {:>8} {:>8}\n",
                s.name,
                s.busy().as_secs_f64() * 1e3,
                s.blocked_accept.as_secs_f64() * 1e3,
                s.blocked_convey.as_secs_f64() * 1e3,
                s.utilization() * 100.0,
                s.buffers_in,
                s.buffers_out,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(wall_ms: u64, acc_ms: u64, conv_ms: u64) -> StageStats {
        StageStats {
            name: "s".into(),
            wall: Duration::from_millis(wall_ms),
            blocked_accept: Duration::from_millis(acc_ms),
            blocked_convey: Duration::from_millis(conv_ms),
            buffers_in: 1,
            buffers_out: 1,
            spans: Vec::new(),
        }
    }

    #[test]
    fn busy_subtracts_blocking() {
        let s = stats(100, 30, 20);
        assert_eq!(s.busy(), Duration::from_millis(50));
        assert!((s.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn busy_saturates_at_zero() {
        let s = stats(10, 30, 20);
        assert_eq!(s.busy(), Duration::ZERO);
    }

    #[test]
    fn report_lookup_and_overlap() {
        let report = Report {
            wall: Duration::from_millis(100),
            stages: vec![
                StageStats {
                    name: "read".into(),
                    ..stats(100, 0, 0)
                },
                StageStats {
                    name: "write".into(),
                    ..stats(100, 50, 0)
                },
            ],
            threads_spawned: 2,
        };
        assert!(report.stage("read").is_some());
        assert!(report.stage("nope").is_none());
        assert_eq!(report.total_busy(), Duration::from_millis(150));
        assert!((report.overlap_factor() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_edge_cases() {
        let s = stats(0, 0, 0);
        assert_eq!(s.utilization(), 0.0);
        let r = Report::default();
        assert_eq!(r.overlap_factor(), 0.0);
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn render_contains_all_stages_and_header() {
        let report = Report {
            wall: Duration::from_millis(250),
            stages: vec![
                StageStats {
                    name: "reader".into(),
                    wall: Duration::from_millis(250),
                    blocked_accept: Duration::from_millis(50),
                    blocked_convey: Duration::from_millis(25),
                    buffers_in: 10,
                    buffers_out: 10,
                    spans: Vec::new(),
                },
                StageStats {
                    name: "a-much-longer-stage-name".into(),
                    wall: Duration::from_millis(250),
                    blocked_accept: Duration::ZERO,
                    blocked_convey: Duration::ZERO,
                    buffers_in: 10,
                    buffers_out: 10,
                    spans: Vec::new(),
                },
            ],
            threads_spawned: 4,
        };
        let text = report.render();
        assert!(text.contains("reader"));
        assert!(text.contains("a-much-longer-stage-name"));
        assert!(text.contains("overlap factor"));
        assert!(text.contains("busy ms"));
        // All rows align: every line has the same field count layout; just
        // sanity-check line count = header + 2 stages + summary.
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn render_empty_report() {
        let text = Report::default().render();
        assert!(text.contains("0 threads"));
        assert_eq!(text.lines().count(), 2);
    }
}
