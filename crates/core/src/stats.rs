//! Per-stage timing statistics.
//!
//! FG's value proposition is *overlap*: while one stage blocks on a
//! high-latency operation, other stages' threads make progress.  To make that
//! overlap observable (and to power the paper's per-pass breakdowns without
//! an external profiler), the runtime records, for every stage:
//!
//! * time spent blocked waiting to **accept** a buffer (starved),
//! * time spent blocked waiting to **convey** a buffer (backpressured),
//! * the remaining wall time, which is the stage's own **busy** time, and
//! * how many buffers it processed.

use std::time::Duration;

use crate::metrics::MetricsSnapshot;

/// What a traced stage was doing during a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Blocked waiting to accept a buffer (starved).
    Accept,
    /// Blocked waiting to convey a buffer (backpressured).
    Convey,
}

/// One blocked interval of a traced stage, in nanoseconds since the
/// program's start.  The gaps between blocked spans are the stage's busy
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What the stage was waiting on.
    pub kind: SpanKind,
    /// Nanoseconds since program start when the wait began.
    pub start_ns: u64,
    /// Nanoseconds since program start when the wait ended.
    pub end_ns: u64,
}

/// Timing record for one stage (or one source/sink) of a finished program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Stage name as given at construction.
    pub name: String,
    /// CPU core this stage's thread was pinned to, when the program ran
    /// with [`Program::set_pinning`](crate::Program::set_pinning) and the
    /// affinity change took hold; `None` for unpinned runs and on hosts
    /// where pinning degraded to a no-op.
    pub core: Option<usize>,
    /// Wall-clock time from thread start to thread exit.
    pub wall: Duration,
    /// Time blocked inside `accept`/`accept_from`/`accept_any`.
    pub blocked_accept: Duration,
    /// Time blocked inside `convey` (downstream queue full).
    pub blocked_convey: Duration,
    /// Time a farm replica spent parked at the admission gate while the
    /// controller held the farm below its declared width.  Idle capacity:
    /// counted as neither busy nor starved.
    pub parked: Duration,
    /// Buffers this stage accepted.
    pub buffers_in: u64,
    /// Buffers this stage conveyed.
    pub buffers_out: u64,
    /// Blocked intervals, present when the program ran with
    /// [`Program::enable_tracing`](crate::Program::enable_tracing).
    pub spans: Vec<Span>,
}

impl StageStats {
    /// Time the stage spent doing its own work (wall minus blocking).
    pub fn busy(&self) -> Duration {
        self.wall
            .saturating_sub(self.blocked_accept)
            .saturating_sub(self.blocked_convey)
            .saturating_sub(self.parked)
    }

    /// Fraction of wall time spent busy, in `[0, 1]`; zero for a zero-wall
    /// stage.
    pub fn utilization(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            self.busy().as_secs_f64() / wall
        }
    }
}

/// Lifetime depth statistics of one queue of a finished program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueDepth {
    /// Queue name as assigned during wiring (e.g. `p[1]`, `recycle/g0`).
    pub name: String,
    /// Maximum number of items the queue could hold.
    pub capacity: usize,
    /// High-water mark of the queue's depth.  A queue pinned at capacity
    /// marks a backpressure boundary; one pinned near zero marks a starved
    /// consumer.
    pub max_depth: usize,
    /// Whether the planner specialized this queue to the single-producer
    /// single-consumer ring.
    pub spsc: bool,
    /// Queue implementation label (`"mutex"`, `"lockfree"`, or `"spsc"`);
    /// redundant with [`spsc`](QueueDepth::spsc) for the SPSC ring but the
    /// only way to tell the two MPMC flavors apart.
    pub flavor: String,
}

/// The stage chain of one pipeline, recorded so post-run analysis can tell
/// which stages are upstream or downstream of one another.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineShape {
    /// Pipeline name as declared.
    pub name: String,
    /// Stage names in chain order (excludes the implicit source and sink).
    pub stages: Vec<String>,
}

/// Report produced by a finished [`Program`](crate::Program) run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Wall-clock duration of the whole program (all pipelines).
    pub wall: Duration,
    /// One entry per stage thread, in declaration order, followed by the
    /// source and sink threads.
    pub stages: Vec<StageStats>,
    /// Number of OS threads the program created (stages + sources + sinks).
    /// Virtual stages and virtual pipelines reduce this count; experiment A2
    /// measures exactly this field.
    pub threads_spawned: usize,
    /// Depth statistics of every queue the program wired, in creation
    /// order.
    pub queues: Vec<QueueDepth>,
    /// Each pipeline's stage chain, in declaration order — the topology
    /// [`diagnose`](crate::analyze::diagnose) uses to attribute blockage
    /// upstream or downstream of the limiting stage.
    pub pipelines: Vec<PipelineShape>,
    /// Snapshot of the program's
    /// [`MetricsRegistry`](crate::metrics::MetricsRegistry), when one was
    /// attached with [`Program::set_metrics`](crate::Program::set_metrics);
    /// other layers (communicators, simulated disks) may merge their own
    /// snapshots in before rendering or export.
    pub metrics: MetricsSnapshot,
    /// The autotuning controller's decision audit log, when the program
    /// ran with a [`Controller`](crate::controller::Controller) attached.
    pub controller: Option<crate::controller::ControllerLog>,
    /// Final resource attribution (per-thread CPU, RSS, allocator
    /// counters, buffer ledger), when the run sampled one — see
    /// [`ResourceReport`](crate::profile::ResourceReport).
    pub resources: Option<crate::profile::ResourceReport>,
}

impl Report {
    /// Look up the stats of a stage by name (first match).
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Roll up the per-replica rows (`base#0`, `base#1`, …) of a
    /// replicated stage into one aggregate: wall is the slowest replica's
    /// wall (replicas run concurrently), blocked times and buffer counts
    /// are summed.  Returns `None` when no replica row matches, and the
    /// replica count alongside the aggregate otherwise.  Spans are not
    /// merged (per-replica spans stay on the individual rows).
    pub fn stage_rollup(&self, base: &str) -> Option<(StageStats, usize)> {
        let prefix = format!("{base}#");
        let mut agg: Option<StageStats> = None;
        let mut n = 0;
        for s in self.stages.iter().filter(|s| {
            s.name
                .strip_prefix(&prefix)
                .is_some_and(|rest| rest.chars().all(|c| c.is_ascii_digit()))
        }) {
            n += 1;
            let a = agg.get_or_insert_with(|| StageStats {
                name: base.to_string(),
                ..StageStats::default()
            });
            a.wall = a.wall.max(s.wall);
            a.blocked_accept += s.blocked_accept;
            a.blocked_convey += s.blocked_convey;
            a.buffers_in += s.buffers_in;
            a.buffers_out += s.buffers_out;
        }
        agg.map(|a| (a, n))
    }

    /// Sum of busy time across all stages — a proxy for total work performed.
    pub fn total_busy(&self) -> Duration {
        self.stages.iter().map(|s| s.busy()).sum()
    }

    /// Overlap factor: total busy time divided by wall time.  A value close
    /// to the number of concurrently-busy stages indicates good overlap; a
    /// value near 1.0 means execution was effectively serial.
    pub fn overlap_factor(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            self.total_busy().as_secs_f64() / wall
        }
    }

    /// The largest busy time of any single stage — a lower bound on the
    /// program's wall time no matter how the other stages are tuned.
    pub fn max_busy(&self) -> Duration {
        self.stages
            .iter()
            .map(|s| s.busy())
            .max()
            .unwrap_or_default()
    }

    /// Overlap *efficiency*: [`Report::max_busy`] over wall time, in
    /// `(0, 1]`.  Where [`Report::overlap_factor`] says how much work ran
    /// concurrently, efficiency says how close the run came to its
    /// bottleneck bound — 1.0 means wall time equals the limiting stage's
    /// busy time, i.e. every other stage hid completely behind it;
    /// [`analyze::diagnose`](crate::analyze::diagnose) warns when this
    /// drops low.
    pub fn overlap_efficiency(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            (self.max_busy().as_secs_f64() / wall).clamp(0.0, 1.0)
        }
    }

    /// Render a text Gantt chart of the traced stages: one row per stage,
    /// `width` time buckets across the program's wall time, with `#` for
    /// busy, `.` for starved (waiting to accept), and `o` for
    /// backpressured (waiting to convey).  Stages without spans (tracing
    /// disabled, or sources/sinks) are drawn from their aggregate numbers
    /// as a single proportion bar prefixed with `~`.
    ///
    /// Requires the program to have run with
    /// [`Program::enable_tracing`](crate::Program::enable_tracing) for
    /// per-interval resolution.
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let wall_ns = self.wall.as_nanos() as u64;
        let mut out = String::new();
        out.push_str(&format!(
            "gantt over {:.3}s, {} buckets ('#' busy, '.' starved, 'o' backpressured)\n",
            self.wall.as_secs_f64(),
            width
        ));
        let name_w = self
            .stages
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(5)
            .max(5);
        for s in &self.stages {
            let mut row = vec![b'#'; width];
            // One marker column between name and bar keeps every bar
            // starting at the same column: `~` flags an approximate
            // (untraced, proportion-drawn) row, space an exact one.
            let marker;
            if s.spans.is_empty() {
                marker = '~';
                // No trace: render aggregate proportions, left-to-right.
                let total = s.wall.as_secs_f64().max(1e-12);
                let acc = ((s.blocked_accept.as_secs_f64() / total) * width as f64) as usize;
                let conv = ((s.blocked_convey.as_secs_f64() / total) * width as f64) as usize;
                for slot in row.iter_mut().take(acc.min(width)) {
                    *slot = b'.';
                }
                for slot in row.iter_mut().skip(width.saturating_sub(conv.min(width))) {
                    *slot = b'o';
                }
            } else {
                marker = ' ';
                if wall_ns > 0 {
                    for span in &s.spans {
                        // Bucket math in u128: start_ns * width overflows
                        // u64 for runs past ~3 hours at width 100.  A span
                        // ending exactly at wall_ns maps to bucket `width`,
                        // which must clamp into the last bucket.
                        let a = ((u128::from(span.start_ns.min(wall_ns)) * width as u128)
                            / u128::from(wall_ns)) as usize;
                        let b = ((u128::from(span.end_ns.min(wall_ns)) * width as u128)
                            / u128::from(wall_ns)) as usize;
                        let (a, b) = (a.min(width - 1), b.min(width - 1));
                        let ch = match span.kind {
                            SpanKind::Accept => b'.',
                            SpanKind::Convey => b'o',
                        };
                        for slot in row.iter_mut().take(b + 1).skip(a) {
                            *slot = ch;
                        }
                    }
                }
            }
            out.push_str(&format!(
                "{:<name_w$} {marker}{}\n",
                s.name,
                String::from_utf8(row).expect("ascii")
            ));
        }
        out
    }

    /// Render the report as an aligned text table: one row per stage with
    /// busy / starved / backpressured times, utilization, and buffer
    /// counts.  Useful for eyeballing where a pipeline's time goes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "wall {:.3}s, {} threads, overlap factor {:.2}\n",
            self.wall.as_secs_f64(),
            self.threads_spawned,
            self.overlap_factor()
        ));
        let name_w = self
            .stages
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(5)
            .max(5);
        // The core column only exists when some thread was actually
        // pinned; unpinned runs keep the historical table shape.
        let pinned = self.stages.iter().any(|s| s.core.is_some());
        out.push_str(&format!(
            "{:<name_w$} {:>9} {:>9} {:>9} {:>6} {:>8} {:>8}",
            "stage", "busy ms", "starve ms", "backp ms", "util", "bufs in", "bufs out",
        ));
        if pinned {
            out.push_str(&format!(" {:>4}", "core"));
        }
        out.push('\n');
        for s in &self.stages {
            out.push_str(&format!(
                "{:<name_w$} {:>9.1} {:>9.1} {:>9.1} {:>5.0}% {:>8} {:>8}",
                s.name,
                s.busy().as_secs_f64() * 1e3,
                s.blocked_accept.as_secs_f64() * 1e3,
                s.blocked_convey.as_secs_f64() * 1e3,
                s.utilization() * 100.0,
                s.buffers_in,
                s.buffers_out,
            ));
            if pinned {
                match s.core {
                    Some(c) => out.push_str(&format!(" {c:>4}")),
                    None => out.push_str(&format!(" {:>4}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render a full-run dashboard: the stage table, the Gantt chart, a
    /// queue-depth table, and — when a
    /// [`MetricsRegistry`](crate::metrics::MetricsRegistry) was attached —
    /// one metrics section per layer, grouped by the first segment of each
    /// metric name (`core/…`, `comm/…`, `disk/…`).
    pub fn render_dashboard(&self) -> String {
        let mut out = String::new();
        out.push_str("== stages ==\n");
        out.push_str(&self.render());
        out.push_str("\n== gantt ==\n");
        out.push_str(&self.render_gantt(60));
        if !self.queues.is_empty() {
            out.push_str("\n== queues ==\n");
            let name_w = self
                .queues
                .iter()
                .map(|q| q.name.len())
                .max()
                .unwrap_or(5)
                .max(5);
            out.push_str(&format!(
                "{:<name_w$} {:>8} {:>9} {:>6} {:>8}\n",
                "queue", "capacity", "max depth", "fill", "flavor"
            ));
            for q in &self.queues {
                let fill = if q.capacity == 0 {
                    0.0
                } else {
                    q.max_depth as f64 / q.capacity as f64 * 100.0
                };
                out.push_str(&format!(
                    "{:<name_w$} {:>8} {:>9} {:>5.0}% {:>8}\n",
                    q.name, q.capacity, q.max_depth, fill, q.flavor
                ));
            }
        }
        // The resource section: the report's own final snapshot when it
        // has one, else whatever `resource/*` gauges a profiler published
        // into the metrics snapshot.
        let resources = self
            .resources
            .clone()
            .or_else(|| crate::profile::ResourceReport::from_metrics(&self.metrics));
        if let Some(resources) = resources.filter(|r| !r.is_empty()) {
            out.push_str("\n== resources ==\n");
            out.push_str(&resources.render());
        }
        // When the metrics carry per-peer traffic counters (a cluster
        // run's `comm/bytes/{src}->{dst}` names), render them as a matrix
        // heatmap and roll the per-rank comm histograms up into one table.
        let peers: Vec<(usize, usize, u64)> = self
            .metrics
            .counters
            .iter()
            .filter_map(|(k, v)| {
                crate::cluster_report::parse_peer_counter(k, "comm/bytes/").map(|(s, d)| (s, d, *v))
            })
            .collect();
        if !peers.is_empty() {
            let nodes = peers.iter().map(|&(s, d, _)| s.max(d) + 1).max().unwrap();
            let mut matrix = vec![vec![0u64; nodes]; nodes];
            for (s, d, v) in peers {
                matrix[s][d] = matrix[s][d].max(v);
            }
            out.push_str("\n== traffic ==\n");
            out.push_str(&crate::cluster_report::render_traffic_matrix(&matrix));
            let mut rollup = String::new();
            for rank in 0..nodes {
                let mut cells = Vec::new();
                for op in [
                    "send",
                    "recv_wait",
                    "barrier",
                    "broadcast",
                    "allgather",
                    "alltoallv",
                ] {
                    if let Some(h) = self.metrics.histogram(&format!("comm/{op}_ns/r{rank}")) {
                        if h.count > 0 {
                            cells.push(format!(
                                "{op} n={} total={}",
                                h.count,
                                crate::cluster_report::fmt_dur_ns(h.sum)
                            ));
                        }
                    }
                }
                if !cells.is_empty() {
                    rollup.push_str(&format!("  r{rank}: {}\n", cells.join(", ")));
                }
            }
            if !rollup.is_empty() {
                out.push_str("per-rank comm time:\n");
                out.push_str(&rollup);
            }
        }
        if !self.metrics.is_empty() {
            // Group by the metric name's first path segment so each layer
            // (core, comm, disk, …) renders as its own section.
            let group_of = |name: &str| name.split('/').next().unwrap_or(name).to_string();
            let mut groups: Vec<String> = self
                .metrics
                .counters
                .iter()
                .map(|(k, _)| group_of(k))
                .chain(self.metrics.gauges.iter().map(|(k, _)| group_of(k)))
                .chain(self.metrics.histograms.iter().map(|(k, _)| group_of(k)))
                .collect();
            groups.sort();
            groups.dedup();
            for g in groups {
                out.push_str(&format!("\n== metrics: {g} ==\n"));
                for (k, v) in self
                    .metrics
                    .counters
                    .iter()
                    .filter(|(k, _)| group_of(k) == g)
                {
                    out.push_str(&format!("{k} = {v}\n"));
                }
                for (k, gauge) in self.metrics.gauges.iter().filter(|(k, _)| group_of(k) == g) {
                    out.push_str(&format!("{k} = {} (peak {})\n", gauge.value, gauge.peak));
                }
                for (k, h) in self
                    .metrics
                    .histograms
                    .iter()
                    .filter(|(k, _)| group_of(k) == g)
                {
                    out.push_str(&format!(
                        "{k}: n={} mean={:.0} p50<={} p99<={} max={}\n",
                        h.count,
                        h.mean(),
                        h.percentile(0.5),
                        h.percentile(0.99),
                        h.max
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(wall_ms: u64, acc_ms: u64, conv_ms: u64) -> StageStats {
        StageStats {
            name: "s".into(),
            wall: Duration::from_millis(wall_ms),
            blocked_accept: Duration::from_millis(acc_ms),
            blocked_convey: Duration::from_millis(conv_ms),
            buffers_in: 1,
            buffers_out: 1,
            ..StageStats::default()
        }
    }

    #[test]
    fn busy_subtracts_blocking() {
        let s = stats(100, 30, 20);
        assert_eq!(s.busy(), Duration::from_millis(50));
        assert!((s.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn busy_saturates_at_zero() {
        let s = stats(10, 30, 20);
        assert_eq!(s.busy(), Duration::ZERO);
    }

    #[test]
    fn report_lookup_and_overlap() {
        let report = Report {
            wall: Duration::from_millis(100),
            stages: vec![
                StageStats {
                    name: "read".into(),
                    ..stats(100, 0, 0)
                },
                StageStats {
                    name: "write".into(),
                    ..stats(100, 50, 0)
                },
            ],
            threads_spawned: 2,
            ..Report::default()
        };
        assert!(report.stage("read").is_some());
        assert!(report.stage("nope").is_none());
        assert_eq!(report.total_busy(), Duration::from_millis(150));
        assert!((report.overlap_factor() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_edge_cases() {
        let s = stats(0, 0, 0);
        assert_eq!(s.utilization(), 0.0);
        let r = Report::default();
        assert_eq!(r.overlap_factor(), 0.0);
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn render_contains_all_stages_and_header() {
        let report = Report {
            wall: Duration::from_millis(250),
            stages: vec![
                StageStats {
                    name: "reader".into(),
                    wall: Duration::from_millis(250),
                    blocked_accept: Duration::from_millis(50),
                    blocked_convey: Duration::from_millis(25),
                    buffers_in: 10,
                    buffers_out: 10,
                    ..StageStats::default()
                },
                StageStats {
                    name: "a-much-longer-stage-name".into(),
                    wall: Duration::from_millis(250),
                    blocked_accept: Duration::ZERO,
                    blocked_convey: Duration::ZERO,
                    buffers_in: 10,
                    buffers_out: 10,
                    ..StageStats::default()
                },
            ],
            threads_spawned: 4,
            ..Report::default()
        };
        let text = report.render();
        assert!(text.contains("reader"));
        assert!(text.contains("a-much-longer-stage-name"));
        assert!(text.contains("overlap factor"));
        assert!(text.contains("busy ms"));
        // All rows align: every line has the same field count layout; just
        // sanity-check line count = header + 2 stages + summary.
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn render_empty_report() {
        let text = Report::default().render();
        assert!(text.contains("0 threads"));
        assert_eq!(text.lines().count(), 2);
    }

    fn gantt_report() -> Report {
        Report {
            wall: Duration::from_nanos(1_000),
            stages: vec![
                StageStats {
                    name: "traced".into(),
                    wall: Duration::from_nanos(1_000),
                    buffers_in: 1,
                    buffers_out: 1,
                    spans: vec![Span {
                        kind: SpanKind::Accept,
                        start_ns: 900,
                        end_ns: 1_000, // ends exactly at wall
                    }],
                    ..StageStats::default()
                },
                StageStats {
                    name: "untraced".into(),
                    wall: Duration::from_nanos(1_000),
                    blocked_accept: Duration::from_nanos(500),
                    buffers_in: 1,
                    buffers_out: 1,
                    ..StageStats::default()
                },
            ],
            threads_spawned: 2,
            ..Report::default()
        }
    }

    #[test]
    fn gantt_clamps_span_ending_at_wall_into_last_bucket() {
        let text = gantt_report().render_gantt(10);
        let traced = text.lines().find(|l| l.starts_with("traced")).unwrap();
        // The 900..1000ns accept span must fill exactly the last bucket and
        // not be lost to an out-of-range index.
        assert!(traced.ends_with("#########."), "row was {traced:?}");
    }

    #[test]
    fn gantt_rows_align_between_traced_and_untraced_stages() {
        let text = gantt_report().render_gantt(10);
        let bars: Vec<usize> = text
            .lines()
            .skip(1) // header
            .map(|l| {
                l.char_indices()
                    .rev()
                    .take(10)
                    .last()
                    .map(|(i, _)| i)
                    .unwrap()
            })
            .collect();
        // Every bar (the last 10 chars of each row) starts at the same
        // column regardless of the `~` approximate marker.
        assert_eq!(bars.len(), 2);
        assert_eq!(bars[0], bars[1], "bars misaligned in:\n{text}");
        // The untraced row is flagged, the traced row is not.
        assert!(text.lines().any(|l| l.contains(" ~")));
    }

    #[test]
    fn gantt_survives_long_runs_without_overflow() {
        // 4 hours in ns * width 100 overflows u64; the u128 bucket math
        // must keep the row correct.
        let four_hours_ns = 4 * 3600 * 1_000_000_000u64;
        let report = Report {
            wall: Duration::from_nanos(four_hours_ns),
            stages: vec![StageStats {
                name: "s".into(),
                wall: Duration::from_nanos(four_hours_ns),
                spans: vec![Span {
                    kind: SpanKind::Convey,
                    start_ns: four_hours_ns / 2,
                    end_ns: four_hours_ns,
                }],
                ..StageStats::default()
            }],
            threads_spawned: 1,
            ..Report::default()
        };
        let text = report.render_gantt(100);
        let row = text.lines().nth(1).unwrap();
        let bar: String = row.chars().rev().take(100).collect();
        assert_eq!(bar.chars().filter(|&c| c == 'o').count(), 50);
    }

    #[test]
    fn dashboard_sections_render() {
        let mut report = gantt_report();
        report.queues.push(QueueDepth {
            name: "p[1]".into(),
            capacity: 4,
            max_depth: 3,
            spsc: true,
            flavor: "spsc".into(),
        });
        let reg = crate::metrics::MetricsRegistry::new();
        reg.counter("core/accepts").add(7);
        reg.histogram("disk/read_ns").record(1_000);
        reg.gauge("comm/inflight").set(2);
        report.metrics = reg.snapshot();
        let text = report.render_dashboard();
        for section in [
            "== stages ==",
            "== gantt ==",
            "== queues ==",
            "== metrics: core ==",
            "== metrics: disk ==",
            "== metrics: comm ==",
        ] {
            assert!(text.contains(section), "missing {section} in:\n{text}");
        }
        assert!(text.contains("core/accepts = 7"));
        assert!(text.contains("p[1]"));
        // No per-peer counters -> no traffic section.
        assert!(!text.contains("== traffic =="));
    }

    #[test]
    fn dashboard_renders_traffic_matrix_from_peer_counters() {
        let mut report = gantt_report();
        let reg = crate::metrics::MetricsRegistry::new();
        reg.counter("comm/bytes/0->1").add(4096);
        reg.counter("comm/bytes/1->0").add(1024);
        reg.histogram("comm/send_ns/r0").record(2_000_000);
        reg.histogram("comm/barrier_ns/r1").record(500_000);
        report.metrics = reg.snapshot();
        let text = report.render_dashboard();
        assert!(text.contains("== traffic =="), "missing section:\n{text}");
        assert!(text.contains("traffic matrix"), "missing matrix:\n{text}");
        assert!(text.contains("4.0K"), "missing cell:\n{text}");
        assert!(
            text.contains("per-rank comm time:"),
            "missing rollup:\n{text}"
        );
        assert!(text.contains("r0: send n=1"), "missing r0 row:\n{text}");
        assert!(text.contains("r1: barrier n=1"), "missing r1 row:\n{text}");
    }
}
