//! Warn-once graceful degradation.
//!
//! Several optional capabilities of the runtime lean on facilities that
//! may simply be absent — `taskset(1)` and `/proc/thread-self` for core
//! pinning ([`affinity`](crate::affinity)), `/proc/self/task` for the
//! resource profiler ([`profile`](crate::profile)).  The policy in every
//! case is the same: the capability degrades to a recorded no-op and the
//! *first* failure is reported to stderr, once per process — a fleet of
//! stage threads failing identically must not flood the log.
//!
//! [`WarnOnce`] is that policy as a value.  Each degradable capability
//! owns one `static` instance; the message closure only runs (and only
//! allocates) on the single losing `swap`.

use std::sync::atomic::{AtomicBool, Ordering};

/// One-shot stderr warning gate for a degradable capability.
pub struct WarnOnce(AtomicBool);

impl WarnOnce {
    /// A gate that has not fired yet.
    pub const fn new() -> Self {
        WarnOnce(AtomicBool::new(false))
    }

    /// Print `message()` to stderr the first time this gate fires;
    /// subsequent calls do nothing.  Returns `true` on the firing call.
    pub fn warn(&self, message: impl FnOnce() -> String) -> bool {
        if self.0.swap(true, Ordering::Relaxed) {
            return false;
        }
        eprintln!("{}", message());
        true
    }

    /// True once [`WarnOnce::warn`] has fired.
    pub fn warned(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for WarnOnce {
    fn default() -> Self {
        WarnOnce::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once() {
        let gate = WarnOnce::new();
        assert!(!gate.warned());
        assert!(gate.warn(|| "first".into()));
        assert!(gate.warned());
        // The message closure of a suppressed warning must not run.
        assert!(!gate.warn(|| panic!("suppressed closure ran")));
    }
}
