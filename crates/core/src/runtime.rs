//! Thread spawning, source/sink loops, and program execution.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::buffer::{Buffer, PipelineId};
use crate::error::{FgError, Result};
use crate::metrics::MetricsRegistry;
use crate::observe::Observer;
use crate::queue::{Item, Queue};
use crate::stage::{Port, Registry, ReplicaGroup, Rounds, Stage, StageCtx, StopFlag};
use crate::stats::{Report, StageStats};
use crate::trace::{
    guess_culprit, Postmortem, SpanRing, ThreadPostmortem, ThreadState, TraceKind, TraceSink,
    WatchdogAction, WatchdogCfg,
};

/// One pipeline served by a source set.
pub(crate) struct SourcePipe {
    pub(crate) pipeline: PipelineId,
    pub(crate) first: Arc<Queue>,
    pub(crate) rounds: Rounds,
    pub(crate) stop: Arc<StopFlag>,
    pub(crate) buffers: usize,
    pub(crate) buffer_size: usize,
    /// Live pool handle when a controller may resize this pipeline's
    /// buffer pool; the source grows/shrinks at its round boundary.
    pub(crate) pool: Option<Arc<crate::controller::PoolControl>>,
}

/// A source thread: injects rounds for one pipeline, or for all pipelines
/// of a virtual group (the automatically-virtualized source of §IV).
pub(crate) struct SourceSet {
    pub(crate) label: String,
    pub(crate) pipes: Vec<SourcePipe>,
    pub(crate) recycle: Arc<Queue>,
}

/// A sink thread: recycles buffers back to the source(s) and retires after
/// seeing every member pipeline's caboose.
pub(crate) struct SinkSet {
    pub(crate) label: String,
    pub(crate) queue: Arc<Queue>,
    pub(crate) recycle: Arc<Queue>,
    pub(crate) members: usize,
}

/// A stage ready to run on its own thread.
pub(crate) struct StageTask {
    pub(crate) name: String,
    pub(crate) stage: Box<dyn Stage>,
    pub(crate) ports: Vec<Port>,
    pub(crate) shared_input: Option<Arc<Queue>>,
    pub(crate) replica_group: Option<Arc<ReplicaGroup>>,
    /// Index within the replica group (0 for ordinary stages).
    pub(crate) replica_index: usize,
}

/// Everything `Program::wire` produced, ready to execute.
pub(crate) struct Plan {
    pub(crate) registry: Arc<Registry>,
    pub(crate) tasks: Vec<StageTask>,
    pub(crate) sources: Vec<SourceSet>,
    pub(crate) sinks: Vec<SinkSet>,
    pub(crate) trace: bool,
    pub(crate) observer: Option<Arc<dyn Observer>>,
    pub(crate) metrics: Option<Arc<MetricsRegistry>>,
    pub(crate) trace_sink: Option<Arc<TraceSink>>,
    pub(crate) trace_group: Option<u32>,
    pub(crate) watchdog: Option<WatchdogCfg>,
    pub(crate) controller: Option<crate::controller::ControllerCfg>,
    pub(crate) pools: Vec<Arc<crate::controller::PoolControl>>,
    pub(crate) farms: Vec<Arc<ReplicaGroup>>,
    pub(crate) depth_actuators: Vec<Arc<dyn crate::controller::DepthActuator>>,
    pub(crate) pipelines: Vec<crate::stats::PipelineShape>,
    pub(crate) pin: Option<crate::affinity::PinMode>,
    pub(crate) ledger: Option<Arc<crate::profile::MemoryLedger>>,
}

/// Round-robin core assigner over the plan's pin map.  Threads draw cores
/// in spawn order — stage/replica threads first, then sources, then sinks
/// — so the stage threads claim the distinct cores before the (mostly
/// blocked) source/sink threads wrap around the list.
struct CorePlacement {
    cores: Vec<usize>,
    next: usize,
}

impl CorePlacement {
    fn new(pin: Option<crate::affinity::PinMode>) -> Self {
        CorePlacement {
            cores: pin.map(|m| m.cores()).unwrap_or_default(),
            next: 0,
        }
    }

    fn assign(&mut self) -> Option<usize> {
        if self.cores.is_empty() {
            return None;
        }
        let core = self.cores[self.next % self.cores.len()];
        self.next += 1;
        Some(core)
    }
}

/// Apply a [`CorePlacement`] assignment on the calling thread.  Returns
/// the core only when the affinity change actually took hold, so reports
/// never show a placement the scheduler is free to ignore.
fn pin_self(core: Option<usize>) -> Option<usize> {
    core.filter(|&c| crate::affinity::pin_current_thread(c))
}

pub(crate) fn execute(program_name: String, plan: Plan) -> Result<Report> {
    let Plan {
        registry,
        tasks,
        sources,
        sinks,
        trace,
        observer,
        metrics,
        trace_sink,
        trace_group,
        watchdog,
        controller,
        pools,
        farms,
        depth_actuators,
        pipelines,
        pin,
        ledger,
    } = plan;
    let mut placement = CorePlacement::new(pin);

    // The watchdog needs the flight recorder's activity clock, so it
    // implies an (internal, never-exported) sink when none was installed.
    let trace_sink = match (trace_sink, &watchdog) {
        (None, Some(_)) => Some(TraceSink::new()),
        (sink, _) => sink,
    };
    if let Some(sink) = &trace_sink {
        sink.touch();
    }
    let ring_for = |task: &str| {
        trace_sink.as_ref().map(|s| {
            let name = format!("{program_name}/{task}");
            match trace_group {
                Some(g) => s.register_thread_in_group(name, g),
                None => s.register_thread(name),
            }
        })
    };

    let start = Instant::now();
    let mut handles = Vec::new();

    for task in tasks {
        let registry = Arc::clone(&registry);
        let observer = observer.clone();
        let metrics = metrics.clone();
        let ring = ring_for(&task.name);
        let name = task.name.clone();
        let thread_name = format!("{program_name}/{name}");
        let profile_name = thread_name.clone();
        // Replicas (`sort#0`, `sort#1`, …) share one ledger row: the
        // question the ledger answers is "how much does *sort* hold".
        let stage_ledger = ledger
            .as_ref()
            .map(|l| l.stage(crate::profile::replica_base(&name)));
        let epoch = if trace { Some(start) } else { None };
        let core = placement.assign();
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let _reg = crate::profile::register_current_thread(profile_name.clone());
                let exit_metrics = metrics.clone();
                let stats = run_stage_thread(
                    task,
                    registry,
                    epoch,
                    observer,
                    metrics,
                    ring,
                    core,
                    stage_ledger,
                );
                // Leave a final CPU sample behind: short-lived threads can
                // exit between profiler ticks and would otherwise vanish
                // from the per-stage attribution.
                if let Some(m) = &exit_metrics {
                    crate::profile::publish_exit_sample(&profile_name, m);
                }
                stats
            })
            .map_err(|e| FgError::Config(format!("failed to spawn stage thread: {e}")))?;
        handles.push(handle);
    }
    for src in sources {
        let registry = Arc::clone(&registry);
        let observer = observer.clone();
        let ring = ring_for(&src.label);
        let sink_ids = trace_sink.clone();
        let thread_name = format!("{program_name}/{}", src.label);
        let profile_name = thread_name.clone();
        let pool_ledger = ledger.clone();
        let exit_metrics = metrics.clone();
        let core = placement.assign();
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let _reg = crate::profile::register_current_thread(profile_name.clone());
                let stats = run_source(src, registry, observer, ring, sink_ids, core, pool_ledger);
                if let Some(m) = &exit_metrics {
                    crate::profile::publish_exit_sample(&profile_name, m);
                }
                stats
            })
            .map_err(|e| FgError::Config(format!("failed to spawn source thread: {e}")))?;
        handles.push(handle);
    }
    for sink in sinks {
        let observer = observer.clone();
        let ring = ring_for(&sink.label);
        let thread_name = format!("{program_name}/{}", sink.label);
        let profile_name = thread_name.clone();
        let exit_metrics = metrics.clone();
        let core = placement.assign();
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let _reg = crate::profile::register_current_thread(profile_name.clone());
                let stats = run_sink(sink, observer, ring, core);
                if let Some(m) = &exit_metrics {
                    crate::profile::publish_exit_sample(&profile_name, m);
                }
                stats
            })
            .map_err(|e| FgError::Config(format!("failed to spawn sink thread: {e}")))?;
        handles.push(handle);
    }

    // Close the observability loop: the controller samples the metrics
    // registry and actuates farm widths, buffer pools, and I/O depths
    // while the stage threads run.  Without a registry it has nothing to
    // observe, so it is skipped.
    let controller = match (&controller, &metrics) {
        (Some(cfg), Some(m)) => Some(crate::controller::Controller::start(
            Arc::clone(m),
            cfg.clone(),
            crate::controller::Actuators {
                farms,
                pools,
                depths: depth_actuators,
            },
            ring_for("controller"),
        )),
        _ => None,
    };

    // The watchdog polls the sink's pipeline-wide activity clock and fires
    // a post-mortem if it goes quiet for the configured timeout.
    let watchdog_handle = watchdog.map(|cfg| {
        let sink = Arc::clone(trace_sink.as_ref().expect("watchdog implies a sink"));
        let registry = Arc::clone(&registry);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let gate2 = Arc::clone(&gate);
        let program = program_name.clone();
        let profile_name = format!("{program_name}/watchdog");
        let wd_ledger = ledger.clone();
        let handle = std::thread::Builder::new()
            .name(format!("{program_name}/watchdog"))
            .spawn(move || {
                let _reg = crate::profile::register_current_thread(profile_name);
                run_watchdog(cfg, sink, registry, program, gate2, wd_ledger)
            })
            .expect("failed to spawn watchdog thread");
        (handle, gate)
    });

    let threads_spawned = handles.len();
    let mut stages = Vec::with_capacity(threads_spawned);
    for handle in handles {
        match handle.join() {
            Ok(stats) => stages.push(stats),
            Err(_) => {
                // The wrapper catches panics; reaching here means the
                // wrapper itself failed, which we still surface.
                registry.cancel(FgError::Panic {
                    stage: "<runtime>".into(),
                    message: "stage thread wrapper panicked".into(),
                });
            }
        }
    }

    if let Some((handle, gate)) = watchdog_handle {
        *gate.0.lock() = true;
        gate.1.notify_all();
        let _ = handle.join();
    }
    let controller_log = controller.map(|c| c.stop());

    if let Some(err) = registry.take_error() {
        return Err(err);
    }
    if registry.is_cancelled() {
        return Err(FgError::Cancelled);
    }
    Ok(Report {
        wall: start.elapsed(),
        stages,
        threads_spawned,
        queues: registry.queue_depths(),
        pipelines,
        metrics: metrics.map(|m| m.snapshot()).unwrap_or_default(),
        controller: controller_log,
        // Per-thread CPU rows are gone once the threads have joined; the
        // meaningful final attribution is whatever a ResourceProfiler
        // published into the metrics gauges during the run.  Entry points
        // that ran one (fgsort --profile) fill this in.
        resources: None,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_stage_thread(
    task: StageTask,
    registry: Arc<Registry>,
    trace_epoch: Option<Instant>,
    observer: Option<Arc<dyn Observer>>,
    metrics: Option<Arc<MetricsRegistry>>,
    ring: Option<Arc<SpanRing>>,
    core: Option<usize>,
    stage_ledger: Option<Arc<crate::profile::StageLedger>>,
) -> StageStats {
    let core = pin_self(core);
    let StageTask {
        name,
        mut stage,
        ports,
        shared_input,
        replica_group,
        replica_index,
    } = task;
    // When the tracking allocator serves this process, heap traffic on
    // this thread is charged to the stage's base name.  Skipped entirely
    // otherwise — tag slots are a bounded table, and untracked runs
    // shouldn't consume them.
    let _tag_scope = crate::alloc::installed().then(|| {
        crate::alloc::thread_tag_scope(crate::alloc::register_tag(crate::profile::replica_base(
            &name,
        )))
    });
    let start = Instant::now();
    let mut ctx = StageCtx::new(name.clone(), ports, shared_input, Arc::clone(&registry));
    if let Some(l) = stage_ledger {
        ctx.set_ledger(l);
    }
    if let Some(group) = replica_group {
        ctx.set_replica_group(group, replica_index);
    }
    if let Some(epoch) = trace_epoch {
        ctx.set_trace_epoch(epoch);
    }
    // Live counters let a controller (and `/metrics` scrapes) see the
    // stage's time attribution as it evolves, not only at thread exit.
    if let Some(m) = &metrics {
        ctx.set_live_metrics(m, start);
    }
    if let Some(obs) = &observer {
        ctx.set_observer(Arc::clone(obs));
        obs.on_stage_start(&name);
    }
    if let Some(r) = ring {
        r.set_state(ThreadState::Busy);
        ctx.set_ring(r);
    }

    let outcome = catch_unwind(AssertUnwindSafe(|| stage.run(&mut ctx)));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(err)) => registry.cancel(if err.is_cancelled() {
            FgError::Cancelled
        } else {
            err
        }),
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".into());
            registry.cancel(FgError::Panic {
                stage: name.clone(),
                message,
            });
        }
    }
    ctx.finish();
    if let Some(r) = ctx.ring() {
        r.set_state(ThreadState::Done);
    }
    // Converge the live per-task counters (`core/stage_busy_ns/name#i`, …)
    // on the exact end-of-run totals; the deltas were published
    // incrementally after every accept/convey.
    ctx.publish_live();

    let stats = StageStats {
        name,
        core,
        wall: start.elapsed(),
        blocked_accept: ctx.stats.blocked_accept,
        blocked_convey: ctx.stats.blocked_convey,
        parked: ctx.stats.parked,
        buffers_in: ctx.stats.buffers_in,
        buffers_out: ctx.stats.buffers_out,
        spans: std::mem::take(&mut ctx.stats.spans),
    };
    if let Some(obs) = &observer {
        obs.on_stage_exit(&stats.name, &stats);
    }
    if let Some(m) = &metrics {
        m.counter(&format!("core/stage_buffers/{}", stats.name))
            .add(stats.buffers_in);
    }
    stats
}

fn run_source(
    set: SourceSet,
    registry: Arc<Registry>,
    observer: Option<Arc<dyn Observer>>,
    ring: Option<Arc<SpanRing>>,
    trace_sink: Option<Arc<TraceSink>>,
    core: Option<usize>,
    ledger: Option<Arc<crate::profile::MemoryLedger>>,
) -> StageStats {
    let start = Instant::now();
    let mut stats = StageStats {
        name: set.label.clone(),
        core: pin_self(core),
        ..StageStats::default()
    };

    let index_of = |p: PipelineId| set.pipes.iter().position(|sp| sp.pipeline == p);
    let mut emitted = vec![0u64; set.pipes.len()];
    let mut done = vec![false; set.pipes.len()];

    // Seed each pipeline's pool; the source is where pool buffers are
    // born and retired, so it is where the ledger's process-wide total is
    // charged and credited.
    let mut pending: VecDeque<Buffer> = VecDeque::new();
    for sp in &set.pipes {
        for _ in 0..sp.buffers {
            if let Some(l) = &ledger {
                l.charge_pool(sp.buffer_size as u64);
            }
            pending.push_back(Buffer::new(sp.buffer_size, sp.pipeline));
        }
    }

    // Emit the caboose for pipeline i; ignores failure during teardown.
    let emit_caboose = |i: usize, done: &mut Vec<bool>| {
        if !done[i] {
            done[i] = true;
            let _ = set.pipes[i]
                .first
                .push(Item::Caboose(set.pipes[i].pipeline));
        }
    };

    'outer: loop {
        if done.iter().all(|&d| d) {
            break;
        }
        // Controller-requested pool growth: inject fresh buffers at round
        // boundaries. Queues are sized for the pool ceiling, so the extra
        // buffers can never wedge a full queue.
        for (i, sp) in set.pipes.iter().enumerate() {
            if done[i] {
                continue;
            }
            if let Some(pool) = &sp.pool {
                while pool.try_grow() {
                    if let Some(l) = &ledger {
                        l.charge_pool(sp.buffer_size as u64);
                    }
                    pending.push_back(Buffer::new(sp.buffer_size, sp.pipeline));
                }
            }
        }
        // Wait for a free buffer, remembered so the wait can be recorded
        // against the round the buffer ends up carrying.
        let mut recycle_wait: Option<(Instant, Instant)> = None;
        let mut buf = match pending.pop_front() {
            Some(b) => b,
            None => {
                if let Some(r) = &ring {
                    r.set_state(ThreadState::BlockedAccept);
                }
                let t0 = Instant::now();
                let popped = set.recycle.pop();
                let t1 = Instant::now();
                stats.blocked_accept += t1 - t0;
                if let Some(r) = &ring {
                    r.set_state(ThreadState::Busy);
                }
                match popped {
                    Ok(Item::Buf(b)) => {
                        recycle_wait = Some((t0, t1));
                        b
                    }
                    Ok(Item::Caboose(_)) => continue, // never produced; defensive
                    Err(_) => {
                        // Recycle closed: a stop() or program cancellation.
                        for i in 0..set.pipes.len() {
                            emit_caboose(i, &mut done);
                        }
                        break 'outer;
                    }
                }
            }
        };
        let i = match index_of(buf.pipeline()) {
            Some(i) => i,
            None => continue, // foreign buffer: impossible, but don't wedge
        };
        // Controller-requested pool shrink: retire this recycled buffer
        // instead of re-injecting it. Only whole buffers at a round boundary
        // ever leave the pool, so in-flight data is untouched.
        if set.pipes[i].pool.as_ref().is_some_and(|p| p.try_shrink()) {
            if let Some(l) = &ledger {
                l.credit_pool(buf.capacity() as u64);
            }
            continue;
        }
        if done[i] {
            continue; // pipeline retired; release the buffer
        }
        if set.pipes[i].stop.is_stopped() {
            emit_caboose(i, &mut done);
            continue;
        }
        if let Rounds::Count(n) = set.pipes[i].rounds {
            if emitted[i] >= n {
                emit_caboose(i, &mut done);
                continue;
            }
        }
        buf.begin_round(emitted[i]);
        if let Some(s) = &trace_sink {
            buf.set_trace_id(s.next_trace_id());
        }
        let (round, tid, pid) = (buf.round(), buf.trace_id(), buf.pipeline().0);
        if let Some(obs) = &observer {
            obs.on_round_begin(&set.label, set.pipes[i].pipeline, emitted[i]);
        }
        emitted[i] += 1;
        if let Some(r) = &ring {
            if let Some((w0, w1)) = recycle_wait.take() {
                r.record(TraceKind::Accept, pid, round, tid, r.ns_of(w0), r.ns_of(w1));
            }
            r.set_state(ThreadState::BlockedConvey);
        }
        let t0 = Instant::now();
        let pushed = set.pipes[i].first.push(Item::Buf(buf));
        let t1 = Instant::now();
        stats.blocked_convey += t1 - t0;
        if pushed.is_err() {
            break; // cancelled
        }
        if let Some(r) = &ring {
            r.record(
                TraceKind::SourceInject,
                pid,
                round,
                tid,
                r.ns_of(t0),
                r.ns_of(t1),
            );
            r.set_state(ThreadState::Busy);
        }
        stats.buffers_out += 1;
        if let Some(obs) = &observer {
            obs.on_source_emit(&set.label, set.pipes[i].pipeline, emitted[i] - 1);
        }
        // Emit the caboose eagerly right after the final round so consumers
        // (e.g. a merge stage) learn about the end of this stream promptly.
        if let Rounds::Count(n) = set.pipes[i].rounds {
            if emitted[i] == n {
                emit_caboose(i, &mut done);
            }
        }
    }
    let _ = registry;
    if let Some(r) = &ring {
        r.set_state(ThreadState::Done);
    }

    stats.wall = start.elapsed();
    stats
}

fn run_sink(
    set: SinkSet,
    observer: Option<Arc<dyn Observer>>,
    ring: Option<Arc<SpanRing>>,
    core: Option<usize>,
) -> StageStats {
    let start = Instant::now();
    let mut stats = StageStats {
        name: set.label.clone(),
        core: pin_self(core),
        ..StageStats::default()
    };
    let mut remaining = set.members;
    while remaining > 0 {
        if let Some(r) = &ring {
            r.set_state(ThreadState::BlockedAccept);
        }
        let t0 = Instant::now();
        let popped = set.queue.pop();
        let t1 = Instant::now();
        stats.blocked_accept += t1 - t0;
        if let Some(r) = &ring {
            r.set_state(ThreadState::Busy);
        }
        match popped {
            Ok(Item::Buf(b)) => {
                stats.buffers_in += 1;
                if let Some(obs) = &observer {
                    obs.on_sink_recycle(&set.label, b.pipeline(), b.round());
                }
                let (pid, round, tid) = (b.pipeline().0, b.round(), b.trace_id());
                // The source may already have retired; dropping is fine then.
                let _ = set.recycle.push(Item::Buf(b));
                if let Some(r) = &ring {
                    r.record(TraceKind::Recycle, pid, round, tid, r.ns_of(t1), r.now_ns());
                }
            }
            Ok(Item::Caboose(p)) => {
                remaining -= 1;
                if let Some(r) = &ring {
                    // Caboose progress still feeds the watchdog's clock.
                    r.record(TraceKind::Accept, p.0, 0, 0, r.ns_of(t0), r.ns_of(t1));
                }
            }
            Err(_) => break,
        }
    }
    if let Some(r) = &ring {
        r.set_state(ThreadState::Done);
    }
    stats.wall = start.elapsed();
    stats
}

/// Watchdog loop: poll the sink's idle clock; on a stall, assemble and
/// report a [`Postmortem`], then abort or keep waiting per the config.
fn run_watchdog(
    cfg: WatchdogCfg,
    sink: Arc<TraceSink>,
    registry: Arc<Registry>,
    program: String,
    gate: Arc<(Mutex<bool>, Condvar)>,
    ledger: Option<Arc<crate::profile::MemoryLedger>>,
) {
    let poll = (cfg.timeout / 4).clamp(Duration::from_millis(1), Duration::from_millis(100));
    let mut reported = false;
    loop {
        {
            let mut stopped = gate.0.lock();
            if *stopped {
                return;
            }
            gate.1.wait_for(&mut stopped, poll);
            if *stopped {
                return;
            }
        }
        let idle = sink.idle();
        if idle < cfg.timeout {
            reported = false; // activity resumed; re-arm
            continue;
        }
        if reported {
            continue; // KeepWaiting mode: one report per stall episode
        }
        reported = true;
        let threads: Vec<ThreadPostmortem> = sink
            .rings()
            .iter()
            .map(|r| {
                let (state, in_state_for) = r.state();
                let spans = r.snapshot();
                let keep = spans.len().saturating_sub(cfg.last_spans);
                ThreadPostmortem {
                    thread: r.name().to_string(),
                    state,
                    in_state_for,
                    intakes: r.intakes(),
                    emits: r.emits(),
                    last_spans: spans[keep..].to_vec(),
                }
            })
            .collect();
        let culprit = guess_culprit(&threads);
        let pm = Postmortem {
            program: program.clone(),
            stalled_for: idle,
            threads,
            queues: registry.live_queue_depths(),
            turnstiles: registry.turnstiles(),
            culprit: culprit.clone(),
            // Stalled threads are still alive, so the snapshot carries
            // their CPU rows: a wedged run's post-mortem says who was
            // spinning and what memory looked like at the moment of death.
            resources: Some(crate::profile::ResourceReport::sample_now(
                ledger.as_deref(),
            )),
        };
        eprint!("{}", pm.render());
        if let Some(path) = &cfg.artifact {
            if let Err(e) = std::fs::write(path, pm.to_json().to_string()) {
                eprintln!(
                    "fg watchdog: failed to write post-mortem artifact {}: {e}",
                    path.display()
                );
            }
        }
        if cfg.action == WatchdogAction::Abort {
            registry.cancel(FgError::Stalled {
                culprit: culprit.unwrap_or_else(|| "unknown".into()),
            });
            return;
        }
    }
}
