//! Thread spawning, source/sink loops, and program execution.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use crate::buffer::{Buffer, PipelineId};
use crate::error::{FgError, Result};
use crate::metrics::MetricsRegistry;
use crate::observe::Observer;
use crate::queue::{Item, Queue};
use crate::stage::{Port, Registry, ReplicaGroup, Rounds, Stage, StageCtx, StopFlag};
use crate::stats::{Report, StageStats};

/// One pipeline served by a source set.
pub(crate) struct SourcePipe {
    pub(crate) pipeline: PipelineId,
    pub(crate) first: Arc<Queue>,
    pub(crate) rounds: Rounds,
    pub(crate) stop: Arc<StopFlag>,
    pub(crate) buffers: usize,
    pub(crate) buffer_size: usize,
}

/// A source thread: injects rounds for one pipeline, or for all pipelines
/// of a virtual group (the automatically-virtualized source of §IV).
pub(crate) struct SourceSet {
    pub(crate) label: String,
    pub(crate) pipes: Vec<SourcePipe>,
    pub(crate) recycle: Arc<Queue>,
}

/// A sink thread: recycles buffers back to the source(s) and retires after
/// seeing every member pipeline's caboose.
pub(crate) struct SinkSet {
    pub(crate) label: String,
    pub(crate) queue: Arc<Queue>,
    pub(crate) recycle: Arc<Queue>,
    pub(crate) members: usize,
}

/// A stage ready to run on its own thread.
pub(crate) struct StageTask {
    pub(crate) name: String,
    pub(crate) stage: Box<dyn Stage>,
    pub(crate) ports: Vec<Port>,
    pub(crate) shared_input: Option<Arc<Queue>>,
    pub(crate) replica_group: Option<Arc<ReplicaGroup>>,
}

/// Everything `Program::wire` produced, ready to execute.
pub(crate) struct Plan {
    pub(crate) registry: Arc<Registry>,
    pub(crate) tasks: Vec<StageTask>,
    pub(crate) sources: Vec<SourceSet>,
    pub(crate) sinks: Vec<SinkSet>,
    pub(crate) trace: bool,
    pub(crate) observer: Option<Arc<dyn Observer>>,
    pub(crate) metrics: Option<Arc<MetricsRegistry>>,
    pub(crate) pipelines: Vec<crate::stats::PipelineShape>,
}

pub(crate) fn execute(program_name: String, plan: Plan) -> Result<Report> {
    let Plan {
        registry,
        tasks,
        sources,
        sinks,
        trace,
        observer,
        metrics,
        pipelines,
    } = plan;

    let start = Instant::now();
    let mut handles = Vec::new();

    for task in tasks {
        let registry = Arc::clone(&registry);
        let observer = observer.clone();
        let metrics = metrics.clone();
        let name = task.name.clone();
        let thread_name = format!("{program_name}/{name}");
        let epoch = if trace { Some(start) } else { None };
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || run_stage_thread(task, registry, epoch, observer, metrics))
            .map_err(|e| FgError::Config(format!("failed to spawn stage thread: {e}")))?;
        handles.push(handle);
    }
    for src in sources {
        let registry = Arc::clone(&registry);
        let observer = observer.clone();
        let thread_name = format!("{program_name}/{}", src.label);
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || run_source(src, registry, observer))
            .map_err(|e| FgError::Config(format!("failed to spawn source thread: {e}")))?;
        handles.push(handle);
    }
    for sink in sinks {
        let observer = observer.clone();
        let thread_name = format!("{program_name}/{}", sink.label);
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || run_sink(sink, observer))
            .map_err(|e| FgError::Config(format!("failed to spawn sink thread: {e}")))?;
        handles.push(handle);
    }

    let threads_spawned = handles.len();
    let mut stages = Vec::with_capacity(threads_spawned);
    for handle in handles {
        match handle.join() {
            Ok(stats) => stages.push(stats),
            Err(_) => {
                // The wrapper catches panics; reaching here means the
                // wrapper itself failed, which we still surface.
                registry.cancel(FgError::Panic {
                    stage: "<runtime>".into(),
                    message: "stage thread wrapper panicked".into(),
                });
            }
        }
    }

    if let Some(err) = registry.take_error() {
        return Err(err);
    }
    if registry.is_cancelled() {
        return Err(FgError::Cancelled);
    }
    Ok(Report {
        wall: start.elapsed(),
        stages,
        threads_spawned,
        queues: registry.queue_depths(),
        pipelines,
        metrics: metrics.map(|m| m.snapshot()).unwrap_or_default(),
    })
}

fn run_stage_thread(
    task: StageTask,
    registry: Arc<Registry>,
    trace_epoch: Option<Instant>,
    observer: Option<Arc<dyn Observer>>,
    metrics: Option<Arc<MetricsRegistry>>,
) -> StageStats {
    let StageTask {
        name,
        mut stage,
        ports,
        shared_input,
        replica_group,
    } = task;
    let start = Instant::now();
    let mut ctx = StageCtx::new(name.clone(), ports, shared_input, Arc::clone(&registry));
    if let Some(group) = replica_group {
        ctx.set_replica_group(group);
    }
    if let Some(epoch) = trace_epoch {
        ctx.set_trace_epoch(epoch);
    }
    if let Some(obs) = &observer {
        ctx.set_observer(Arc::clone(obs));
        obs.on_stage_start(&name);
    }

    let outcome = catch_unwind(AssertUnwindSafe(|| stage.run(&mut ctx)));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(err)) => registry.cancel(if err.is_cancelled() {
            FgError::Cancelled
        } else {
            err
        }),
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".into());
            registry.cancel(FgError::Panic {
                stage: name.clone(),
                message,
            });
        }
    }
    ctx.finish();

    let stats = StageStats {
        name,
        wall: start.elapsed(),
        blocked_accept: ctx.stats.blocked_accept,
        blocked_convey: ctx.stats.blocked_convey,
        buffers_in: ctx.stats.buffers_in,
        buffers_out: ctx.stats.buffers_out,
        spans: std::mem::take(&mut ctx.stats.spans),
    };
    if let Some(obs) = &observer {
        obs.on_stage_exit(&stats.name, &stats);
    }
    // Per-task counters (replicas publish under their `name#i` task name),
    // so live telemetry and the final snapshot expose each replica's own
    // busy/starved profile alongside the rolled-up `Report`.
    if let Some(m) = &metrics {
        let ns = |d: std::time::Duration| d.as_nanos() as u64;
        m.counter(&format!("core/stage_busy_ns/{}", stats.name))
            .add(ns(stats.busy()));
        m.counter(&format!("core/stage_blocked_accept_ns/{}", stats.name))
            .add(ns(stats.blocked_accept));
        m.counter(&format!("core/stage_blocked_convey_ns/{}", stats.name))
            .add(ns(stats.blocked_convey));
        m.counter(&format!("core/stage_buffers/{}", stats.name))
            .add(stats.buffers_in);
    }
    stats
}

fn run_source(
    set: SourceSet,
    registry: Arc<Registry>,
    observer: Option<Arc<dyn Observer>>,
) -> StageStats {
    let start = Instant::now();
    let mut stats = StageStats {
        name: set.label.clone(),
        ..StageStats::default()
    };

    let index_of = |p: PipelineId| set.pipes.iter().position(|sp| sp.pipeline == p);
    let mut emitted = vec![0u64; set.pipes.len()];
    let mut done = vec![false; set.pipes.len()];

    // Seed each pipeline's pool.
    let mut pending: VecDeque<Buffer> = VecDeque::new();
    for sp in &set.pipes {
        for _ in 0..sp.buffers {
            pending.push_back(Buffer::new(sp.buffer_size, sp.pipeline));
        }
    }

    // Emit the caboose for pipeline i; ignores failure during teardown.
    let emit_caboose = |i: usize, done: &mut Vec<bool>| {
        if !done[i] {
            done[i] = true;
            let _ = set.pipes[i]
                .first
                .push(Item::Caboose(set.pipes[i].pipeline));
        }
    };

    'outer: loop {
        if done.iter().all(|&d| d) {
            break;
        }
        let mut buf = match pending.pop_front() {
            Some(b) => b,
            None => {
                let t0 = Instant::now();
                let popped = set.recycle.pop();
                stats.blocked_accept += t0.elapsed();
                match popped {
                    Ok(Item::Buf(b)) => b,
                    Ok(Item::Caboose(_)) => continue, // never produced; defensive
                    Err(_) => {
                        // Recycle closed: a stop() or program cancellation.
                        for i in 0..set.pipes.len() {
                            emit_caboose(i, &mut done);
                        }
                        break 'outer;
                    }
                }
            }
        };
        let i = match index_of(buf.pipeline()) {
            Some(i) => i,
            None => continue, // foreign buffer: impossible, but don't wedge
        };
        if done[i] {
            continue; // pipeline retired; release the buffer
        }
        if set.pipes[i].stop.is_stopped() {
            emit_caboose(i, &mut done);
            continue;
        }
        if let Rounds::Count(n) = set.pipes[i].rounds {
            if emitted[i] >= n {
                emit_caboose(i, &mut done);
                continue;
            }
        }
        buf.begin_round(emitted[i]);
        if let Some(obs) = &observer {
            obs.on_round_begin(&set.label, set.pipes[i].pipeline, emitted[i]);
        }
        emitted[i] += 1;
        let t0 = Instant::now();
        let pushed = set.pipes[i].first.push(Item::Buf(buf));
        stats.blocked_convey += t0.elapsed();
        if pushed.is_err() {
            break; // cancelled
        }
        stats.buffers_out += 1;
        if let Some(obs) = &observer {
            obs.on_source_emit(&set.label, set.pipes[i].pipeline, emitted[i] - 1);
        }
        // Emit the caboose eagerly right after the final round so consumers
        // (e.g. a merge stage) learn about the end of this stream promptly.
        if let Rounds::Count(n) = set.pipes[i].rounds {
            if emitted[i] == n {
                emit_caboose(i, &mut done);
            }
        }
    }
    let _ = registry;

    stats.wall = start.elapsed();
    stats
}

fn run_sink(set: SinkSet, observer: Option<Arc<dyn Observer>>) -> StageStats {
    let start = Instant::now();
    let mut stats = StageStats {
        name: set.label.clone(),
        ..StageStats::default()
    };
    let mut remaining = set.members;
    while remaining > 0 {
        let t0 = Instant::now();
        let popped = set.queue.pop();
        stats.blocked_accept += t0.elapsed();
        match popped {
            Ok(Item::Buf(b)) => {
                stats.buffers_in += 1;
                if let Some(obs) = &observer {
                    obs.on_sink_recycle(&set.label, b.pipeline(), b.round());
                }
                // The source may already have retired; dropping is fine then.
                let _ = set.recycle.push(Item::Buf(b));
            }
            Ok(Item::Caboose(_)) => remaining -= 1,
            Err(_) => break,
        }
    }
    stats.wall = start.elapsed();
    stats
}
