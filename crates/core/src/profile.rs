//! Resource observability: per-thread CPU attribution, process memory,
//! allocation counters, and a buffer-pool residency ledger.
//!
//! The rest of the observability stack measures *pipeline* behavior —
//! where stage time went, how deep queues ran, what the controller did.
//! This module measures the *machine underneath it*:
//!
//! * every runtime thread registers its kernel TID at spawn
//!   ([`register_current_thread`]); a [`ResourceProfiler`] sampler thread
//!   (same condvar cadence machinery as the telemetry
//!   [`Sampler`](crate::telemetry::Sampler)) reads
//!   `/proc/self/task/<tid>/stat` + `status` and publishes
//!   `resource/thread/<name>/{utime_ns,stime_ns,vol_switches,invol_switches}`
//!   gauges, plus `resource/process/{rss_bytes,rss_peak_bytes}` from
//!   `/proc/self/statm` and `VmHWM`;
//! * the opt-in tracking allocator's per-stage counters
//!   ([`alloc`](crate::alloc)) surface as
//!   `resource/alloc/<stage>/{count,bytes,frees,freed_bytes}`;
//! * a [`MemoryLedger`] tracks buffer-pool residency — buffers and bytes
//!   outstanding per stage, and the pool total against a configurable
//!   budget — the accounting primitive admission control (ROADMAP item 2)
//!   will consume.
//!
//! Everything funnels through one value type, [`ResourceReport`]: sampled
//! live ([`ResourceReport::sample_now`]) by `GET /resources` and the
//! watchdog post-mortem, published as registry gauges by the profiler
//! tick, reconstructed from a snapshot ([`ResourceReport::from_metrics`])
//! by the dashboard, and embedded as the report JSON's `resources`
//! member.
//!
//! Like core pinning ([`affinity`](crate::affinity)), all of this is
//! Linux-`/proc` shaped and degrades gracefully elsewhere: the first
//! failed sample warns once ([`WarnOnce`]) and CPU/RSS rows simply stay
//! absent — allocator and ledger accounting (plain atomics) keep working
//! everywhere.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::degrade::WarnOnce;
use crate::json::{obj, Json};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// Prefix of per-thread CPU gauges (`resource/thread/<name>/utime_ns`, …).
pub const RESOURCE_THREAD_PREFIX: &str = "resource/thread/";
/// Prefix of process memory gauges (`resource/process/rss_bytes`, …).
pub const RESOURCE_PROCESS_PREFIX: &str = "resource/process/";
/// Prefix of allocator gauges (`resource/alloc/<stage>/count`, …).
pub const RESOURCE_ALLOC_PREFIX: &str = "resource/alloc/";
/// Prefix of ledger gauges (`resource/ledger/<stage>/bytes`, …).
pub const RESOURCE_LEDGER_PREFIX: &str = "resource/ledger/";

static PROC_WARN: WarnOnce = WarnOnce::new();

// ---------------------------------------------------------------------------
// Thread registry
// ---------------------------------------------------------------------------

struct ThreadEntry {
    key: u64,
    name: String,
    tid: u64,
}

fn threads() -> &'static Mutex<Vec<ThreadEntry>> {
    static THREADS: Mutex<Vec<ThreadEntry>> = Mutex::new(Vec::new());
    &THREADS
}

static REG_SEQ: AtomicU64 = AtomicU64::new(1);

/// Guard for a registered runtime thread; deregisters on drop, so a
/// finished stage thread's row disappears from subsequent samples.
pub struct ThreadRegistration {
    key: u64,
}

impl Drop for ThreadRegistration {
    fn drop(&mut self) {
        let mut t = threads().lock().unwrap_or_else(|e| e.into_inner());
        t.retain(|e| e.key != self.key);
    }
}

/// Register the calling thread under `name` for per-thread CPU sampling.
/// The runtime calls this for every thread it spawns (stages, replicas,
/// sources, sinks, controller, watchdog, samplers); embedders running
/// their own worker threads (e.g. the I/O scheduler) should too.  Where
/// `/proc/thread-self` is unavailable the registration is inert: the row
/// exists but never gains CPU numbers.
pub fn register_current_thread(name: impl Into<String>) -> ThreadRegistration {
    let key = REG_SEQ.fetch_add(1, Relaxed);
    let tid = current_tid().unwrap_or(0);
    let entry = ThreadEntry {
        key,
        name: name.into(),
        tid,
    };
    threads()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(entry);
    ThreadRegistration { key }
}

/// `(name, tid)` of every currently registered runtime thread, in
/// registration order.  A tid of 0 means the TID could not be learned
/// (non-Linux hosts); such rows are skipped by the sampler.
pub fn registered_threads() -> Vec<(String, u64)> {
    threads()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|e| (e.name.clone(), e.tid))
        .collect()
}

/// The calling thread's kernel TID, via the `/proc/thread-self` symlink
/// (`<pid>/task/<tid>`).  Linux-only by construction; elsewhere the
/// readlink fails and the caller degrades to a no-op.
pub(crate) fn current_tid() -> Result<u64, String> {
    let link = std::fs::read_link("/proc/thread-self")
        .map_err(|e| format!("/proc/thread-self unavailable: {e}"))?;
    link.to_str()
        .and_then(|s| s.rsplit('/').next())
        .and_then(|tid| tid.parse().ok())
        .ok_or_else(|| format!("unparseable /proc/thread-self target {link:?}"))
}

// ---------------------------------------------------------------------------
// /proc sampling
// ---------------------------------------------------------------------------

/// `getconf name`, mirroring `affinity`'s `taskset(1)` delegation: the
/// crate forbids direct `sysconf(3)` (that would need `libc`/unsafe).
fn getconf(name: &str) -> Option<u64> {
    let out = std::process::Command::new("getconf")
        .arg(name)
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8_lossy(&out.stdout).trim().parse().ok()
}

/// Kernel clock ticks per second (`utime`/`stime` unit); cached once.
fn clk_tck() -> u64 {
    static V: OnceLock<u64> = OnceLock::new();
    *V.get_or_init(|| getconf("CLK_TCK").filter(|&v| v > 0).unwrap_or(100))
}

/// Page size in bytes (`statm` unit); cached once.
fn page_size() -> u64 {
    static V: OnceLock<u64> = OnceLock::new();
    *V.get_or_init(|| getconf("PAGESIZE").filter(|&v| v > 0).unwrap_or(4096))
}

/// Where resource samples come from.  Production uses `/proc`; tests
/// point the root at a directory that doesn't exist to exercise the
/// degraded path deterministically.
pub(crate) struct ProcSource {
    root: PathBuf,
    clk_tck: u64,
    page_size: u64,
}

impl ProcSource {
    pub(crate) fn system() -> ProcSource {
        ProcSource {
            root: PathBuf::from("/proc"),
            clk_tck: clk_tck(),
            page_size: page_size(),
        }
    }

    #[cfg(test)]
    pub(crate) fn with_root(root: impl Into<PathBuf>) -> ProcSource {
        ProcSource {
            root: root.into(),
            clk_tck: 100,
            page_size: 4096,
        }
    }

    /// Process RSS and peak RSS in bytes, from `statm` and `status`
    /// (`statm` has no high-water mark; that lives in `VmHWM`).
    fn process_memory(&self) -> Option<(u64, u64)> {
        let statm = std::fs::read_to_string(self.root.join("self/statm")).ok()?;
        let rss_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
        let rss = rss_pages * self.page_size;
        let peak = std::fs::read_to_string(self.root.join("self/status"))
            .ok()
            .and_then(|s| parse_status_kb(&s, "VmHWM:"))
            .map_or(rss, |kb| (kb * 1024).max(rss));
        Some((rss, peak))
    }

    /// CPU time and context-switch counts of one thread.  `stat` carries
    /// utime/stime; the switch counters live in `status`.
    fn thread_cpu(&self, name: &str, tid: u64) -> Option<ThreadResources> {
        let task = self.root.join(format!("self/task/{tid}"));
        let stat = std::fs::read_to_string(task.join("stat")).ok()?;
        let (utime_ticks, stime_ticks) = parse_stat_times(&stat)?;
        let per_tick = 1_000_000_000 / self.clk_tck.max(1);
        let status = std::fs::read_to_string(task.join("status")).unwrap_or_default();
        Some(ThreadResources {
            name: name.to_string(),
            utime_ns: utime_ticks * per_tick,
            stime_ns: stime_ticks * per_tick,
            vol_switches: parse_status_count(&status, "voluntary_ctxt_switches:").unwrap_or(0),
            invol_switches: parse_status_count(&status, "nonvoluntary_ctxt_switches:").unwrap_or(0),
        })
    }
}

/// `(utime, stime)` in clock ticks from a `/proc/.../stat` line.  The
/// comm field `(…)` may itself contain spaces and parentheses, so parsing
/// starts after the *last* `)`; utime/stime are then fields 12 and 13 of
/// the remainder (fields 14 and 15 of the full line).
fn parse_stat_times(stat: &str) -> Option<(u64, u64)> {
    let rest = &stat[stat.rfind(')')? + 1..];
    let mut fields = rest.split_whitespace();
    let utime = fields.nth(11)?.parse().ok()?;
    let stime = fields.next()?.parse().ok()?;
    Some((utime, stime))
}

/// The `123` of a `key:\t123 kB` line in a `/proc/.../status` file.
fn parse_status_kb(status: &str, key: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(key))?;
    line[key.len()..].split_whitespace().next()?.parse().ok()
}

/// The `123` of a `key:\t123` line in a `/proc/.../status` file.
fn parse_status_count(status: &str, key: &str) -> Option<u64> {
    parse_status_kb(status, key)
}

// ---------------------------------------------------------------------------
// Memory ledger
// ---------------------------------------------------------------------------

/// Per-stage buffer residency counters; obtained from
/// [`MemoryLedger::stage`] and updated by the runtime on every buffer
/// accept/convey.  Signed: teardown drains recycle buffers a stage never
/// formally accepted, and a momentarily negative residency must clamp,
/// not wrap.
pub struct StageLedger {
    buffers: AtomicI64,
    bytes: AtomicI64,
}

impl StageLedger {
    /// Charge one accepted buffer of `bytes` capacity to this stage.
    pub fn acquire(&self, bytes: usize) {
        self.buffers.fetch_add(1, Relaxed);
        self.bytes.fetch_add(bytes as i64, Relaxed);
    }

    /// Credit one conveyed/discarded buffer of `bytes` capacity.
    pub fn release(&self, bytes: usize) {
        self.buffers.fetch_sub(1, Relaxed);
        self.bytes.fetch_sub(bytes as i64, Relaxed);
    }

    /// `(buffers, bytes)` currently resident in this stage (clamped at 0).
    pub fn resident(&self) -> (u64, u64) {
        (
            self.buffers.load(Relaxed).max(0) as u64,
            self.bytes.load(Relaxed).max(0) as u64,
        )
    }
}

/// Buffer-pool residency accounting: which stage currently holds how many
/// pool buffers (and bytes), and the pool total against an optional
/// budget.  Attach one to a [`Program`](crate::Program) with
/// [`Program::set_memory_ledger`](crate::Program::set_memory_ledger);
/// sources charge the pool as they create/retire buffers, and every stage
/// charges/credits its own row as buffers flow through.  This is the
/// accounting primitive a daemon's admission control builds on: admit a
/// program only when `budget - total` covers its pool.
#[derive(Default)]
pub struct MemoryLedger {
    /// Budget in bytes; 0 means unbudgeted (accounting only).
    budget_bytes: AtomicU64,
    total_bytes: AtomicU64,
    peak_bytes: AtomicU64,
    total_buffers: AtomicU64,
    stages: Mutex<BTreeMap<String, Arc<StageLedger>>>,
}

impl std::fmt::Debug for MemoryLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryLedger")
            .field("budget_bytes", &self.budget())
            .field("total_bytes", &self.total_bytes())
            .finish_non_exhaustive()
    }
}

impl MemoryLedger {
    /// An unbudgeted ledger (accounting only).
    pub fn new() -> MemoryLedger {
        MemoryLedger::default()
    }

    /// A ledger with a `budget` in bytes; [`diagnose`](crate::diagnose)
    /// reports a memory-bound finding when process RSS approaches it.
    pub fn with_budget(budget: u64) -> MemoryLedger {
        let l = MemoryLedger::new();
        l.budget_bytes.store(budget, Relaxed);
        l
    }

    /// The configured budget in bytes (0 = unbudgeted).
    pub fn budget(&self) -> u64 {
        self.budget_bytes.load(Relaxed)
    }

    /// Set or change the budget.
    pub fn set_budget(&self, budget: u64) {
        self.budget_bytes.store(budget, Relaxed);
    }

    /// The residency row for `stage`, creating it on first use.
    pub fn stage(&self, stage: &str) -> Arc<StageLedger> {
        let mut stages = self.stages.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(stages.entry(stage.to_string()).or_insert_with(|| {
            Arc::new(StageLedger {
                buffers: AtomicI64::new(0),
                bytes: AtomicI64::new(0),
            })
        }))
    }

    /// Charge one pool buffer of `bytes` capacity (a source created it).
    pub fn charge_pool(&self, bytes: u64) {
        self.total_buffers.fetch_add(1, Relaxed);
        let now = self.total_bytes.fetch_add(bytes, Relaxed) + bytes;
        self.peak_bytes.fetch_max(now, Relaxed);
    }

    /// Credit one pool buffer of `bytes` capacity (retired on shrink).
    pub fn credit_pool(&self, bytes: u64) {
        self.total_buffers
            .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(1)))
            .ok();
        self.total_bytes
            .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(bytes)))
            .ok();
    }

    /// Pool bytes currently outstanding.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes.load(Relaxed)
    }

    /// True when the pool total exceeds a nonzero budget.
    pub fn over_budget(&self) -> bool {
        let budget = self.budget();
        budget > 0 && self.total_bytes() > budget
    }

    /// Point-in-time copy of the whole ledger.
    pub fn snapshot(&self) -> LedgerSnapshot {
        let stages = self.stages.lock().unwrap_or_else(|e| e.into_inner());
        LedgerSnapshot {
            budget_bytes: self.budget(),
            total_bytes: self.total_bytes.load(Relaxed),
            peak_bytes: self.peak_bytes.load(Relaxed),
            total_buffers: self.total_buffers.load(Relaxed),
            stages: stages
                .iter()
                .map(|(name, l)| {
                    let (buffers, bytes) = l.resident();
                    StageResidency {
                        stage: name.clone(),
                        buffers,
                        bytes,
                    }
                })
                .collect(),
        }
    }
}

/// One stage's buffer residency at a point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageResidency {
    /// Stage base name (replicas fold into one row).
    pub stage: String,
    /// Buffers currently held by the stage.
    pub buffers: u64,
    /// Bytes currently held by the stage.
    pub bytes: u64,
}

/// A [`MemoryLedger`] at a point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LedgerSnapshot {
    /// Configured budget in bytes (0 = unbudgeted).
    pub budget_bytes: u64,
    /// Pool bytes currently outstanding.
    pub total_bytes: u64,
    /// High-water mark of `total_bytes`.
    pub peak_bytes: u64,
    /// Pool buffers currently outstanding.
    pub total_buffers: u64,
    /// Per-stage residency rows, sorted by stage name.
    pub stages: Vec<StageResidency>,
}

// ---------------------------------------------------------------------------
// ResourceReport
// ---------------------------------------------------------------------------

/// One registered thread's CPU attribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadResources {
    /// Registered thread name (`program/stage`, `io/<label>`, …).
    pub name: String,
    /// User CPU time, nanoseconds (clock-tick resolution).
    pub utime_ns: u64,
    /// System CPU time, nanoseconds (clock-tick resolution).
    pub stime_ns: u64,
    /// Voluntary context switches (blocking waits).
    pub vol_switches: u64,
    /// Involuntary context switches (preemptions — the oversubscription
    /// signal [`diagnose`](crate::diagnose) watches).
    pub invol_switches: u64,
}

/// One allocator tag's counters (see [`alloc`](crate::alloc)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocResources {
    /// Stage tag (stage base name, or refinements like `sort/steady`).
    pub stage: String,
    /// Allocations charged to the tag, cumulative.
    pub allocs: u64,
    /// Frees charged to the tag, cumulative.
    pub frees: u64,
    /// Bytes allocated, cumulative.
    pub bytes: u64,
    /// Bytes freed, cumulative.
    pub freed_bytes: u64,
}

/// Point-in-time resource attribution: per-thread CPU, process memory,
/// allocator counters, and the buffer ledger.  See the module docs for
/// the surfaces this feeds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceReport {
    /// Process resident set size in bytes (0 when `/proc` is unavailable).
    pub rss_bytes: u64,
    /// Process peak RSS (`VmHWM`) in bytes.
    pub rss_peak_bytes: u64,
    /// Per-thread CPU rows for every registered thread, in registration
    /// order; empty when `/proc` is unavailable.
    pub threads: Vec<ThreadResources>,
    /// True when the tracking allocator served the process — without it
    /// the `alloc` rows mean "no data", not "zero allocations".
    pub alloc_tracking: bool,
    /// Per-stage allocator counters (only tags with activity).
    pub alloc: Vec<AllocResources>,
    /// Live heap bytes across all tags (tracking allocator only).
    pub alloc_current_bytes: u64,
    /// Peak heap bytes across all tags (tracking allocator only).
    pub alloc_peak_bytes: u64,
    /// Buffer-pool ledger, when a [`MemoryLedger`] was attached.
    pub ledger: Option<LedgerSnapshot>,
}

impl ResourceReport {
    /// Sample the process right now: registered threads' CPU from
    /// `/proc`, RSS/peak, the allocator counters, and `ledger` if given.
    /// Where `/proc` is unavailable this degrades (with a single warning
    /// per process) to an allocator/ledger-only report.
    pub fn sample_now(ledger: Option<&MemoryLedger>) -> ResourceReport {
        Self::collect(&ProcSource::system(), ledger)
    }

    pub(crate) fn collect(source: &ProcSource, ledger: Option<&MemoryLedger>) -> ResourceReport {
        let mut report = ResourceReport {
            alloc_tracking: crate::alloc::installed(),
            ledger: ledger.map(MemoryLedger::snapshot),
            ..ResourceReport::default()
        };
        for (stage, c) in crate::alloc::snapshot() {
            report.alloc.push(AllocResources {
                stage,
                allocs: c.allocs,
                frees: c.frees,
                bytes: c.bytes,
                freed_bytes: c.freed_bytes,
            });
        }
        let (current, peak) = crate::alloc::process_bytes();
        report.alloc_current_bytes = current;
        report.alloc_peak_bytes = peak;
        match source.process_memory() {
            Some((rss, rss_peak)) => {
                report.rss_bytes = rss;
                report.rss_peak_bytes = rss_peak;
                for (name, tid) in registered_threads() {
                    if tid == 0 {
                        continue;
                    }
                    // A thread may exit between registration cleanup and
                    // this read; its row is simply absent from this sample.
                    if let Some(row) = source.thread_cpu(&name, tid) {
                        report.threads.push(row);
                    }
                }
            }
            None => {
                PROC_WARN.warn(|| {
                    format!(
                        "fg: resource profiler degraded, no CPU/RSS attribution \
                         ({} unreadable)",
                        source.root.display()
                    )
                });
            }
        }
        report
    }

    /// True when the report carries no data at all (nothing sampled,
    /// nothing tracked).
    pub fn is_empty(&self) -> bool {
        self.rss_bytes == 0
            && self.threads.is_empty()
            && self.alloc.is_empty()
            && self.ledger.is_none()
    }

    /// Publish every row as gauges under the `resource/` prefixes — the
    /// profiler tick, feeding `/metrics` scrapes and snapshot merges.
    pub fn publish(&self, registry: &MetricsRegistry) {
        if self.rss_bytes > 0 {
            registry
                .gauge("resource/process/rss_bytes")
                .set(self.rss_bytes);
            registry
                .gauge("resource/process/rss_peak_bytes")
                .set(self.rss_peak_bytes);
        }
        for t in &self.threads {
            publish_thread_row(t, registry);
        }
        if self.alloc_tracking {
            registry.gauge("resource/alloc/tracking").set(1);
            registry
                .gauge("resource/alloc/current_bytes")
                .set(self.alloc_current_bytes);
            registry
                .gauge("resource/alloc/peak_bytes")
                .set(self.alloc_peak_bytes);
            for a in &self.alloc {
                let base = format!("{RESOURCE_ALLOC_PREFIX}{}", a.stage);
                registry.gauge(&format!("{base}/count")).set(a.allocs);
                registry.gauge(&format!("{base}/frees")).set(a.frees);
                registry.gauge(&format!("{base}/bytes")).set(a.bytes);
                registry
                    .gauge(&format!("{base}/freed_bytes"))
                    .set(a.freed_bytes);
            }
        }
        if let Some(ledger) = &self.ledger {
            registry
                .gauge("resource/ledger/budget_bytes")
                .set(ledger.budget_bytes);
            registry
                .gauge("resource/ledger/total_bytes")
                .set(ledger.total_bytes);
            registry
                .gauge("resource/ledger/peak_bytes")
                .set(ledger.peak_bytes);
            registry
                .gauge("resource/ledger/total_buffers")
                .set(ledger.total_buffers);
            for s in &ledger.stages {
                let base = format!("{RESOURCE_LEDGER_PREFIX}{}", s.stage);
                registry.gauge(&format!("{base}/buffers")).set(s.buffers);
                registry.gauge(&format!("{base}/bytes")).set(s.bytes);
            }
        }
    }

    /// Reassemble a report from `resource/*` gauges in a snapshot — the
    /// inverse of [`ResourceReport::publish`], used by the dashboard and
    /// by [`diagnose`](crate::diagnose) when the report itself carries no
    /// `resources` member.  Returns `None` when the snapshot has no
    /// resource gauges at all.
    pub fn from_metrics(m: &MetricsSnapshot) -> Option<ResourceReport> {
        let gauge = |name: &str| m.gauge(name).map(|g| g.value);
        let mut report = ResourceReport {
            rss_bytes: gauge("resource/process/rss_bytes").unwrap_or(0),
            rss_peak_bytes: gauge("resource/process/rss_peak_bytes").unwrap_or(0),
            alloc_tracking: gauge("resource/alloc/tracking").unwrap_or(0) != 0,
            alloc_current_bytes: gauge("resource/alloc/current_bytes").unwrap_or(0),
            alloc_peak_bytes: gauge("resource/alloc/peak_bytes").unwrap_or(0),
            ..ResourceReport::default()
        };
        // Group multi-suffix families by their row name.  Gauges are
        // sorted, so rows come out deterministically ordered by name.
        let mut threads: BTreeMap<String, ThreadResources> = BTreeMap::new();
        let mut allocs: BTreeMap<String, AllocResources> = BTreeMap::new();
        let mut ledger_stages: BTreeMap<String, StageResidency> = BTreeMap::new();
        let mut saw_ledger = false;
        let mut any = false;
        for (name, g) in &m.gauges {
            if let Some(rest) = name.strip_prefix(RESOURCE_THREAD_PREFIX) {
                any = true;
                if let Some((thread, field)) = rest.rsplit_once('/') {
                    let row = threads.entry(thread.to_string()).or_default();
                    row.name = thread.to_string();
                    match field {
                        "utime_ns" => row.utime_ns = g.value,
                        "stime_ns" => row.stime_ns = g.value,
                        "vol_switches" => row.vol_switches = g.value,
                        "invol_switches" => row.invol_switches = g.value,
                        _ => {}
                    }
                }
            } else if let Some(rest) = name.strip_prefix(RESOURCE_ALLOC_PREFIX) {
                any = true;
                if let Some((stage, field)) = rest.rsplit_once('/') {
                    let row = allocs.entry(stage.to_string()).or_default();
                    row.stage = stage.to_string();
                    match field {
                        "count" => row.allocs = g.value,
                        "frees" => row.frees = g.value,
                        "bytes" => row.bytes = g.value,
                        "freed_bytes" => row.freed_bytes = g.value,
                        _ => {}
                    }
                }
            } else if let Some(rest) = name.strip_prefix(RESOURCE_LEDGER_PREFIX) {
                any = true;
                saw_ledger = true;
                if let Some((stage, field)) = rest.rsplit_once('/') {
                    let row = ledger_stages.entry(stage.to_string()).or_default();
                    row.stage = stage.to_string();
                    match field {
                        "buffers" => row.buffers = g.value,
                        "bytes" => row.bytes = g.value,
                        _ => {}
                    }
                }
            } else if name.starts_with(RESOURCE_PROCESS_PREFIX) {
                any = true;
            }
        }
        if !any {
            return None;
        }
        report.threads = threads.into_values().collect();
        report.alloc = allocs.into_values().collect();
        if saw_ledger {
            report.ledger = Some(LedgerSnapshot {
                budget_bytes: gauge("resource/ledger/budget_bytes").unwrap_or(0),
                total_bytes: gauge("resource/ledger/total_bytes").unwrap_or(0),
                peak_bytes: gauge("resource/ledger/peak_bytes").unwrap_or(0),
                total_buffers: gauge("resource/ledger/total_buffers").unwrap_or(0),
                stages: ledger_stages.into_values().collect(),
            });
        }
        Some(report)
    }

    /// The report as a JSON object; inverse of
    /// [`ResourceReport::from_json_value`].
    pub fn to_json_value(&self) -> Json {
        let mut members = vec![
            ("rss_bytes", Json::from(self.rss_bytes)),
            ("rss_peak_bytes", Json::from(self.rss_peak_bytes)),
            (
                "threads",
                Json::Arr(
                    self.threads
                        .iter()
                        .map(|t| {
                            obj(vec![
                                ("name", Json::from(t.name.as_str())),
                                ("utime_ns", Json::from(t.utime_ns)),
                                ("stime_ns", Json::from(t.stime_ns)),
                                ("vol_switches", Json::from(t.vol_switches)),
                                ("invol_switches", Json::from(t.invol_switches)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("alloc_tracking", Json::Bool(self.alloc_tracking)),
            (
                "alloc",
                Json::Arr(
                    self.alloc
                        .iter()
                        .map(|a| {
                            obj(vec![
                                ("stage", Json::from(a.stage.as_str())),
                                ("count", Json::from(a.allocs)),
                                ("frees", Json::from(a.frees)),
                                ("bytes", Json::from(a.bytes)),
                                ("freed_bytes", Json::from(a.freed_bytes)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("alloc_current_bytes", Json::from(self.alloc_current_bytes)),
            ("alloc_peak_bytes", Json::from(self.alloc_peak_bytes)),
        ];
        if let Some(ledger) = &self.ledger {
            members.push((
                "ledger",
                obj(vec![
                    ("budget_bytes", Json::from(ledger.budget_bytes)),
                    ("total_bytes", Json::from(ledger.total_bytes)),
                    ("peak_bytes", Json::from(ledger.peak_bytes)),
                    ("total_buffers", Json::from(ledger.total_buffers)),
                    (
                        "stages",
                        Json::Arr(
                            ledger
                                .stages
                                .iter()
                                .map(|s| {
                                    obj(vec![
                                        ("stage", Json::from(s.stage.as_str())),
                                        ("buffers", Json::from(s.buffers)),
                                        ("bytes", Json::from(s.bytes)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        obj(members)
    }

    /// Parse a report written by [`ResourceReport::to_json_value`].
    pub fn from_json_value(j: &Json) -> Result<ResourceReport, String> {
        let u = |j: &Json, k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        let s = |j: &Json, k: &str| -> Result<String, String> {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("resources: missing string member {k}"))
        };
        let threads = j
            .get("threads")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|t| {
                Ok(ThreadResources {
                    name: s(t, "name")?,
                    utime_ns: u(t, "utime_ns"),
                    stime_ns: u(t, "stime_ns"),
                    vol_switches: u(t, "vol_switches"),
                    invol_switches: u(t, "invol_switches"),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let alloc = j
            .get("alloc")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|a| {
                Ok(AllocResources {
                    stage: s(a, "stage")?,
                    allocs: u(a, "count"),
                    frees: u(a, "frees"),
                    bytes: u(a, "bytes"),
                    freed_bytes: u(a, "freed_bytes"),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let ledger = match j.get("ledger") {
            Some(l) => Some(LedgerSnapshot {
                budget_bytes: u(l, "budget_bytes"),
                total_bytes: u(l, "total_bytes"),
                peak_bytes: u(l, "peak_bytes"),
                total_buffers: u(l, "total_buffers"),
                stages: l
                    .get("stages")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|r| {
                        Ok(StageResidency {
                            stage: s(r, "stage")?,
                            buffers: u(r, "buffers"),
                            bytes: u(r, "bytes"),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            }),
            None => None,
        };
        Ok(ResourceReport {
            rss_bytes: u(j, "rss_bytes"),
            rss_peak_bytes: u(j, "rss_peak_bytes"),
            threads,
            alloc_tracking: matches!(j.get("alloc_tracking"), Some(Json::Bool(true))),
            alloc,
            alloc_current_bytes: u(j, "alloc_current_bytes"),
            alloc_peak_bytes: u(j, "alloc_peak_bytes"),
            ledger,
        })
    }

    /// Human-readable rendering — the `== resources ==` dashboard section.
    pub fn render(&self) -> String {
        let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
        let mut out = String::new();
        if self.rss_bytes > 0 {
            out.push_str(&format!(
                "process rss {:.1} MiB (peak {:.1} MiB)\n",
                mb(self.rss_bytes),
                mb(self.rss_peak_bytes)
            ));
        }
        if self.alloc_tracking {
            out.push_str(&format!(
                "heap live {:.1} MiB (peak {:.1} MiB), tracking allocator on\n",
                mb(self.alloc_current_bytes),
                mb(self.alloc_peak_bytes)
            ));
        }
        if !self.threads.is_empty() {
            let name_w = self
                .threads
                .iter()
                .map(|t| t.name.len())
                .max()
                .unwrap_or(6)
                .max(6);
            out.push_str(&format!(
                "{:<name_w$} {:>9} {:>9} {:>8} {:>8}\n",
                "thread", "user ms", "sys ms", "vol cs", "invol cs"
            ));
            for t in &self.threads {
                out.push_str(&format!(
                    "{:<name_w$} {:>9.1} {:>9.1} {:>8} {:>8}\n",
                    t.name,
                    t.utime_ns as f64 / 1e6,
                    t.stime_ns as f64 / 1e6,
                    t.vol_switches,
                    t.invol_switches
                ));
            }
        }
        if !self.alloc.is_empty() {
            let name_w = self
                .alloc
                .iter()
                .map(|a| a.stage.len())
                .max()
                .unwrap_or(5)
                .max(5);
            out.push_str(&format!(
                "{:<name_w$} {:>10} {:>10} {:>12} {:>12}\n",
                "alloc", "count", "frees", "bytes", "freed"
            ));
            for a in &self.alloc {
                out.push_str(&format!(
                    "{:<name_w$} {:>10} {:>10} {:>12} {:>12}\n",
                    a.stage, a.allocs, a.frees, a.bytes, a.freed_bytes
                ));
            }
        }
        if let Some(ledger) = &self.ledger {
            let budget = if ledger.budget_bytes > 0 {
                format!(" of {:.1} MiB budget", mb(ledger.budget_bytes))
            } else {
                String::new()
            };
            out.push_str(&format!(
                "ledger: {} buffers, {:.1} MiB outstanding (peak {:.1} MiB){budget}\n",
                ledger.total_buffers,
                mb(ledger.total_bytes),
                mb(ledger.peak_bytes)
            ));
            for s in &ledger.stages {
                out.push_str(&format!(
                    "  {:<12} {:>4} buffers {:>10} bytes\n",
                    s.stage, s.buffers, s.bytes
                ));
            }
        }
        if out.is_empty() {
            out.push_str("no resource data\n");
        }
        out
    }
}

// ---------------------------------------------------------------------------
// ResourceProfiler
// ---------------------------------------------------------------------------

/// Publish one thread's CPU row as `resource/thread/<name>/*` gauges.
fn publish_thread_row(t: &ThreadResources, registry: &MetricsRegistry) {
    let base = format!("{RESOURCE_THREAD_PREFIX}{}", t.name);
    registry.gauge(&format!("{base}/utime_ns")).set(t.utime_ns);
    registry.gauge(&format!("{base}/stime_ns")).set(t.stime_ns);
    registry
        .gauge(&format!("{base}/vol_switches"))
        .set(t.vol_switches);
    registry
        .gauge(&format!("{base}/invol_switches"))
        .set(t.invol_switches);
}

/// Publish the calling thread's **final** CPU numbers into `registry`.
/// The runtime calls this as each stage/source/sink thread exits: a
/// thread that lived shorter than the profiler cadence (or ran with no
/// profiler attached at all) still leaves its CPU attribution behind,
/// which is what keeps per-stage rows present for fast runs.  Costs two
/// small `/proc` reads once per thread lifetime; degrades to a no-op off
/// Linux.
pub fn publish_exit_sample(name: &str, registry: &MetricsRegistry) {
    let Ok(tid) = current_tid() else { return };
    if let Some(row) = ProcSource::system().thread_cpu(name, tid) {
        publish_thread_row(&row, registry);
    }
}

/// Sampling cadence of a [`ResourceProfiler`].
#[derive(Debug, Clone, Copy)]
pub struct ProfilerCfg {
    /// Interval between samples.
    pub interval: Duration,
}

impl Default for ProfilerCfg {
    /// 100 ms cadence, matching
    /// [`SamplerCfg`](crate::telemetry::SamplerCfg): one `/proc` sweep
    /// (two small files per registered thread plus two per process) every
    /// tenth of a second — bounded, workload-independent cost.
    fn default() -> Self {
        ProfilerCfg {
            interval: Duration::from_millis(100),
        }
    }
}

/// A background thread that samples [`ResourceReport`]s on a fixed
/// interval and publishes them as `resource/*` gauges — the live half of
/// resource observability, feeding `/metrics`, `/resources`, the
/// telemetry sampler's time series, and [`diagnose`](crate::diagnose).
///
/// ```
/// use std::sync::Arc;
/// use fg_core::{MetricsRegistry, profile::ResourceProfiler};
///
/// let registry = Arc::new(MetricsRegistry::new());
/// let profiler = ResourceProfiler::start(Arc::clone(&registry));
/// // … run pipelines …
/// let final_report = profiler.stop();
/// # let _ = final_report;
/// ```
pub struct ResourceProfiler {
    cadence: Arc<crate::telemetry::Cadence>,
    registry: Arc<MetricsRegistry>,
    ledger: Option<Arc<MemoryLedger>>,
    handle: Option<JoinHandle<()>>,
}

impl ResourceProfiler {
    /// Spawn the sampling thread with the default cadence and no ledger.
    pub fn start(registry: Arc<MetricsRegistry>) -> ResourceProfiler {
        Self::start_with(registry, ProfilerCfg::default(), None)
    }

    /// Spawn the sampling thread; `ledger` rows are included in every
    /// sample when given.
    pub fn start_with(
        registry: Arc<MetricsRegistry>,
        cfg: ProfilerCfg,
        ledger: Option<Arc<MemoryLedger>>,
    ) -> ResourceProfiler {
        let cadence = Arc::new(crate::telemetry::Cadence::new());
        let worker_cadence = Arc::clone(&cadence);
        let worker_registry = Arc::clone(&registry);
        let worker_ledger = ledger.clone();
        let interval = cfg.interval.max(Duration::from_millis(1));
        let handle = std::thread::Builder::new()
            .name("fg-resource-profiler".into())
            .spawn(move || {
                let _reg = register_current_thread("profiler");
                let source = ProcSource::system();
                worker_cadence.run(interval, || {
                    ResourceReport::collect(&source, worker_ledger.as_deref())
                        .publish(&worker_registry);
                });
            })
            .expect("spawn resource profiler");
        ResourceProfiler {
            cadence,
            registry,
            ledger,
            handle: Some(handle),
        }
    }

    /// Stop the sampling thread, take one final sample, publish it, and
    /// return it — so end-of-run totals (not the last interval's) land in
    /// the registry and the report.
    pub fn stop(mut self) -> ResourceReport {
        self.join();
        let report = ResourceReport::sample_now(self.ledger.as_deref());
        report.publish(&self.registry);
        report
    }

    fn join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.cadence.stop();
            let _ = handle.join();
        }
    }
}

impl Drop for ResourceProfiler {
    fn drop(&mut self) {
        self.join();
    }
}

/// A replicated stage's base name: `sort#3` → `sort` (attribution folds
/// replicas into one row, like
/// [`Report::stage_rollup`](crate::Report::stage_rollup)).
pub(crate) fn replica_base(name: &str) -> &str {
    match name.rsplit_once('#') {
        Some((base, idx)) if !idx.is_empty() && idx.chars().all(|c| c.is_ascii_digit()) => base,
        _ => name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_parsing_handles_hostile_comm() {
        let line = "1234 (a (we)ird) name) R 1 1 1 0 -1 4194560 100 0 0 0 \
                    250 75 0 0 20 0 1 0 100 1000000 50 18446744073709551615";
        let (utime, stime) = parse_stat_times(line).expect("parseable");
        assert_eq!((utime, stime), (250, 75));
    }

    #[test]
    fn status_parsing_extracts_fields() {
        let status = "Name:\tfgsort\nVmHWM:\t    5280 kB\nVmRSS:\t    4000 kB\n\
                      voluntary_ctxt_switches:\t42\nnonvoluntary_ctxt_switches:\t7\n";
        assert_eq!(parse_status_kb(status, "VmHWM:"), Some(5280));
        assert_eq!(
            parse_status_count(status, "voluntary_ctxt_switches:"),
            Some(42)
        );
        assert_eq!(
            parse_status_count(status, "nonvoluntary_ctxt_switches:"),
            Some(7)
        );
        assert_eq!(parse_status_kb(status, "VmSwap:"), None);
    }

    #[test]
    fn unreadable_proc_degrades_to_inert_report() {
        let _reg = register_current_thread("degraded-test");
        let source = ProcSource::with_root("/nonexistent-fg-proc-root");
        let report = ResourceReport::collect(&source, None);
        assert_eq!(report.rss_bytes, 0);
        assert!(report.threads.is_empty());
        // Publishing a degraded report must not invent process gauges.
        let registry = MetricsRegistry::new();
        report.publish(&registry);
        let snap = registry.snapshot();
        assert!(snap.gauge("resource/process/rss_bytes").is_none());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_sample_sees_registered_threads() {
        let _reg = register_current_thread("profile-test-live");
        // Burn a little CPU so utime has a chance to be nonzero (not
        // asserted — tick granularity is 10ms).
        let mut x = 0u64;
        for i in 0..100_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let report = ResourceReport::sample_now(None);
        assert!(report.rss_bytes > 0, "linux must report RSS");
        assert!(report.rss_peak_bytes >= report.rss_bytes);
        assert!(
            report.threads.iter().any(|t| t.name == "profile-test-live"),
            "registered thread row missing: {:?}",
            report.threads
        );
    }

    #[test]
    fn registration_guard_removes_entry() {
        let before = registered_threads().len();
        let reg = register_current_thread("guard-test");
        assert_eq!(registered_threads().len(), before + 1);
        drop(reg);
        assert!(registered_threads()
            .iter()
            .all(|(name, _)| name != "guard-test"));
    }

    #[test]
    fn ledger_accounts_and_clamps() {
        let ledger = MemoryLedger::with_budget(1024);
        ledger.charge_pool(600);
        ledger.charge_pool(600);
        assert!(ledger.over_budget());
        ledger.credit_pool(600);
        assert!(!ledger.over_budget());
        let sort = ledger.stage("sort");
        sort.acquire(4096);
        sort.acquire(4096);
        sort.release(4096);
        // Teardown drains can release buffers a stage never acquired;
        // residency clamps at zero instead of wrapping.
        let merge = ledger.stage("merge");
        merge.release(4096);
        let snap = ledger.snapshot();
        assert_eq!(snap.budget_bytes, 1024);
        assert_eq!(snap.total_buffers, 1);
        assert_eq!(snap.peak_bytes, 1200);
        let row = |n: &str| snap.stages.iter().find(|s| s.stage == n).unwrap();
        assert_eq!((row("sort").buffers, row("sort").bytes), (1, 4096));
        assert_eq!((row("merge").buffers, row("merge").bytes), (0, 0));
    }

    #[test]
    fn report_json_round_trip() {
        let report = ResourceReport {
            rss_bytes: 10 << 20,
            rss_peak_bytes: 12 << 20,
            threads: vec![ThreadResources {
                name: "csort/sort#0".into(),
                utime_ns: 1_500_000_000,
                stime_ns: 250_000_000,
                vol_switches: 42,
                invol_switches: 7,
            }],
            alloc_tracking: true,
            alloc: vec![AllocResources {
                stage: "sort/steady".into(),
                allocs: 0,
                frees: 3,
                bytes: 0,
                freed_bytes: 128,
            }],
            alloc_current_bytes: 1 << 20,
            alloc_peak_bytes: 2 << 20,
            ledger: Some(LedgerSnapshot {
                budget_bytes: 64 << 20,
                total_bytes: 8 << 20,
                peak_bytes: 8 << 20,
                total_buffers: 4,
                stages: vec![StageResidency {
                    stage: "sort".into(),
                    buffers: 2,
                    bytes: 4 << 20,
                }],
            }),
        };
        let text = report.to_json_value().to_string();
        let parsed = ResourceReport::from_json_value(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn publish_and_from_metrics_round_trip() {
        let report = ResourceReport {
            rss_bytes: 10 << 20,
            rss_peak_bytes: 12 << 20,
            threads: vec![
                ThreadResources {
                    name: "csort/read".into(),
                    utime_ns: 100,
                    stime_ns: 200,
                    vol_switches: 3,
                    invol_switches: 4,
                },
                ThreadResources {
                    name: "csort/sort#1".into(),
                    utime_ns: 500,
                    stime_ns: 600,
                    vol_switches: 7,
                    invol_switches: 8,
                },
            ],
            alloc_tracking: true,
            alloc: vec![AllocResources {
                stage: "sort".into(),
                allocs: 5,
                frees: 5,
                bytes: 4096,
                freed_bytes: 4096,
            }],
            alloc_current_bytes: 77,
            alloc_peak_bytes: 99,
            ledger: Some(LedgerSnapshot {
                budget_bytes: 0,
                total_bytes: 1 << 20,
                peak_bytes: 1 << 20,
                total_buffers: 2,
                stages: vec![StageResidency {
                    stage: "read".into(),
                    buffers: 1,
                    bytes: 1 << 19,
                }],
            }),
        };
        let registry = MetricsRegistry::new();
        report.publish(&registry);
        let rebuilt = ResourceReport::from_metrics(&registry.snapshot()).expect("gauges present");
        assert_eq!(rebuilt, report);
        assert!(ResourceReport::from_metrics(&MetricsSnapshot::default()).is_none());
    }

    #[test]
    fn replica_base_folds_indices() {
        assert_eq!(replica_base("sort#12"), "sort");
        assert_eq!(replica_base("sort"), "sort");
        assert_eq!(replica_base("a#b"), "a#b");
        assert_eq!(replica_base("csort/sort#0"), "csort/sort");
    }

    #[test]
    fn render_mentions_every_section() {
        let report = ResourceReport {
            rss_bytes: 1 << 20,
            rss_peak_bytes: 1 << 20,
            threads: vec![ThreadResources {
                name: "t".into(),
                ..ThreadResources::default()
            }],
            alloc_tracking: true,
            alloc: vec![AllocResources {
                stage: "sort".into(),
                allocs: 1,
                ..AllocResources::default()
            }],
            ledger: Some(LedgerSnapshot::default()),
            ..ResourceReport::default()
        };
        let text = report.render();
        assert!(text.contains("process rss"));
        assert!(text.contains("thread"));
        assert!(text.contains("alloc"));
        assert!(text.contains("ledger:"));
        assert_eq!(ResourceReport::default().render(), "no resource data\n");
    }
}
