//! Event hooks into the FG runtime.
//!
//! An [`Observer`] installed with
//! [`Program::set_observer`](crate::Program::set_observer) receives a
//! callback at every interesting runtime event: stage thread start/exit,
//! each buffer accept and convey (with round number and queue identity),
//! each round a source begins and emits, and each buffer a sink recycles.
//!
//! The hooks are strictly zero-cost when no observer is installed: every
//! fire site is `if let Some(obs) = &self.observer { ... }` over an
//! `Option<Arc<dyn Observer>>` that defaults to `None`, so the uninstalled
//! path is a single never-taken branch.  Observer methods run on the
//! runtime's threads and block the pipeline while they execute — keep them
//! short (count, sample, enqueue) and lock-free where possible, e.g. by
//! recording into [`metrics`](crate::metrics) primitives.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::buffer::PipelineId;
use crate::metrics::MetricsRegistry;
use crate::stats::StageStats;

/// Receiver of runtime events.  Every method has a no-op default, so
/// implementors override only what they need.
#[allow(unused_variables)]
pub trait Observer: Send + Sync {
    /// A stage thread is about to run its stage body.
    fn on_stage_start(&self, stage: &str) {}

    /// A stage thread finished (body returned, errored, or panicked) and
    /// its aggregate statistics are final.
    fn on_stage_exit(&self, stage: &str, stats: &StageStats) {}

    /// A stage accepted a buffer: `round` identifies the buffer, `queue`
    /// the queue it was popped from, and `waited` how long the pop
    /// blocked (starvation).
    fn on_accept(
        &self,
        stage: &str,
        pipeline: PipelineId,
        round: u64,
        queue: &str,
        waited: Duration,
    ) {
    }

    /// A stage conveyed a buffer: `queue` is the downstream queue it was
    /// pushed to and `waited` how long the push blocked (backpressure).
    fn on_convey(
        &self,
        stage: &str,
        pipeline: PipelineId,
        round: u64,
        queue: &str,
        waited: Duration,
    ) {
    }

    /// A source is about to inject round `round` of `pipeline` (the round
    /// boundary: all earlier rounds of the pipeline have been emitted).
    fn on_round_begin(&self, source: &str, pipeline: PipelineId, round: u64) {}

    /// A source finished injecting round `round` of `pipeline` into the
    /// pipeline's first queue.
    fn on_source_emit(&self, source: &str, pipeline: PipelineId, round: u64) {}

    /// A sink received the buffer of round `round` back from the last
    /// stage and returned it to `pipeline`'s pool.
    fn on_sink_recycle(&self, sink: &str, pipeline: PipelineId, round: u64) {}
}

/// An [`Observer`] that counts every event category with relaxed atomics.
/// Useful for asserting event coverage in tests and for measuring observer
/// overhead in benches.
#[derive(Debug, Default)]
pub struct CountingObserver {
    stage_starts: AtomicU64,
    stage_exits: AtomicU64,
    accepts: AtomicU64,
    conveys: AtomicU64,
    round_begins: AtomicU64,
    source_emits: AtomicU64,
    sink_recycles: AtomicU64,
}

impl CountingObserver {
    /// A counting observer at zero.
    pub fn new() -> Self {
        CountingObserver::default()
    }

    /// Stage threads started.
    pub fn stage_starts(&self) -> u64 {
        self.stage_starts.load(Ordering::Relaxed)
    }

    /// Stage threads exited.
    pub fn stage_exits(&self) -> u64 {
        self.stage_exits.load(Ordering::Relaxed)
    }

    /// Buffers accepted across all stages.
    pub fn accepts(&self) -> u64 {
        self.accepts.load(Ordering::Relaxed)
    }

    /// Buffers conveyed across all stages.
    pub fn conveys(&self) -> u64 {
        self.conveys.load(Ordering::Relaxed)
    }

    /// Rounds begun across all sources.
    pub fn round_begins(&self) -> u64 {
        self.round_begins.load(Ordering::Relaxed)
    }

    /// Rounds emitted across all sources.
    pub fn source_emits(&self) -> u64 {
        self.source_emits.load(Ordering::Relaxed)
    }

    /// Buffers recycled across all sinks.
    pub fn sink_recycles(&self) -> u64 {
        self.sink_recycles.load(Ordering::Relaxed)
    }
}

impl Observer for CountingObserver {
    fn on_stage_start(&self, _stage: &str) {
        self.stage_starts.fetch_add(1, Ordering::Relaxed);
    }
    fn on_stage_exit(&self, _stage: &str, _stats: &StageStats) {
        self.stage_exits.fetch_add(1, Ordering::Relaxed);
    }
    fn on_accept(&self, _: &str, _: PipelineId, _: u64, _: &str, _: Duration) {
        self.accepts.fetch_add(1, Ordering::Relaxed);
    }
    fn on_convey(&self, _: &str, _: PipelineId, _: u64, _: &str, _: Duration) {
        self.conveys.fetch_add(1, Ordering::Relaxed);
    }
    fn on_round_begin(&self, _: &str, _: PipelineId, _: u64) {
        self.round_begins.fetch_add(1, Ordering::Relaxed);
    }
    fn on_source_emit(&self, _: &str, _: PipelineId, _: u64) {
        self.source_emits.fetch_add(1, Ordering::Relaxed);
    }
    fn on_sink_recycle(&self, _: &str, _: PipelineId, _: u64) {
        self.sink_recycles.fetch_add(1, Ordering::Relaxed);
    }
}

/// An [`Observer`] that records events into a [`MetricsRegistry`] under
/// `core/` names: event counters (`core/accepts`, `core/conveys`,
/// `core/rounds`, `core/recycles`) and blocked-wait histograms
/// (`core/accept_wait_ns`, `core/convey_wait_ns`).  Metric handles are
/// resolved once at construction, so the per-event cost is the same
/// relaxed atomics as [`CountingObserver`].
pub struct MetricsObserver {
    accepts: Arc<crate::metrics::Counter>,
    conveys: Arc<crate::metrics::Counter>,
    rounds: Arc<crate::metrics::Counter>,
    recycles: Arc<crate::metrics::Counter>,
    accept_wait: Arc<crate::metrics::Histogram>,
    convey_wait: Arc<crate::metrics::Histogram>,
}

impl MetricsObserver {
    /// Register the `core/` metrics in `registry` and observe into them.
    pub fn new(registry: &MetricsRegistry) -> Self {
        MetricsObserver {
            accepts: registry.counter("core/accepts"),
            conveys: registry.counter("core/conveys"),
            rounds: registry.counter("core/rounds"),
            recycles: registry.counter("core/recycles"),
            accept_wait: registry.histogram("core/accept_wait_ns"),
            convey_wait: registry.histogram("core/convey_wait_ns"),
        }
    }
}

impl Observer for MetricsObserver {
    fn on_accept(&self, _: &str, _: PipelineId, _: u64, _: &str, waited: Duration) {
        self.accepts.inc();
        self.accept_wait.record_duration(waited);
    }
    fn on_convey(&self, _: &str, _: PipelineId, _: u64, _: &str, waited: Duration) {
        self.conveys.inc();
        self.convey_wait.record_duration(waited);
    }
    fn on_round_begin(&self, _: &str, _: PipelineId, _: u64) {
        self.rounds.inc();
    }
    fn on_sink_recycle(&self, _: &str, _: PipelineId, _: u64) {
        self.recycles.inc();
    }
}
