//! Opt-in tracking allocator: per-stage allocation attribution.
//!
//! PR 8 made the sort kernels' steady-state rounds allocation-free by
//! construction ([`SortScratch`]-style reuse), but that property was only
//! a bench claim — nothing at runtime could *see* an allocation, let alone
//! attribute one to a stage.  [`FgAlloc`] closes that gap: a
//! `#[global_allocator]` wrapper around [`std::alloc::System`] that counts
//! allocs/frees/bytes against the calling thread's current *stage tag*
//! before delegating.  Binaries opt in:
//!
//! ```ignore
//! #[global_allocator]
//! static FG_ALLOC: fg_core::alloc::FgAlloc = fg_core::alloc::FgAlloc;
//! ```
//!
//! Library code (and every test binary that does not install the wrapper)
//! pays nothing and sees [`installed`]`() == false`; all counters read
//! zero and the assertion helper [`assert_steady_state_alloc_free`]
//! degrades to an inert pass-through, so the same code runs unchanged with
//! or without tracking.
//!
//! The hot path is deliberately dumb: a thread-local tag id (a plain
//! `Cell<usize>`, const-initialized so reading it can never itself
//! allocate) indexes a fixed static table of relaxed atomic counters.  No
//! locks, no allocation, no syscalls — a handful of relaxed RMWs per
//! alloc/free, measured end-to-end by the `resource-profile` experiment.
//! The runtime tags each stage thread with its stage's base name at spawn,
//! and hot loops can refine attribution with [`with_tag`] (e.g. the sort
//! kernels split warmup-round allocations from steady-state rounds, which
//! is what turns "zero-alloc steady state" into a CI-checkable
//! `resource/alloc/<stage>/count == 0`).
//!
//! This is the one module in `fg-core` that needs `unsafe`: implementing
//! [`GlobalAlloc`] requires an `unsafe impl`.  The unsafe surface is
//! confined to delegating verbatim to `System`; all bookkeeping is safe
//! code on plain atomics.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Maximum number of distinct stage tags (including the implicit
/// `untagged` slot 0).  Registrations beyond the table fall back to
/// `untagged` rather than failing.
pub const MAX_TAGS: usize = 64;

/// One tag's counters.  `bytes`/`freed_bytes` are cumulative, so a
/// snapshot never goes backwards and cross-thread frees (a buffer
/// allocated under one tag, dropped under another) cannot underflow.
struct Slot {
    allocs: AtomicU64,
    frees: AtomicU64,
    bytes: AtomicU64,
    freed_bytes: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_SLOT: Slot = Slot {
    allocs: AtomicU64::new(0),
    frees: AtomicU64::new(0),
    bytes: AtomicU64::new(0),
    freed_bytes: AtomicU64::new(0),
};

static SLOTS: [Slot; MAX_TAGS] = [ZERO_SLOT; MAX_TAGS];
/// Names of tags 1.., in registration order (slot 0 is `untagged`).
static NAMES: Mutex<Vec<String>> = Mutex::new(Vec::new());
/// Process-wide live bytes and high-water mark, across all tags.
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
/// Flipped by the first call into [`FgAlloc`]: the only reliable signal
/// that the wrapper really is the process's global allocator.
static INSTALLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// The calling thread's current tag slot.  `const`-initialized: the
    /// first access from inside `FgAlloc::alloc` must not itself allocate
    /// (a lazy initializer would recurse).
    static TAG: Cell<usize> = const { Cell::new(0) };
}

/// An interned stage tag; obtain one with [`register_tag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagId(usize);

impl TagId {
    /// The implicit slot for allocations made outside any tag scope.
    pub const UNTAGGED: TagId = TagId(0);
}

/// Intern `name` as a stage tag.  Registering the same name twice returns
/// the same id; once the table is full ([`MAX_TAGS`]) further names fall
/// back to [`TagId::UNTAGGED`] (attribution coarsens, nothing fails).
pub fn register_tag(name: &str) -> TagId {
    let mut names = NAMES.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = names.iter().position(|n| n == name) {
        return TagId(i + 1);
    }
    if names.len() + 1 >= MAX_TAGS {
        return TagId::UNTAGGED;
    }
    names.push(name.to_string());
    TagId(names.len())
}

/// Set the calling thread's tag, returning the previous one.  Prefer the
/// RAII [`thread_tag_scope`] / closure [`with_tag`] forms.
pub fn set_thread_tag(tag: TagId) -> TagId {
    TagId(TAG.try_with(|t| t.replace(tag.0)).unwrap_or(0))
}

/// RAII guard restoring the thread's previous tag on drop.
pub struct TagScope {
    prev: TagId,
}

/// Tag the calling thread until the returned guard drops.  The runtime
/// installs one per stage thread at spawn, so everything a stage allocates
/// lands on its own `resource/alloc/<stage>/…` series.
pub fn thread_tag_scope(tag: TagId) -> TagScope {
    TagScope {
        prev: set_thread_tag(tag),
    }
}

impl Drop for TagScope {
    fn drop(&mut self) {
        set_thread_tag(self.prev);
    }
}

/// Run `f` with the calling thread tagged `tag` (restores the previous
/// tag afterwards).  Two `Cell` stores of overhead — cheap enough for a
/// per-round hot-loop wrapper.
pub fn with_tag<R>(tag: TagId, f: impl FnOnce() -> R) -> R {
    let _scope = thread_tag_scope(tag);
    f()
}

/// True once [`FgAlloc`] has served at least one allocation, i.e. a
/// binary really installed it as `#[global_allocator]`.  Everything that
/// *reads* the counters should treat `false` as "no data" rather than
/// "zero allocations".
pub fn installed() -> bool {
    INSTALLED.load(Relaxed)
}

/// Cumulative counters of one tag at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagCounts {
    /// Allocations charged to the tag (allocs + realloc new-sides).
    pub allocs: u64,
    /// Frees charged to the tag (deallocs + realloc old-sides).
    pub frees: u64,
    /// Bytes allocated, cumulative.
    pub bytes: u64,
    /// Bytes freed, cumulative.
    pub freed_bytes: u64,
}

/// Read one tag's counters.
pub fn counts(tag: TagId) -> TagCounts {
    let s = &SLOTS[tag.0.min(MAX_TAGS - 1)];
    TagCounts {
        allocs: s.allocs.load(Relaxed),
        frees: s.frees.load(Relaxed),
        bytes: s.bytes.load(Relaxed),
        freed_bytes: s.freed_bytes.load(Relaxed),
    }
}

/// Process-wide `(current_bytes, peak_bytes)` across all tags.  Zeros
/// unless [`installed`].
pub fn process_bytes() -> (u64, u64) {
    (CURRENT_BYTES.load(Relaxed), PEAK_BYTES.load(Relaxed))
}

/// Every tag with activity: `(name, counts)`, registration order, the
/// untagged slot (named `untagged`) first when it has any.
pub fn snapshot() -> Vec<(String, TagCounts)> {
    let names = NAMES.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut out = Vec::new();
    let untagged = counts(TagId::UNTAGGED);
    if untagged != TagCounts::default() {
        out.push(("untagged".to_string(), untagged));
    }
    for (i, name) in names.iter().enumerate() {
        let c = counts(TagId(i + 1));
        if c != TagCounts::default() {
            out.push((name.clone(), c));
        }
    }
    out
}

/// Assert that `f` performs **zero allocations** on the calling thread —
/// the CI-enforced form of PR 8's "steady-state rounds allocate nothing".
/// Runs `f` under a private tag; when [`FgAlloc`] is not installed the
/// check degrades to an inert pass-through (`f` just runs), so library
/// test binaries that don't opt into the allocator still pass.
///
/// `label` names the failing site in the panic message.
pub fn assert_steady_state_alloc_free<R>(label: &str, f: impl FnOnce() -> R) -> R {
    // A private per-label tag keeps concurrent allocations by *other*
    // threads (which keep whatever tag they had) out of the measurement.
    let tag = register_tag(&format!("assert/{label}"));
    let before = counts(tag);
    let out = with_tag(tag, f);
    // A full tag table degrades `tag` to UNTAGGED, which other threads
    // share — skip the check rather than flake on their allocations.
    if installed() && tag != TagId::UNTAGGED {
        let after = counts(tag);
        let allocs = after.allocs - before.allocs;
        let bytes = after.bytes - before.bytes;
        assert!(
            allocs == 0,
            "steady-state section `{label}` allocated {allocs} times ({bytes} bytes); \
             expected zero allocations"
        );
    }
    out
}

fn record_alloc(size: usize) {
    if !INSTALLED.load(Relaxed) {
        INSTALLED.store(true, Relaxed);
    }
    let tag = TAG.try_with(Cell::get).unwrap_or(0);
    let slot = &SLOTS[tag.min(MAX_TAGS - 1)];
    slot.allocs.fetch_add(1, Relaxed);
    slot.bytes.fetch_add(size as u64, Relaxed);
    let now = CURRENT_BYTES.fetch_add(size as u64, Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(now, Relaxed);
}

fn record_free(size: usize) {
    let tag = TAG.try_with(Cell::get).unwrap_or(0);
    let slot = &SLOTS[tag.min(MAX_TAGS - 1)];
    slot.frees.fetch_add(1, Relaxed);
    slot.freed_bytes.fetch_add(size as u64, Relaxed);
    // Saturating: frees of memory allocated before the first recorded
    // alloc (or accounted to a process that exec'd us) must not wrap.
    let _ = CURRENT_BYTES.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(size as u64)));
}

/// The tracking allocator.  Install with `#[global_allocator]`; see the
/// module docs.
pub struct FgAlloc;

unsafe impl GlobalAlloc for FgAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        record_free(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is a free of the old block plus an alloc of the new
        // one, so grow-in-place churn is still visible as churn.
        record_free(layout.size());
        record_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_intern_and_saturate() {
        let a = register_tag("alloc-test/stage-a");
        let b = register_tag("alloc-test/stage-b");
        assert_ne!(a, b);
        assert_eq!(a, register_tag("alloc-test/stage-a"));
    }

    #[test]
    fn tag_scope_restores_previous() {
        let a = register_tag("alloc-test/outer");
        let b = register_tag("alloc-test/inner");
        let prev = set_thread_tag(a);
        with_tag(b, || {
            assert_eq!(set_thread_tag(b), b); // idempotent read-back
        });
        assert_eq!(set_thread_tag(prev), a);
    }

    #[test]
    fn assert_helper_is_inert_without_installation() {
        // fg-core's own test binary does not install FgAlloc, so even an
        // allocating closure must pass: "not installed" means "no data",
        // not "zero allocations".
        let v = assert_steady_state_alloc_free("inert", || vec![1u8; 4096]);
        assert_eq!(v.len(), 4096);
        assert!(!installed());
    }

    #[test]
    fn counts_default_to_zero() {
        let tag = register_tag("alloc-test/never-used");
        assert_eq!(counts(tag), TagCounts::default());
        let (_cur, peak) = process_bytes();
        if !installed() {
            assert_eq!(peak, 0);
        }
    }
}
