//! Bounded blocking queues of buffers.
//!
//! FG places a queue between every pair of consecutive pipeline stages.  A
//! stage *conveys* a buffer by pushing into its downstream queue and
//! *accepts* by popping from its upstream queue; an empty upstream queue
//! blocks the accepting stage's thread, which is exactly how FG yields the
//! CPU to other stages while a high-latency operation is pending elsewhere.
//!
//! Queues are multi-producer multi-consumer because *virtual* stages share a
//! single queue among many pipelines, and several stages may discard buffers
//! into the same recycle queue.  When the planner can prove a queue has
//! exactly one producer and one consumer thread (a plain stage-to-stage
//! link with no replication on either side), it builds the queue with the
//! lock-free SPSC ring flavor instead; both flavors share the same API.
//!
//! Waiting is *spin-then-park*: a blocked thread first spins a few hundred
//! iterations (the common case when the peer stage is about to act) and only
//! then takes the slow path of parking on a condvar.
//!
//! A queue can be *closed*; closing wakes every blocked thread — parked or
//! spinning.  Pushes to a closed queue fail immediately, pops drain whatever
//! is left and then fail.  The runtime closes all queues of a program when a
//! stage fails, which unblocks every thread for shutdown.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::buffer::{Buffer, PipelineId};
use crate::metrics::Gauge;

/// Iterations a blocked push/pop spins before parking on a condvar.  Zero
/// on a single-core host: there the peer stage cannot make progress while
/// we spin, so the spin phase only burns the time slice the peer needs.
fn spin_limit() -> usize {
    static LIMIT: AtomicUsize = AtomicUsize::new(usize::MAX);
    let cached = LIMIT.load(Ordering::Relaxed);
    if cached != usize::MAX {
        return cached;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let limit = if cores > 1 { 256 } else { 0 };
    LIMIT.store(limit, Ordering::Relaxed);
    limit
}

/// What travels through a queue: a buffer, or the end-of-stream marker for
/// one pipeline (FG's *caboose*).
#[derive(Debug)]
pub(crate) enum Item {
    /// A data buffer.
    Buf(Buffer),
    /// End of pipeline `PipelineId`'s stream.  Exactly one caboose per
    /// pipeline flows through each queue on that pipeline's path.
    Caboose(PipelineId),
}

/// Error returned by queue operations once the queue is closed.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Closed;

struct Inner {
    items: VecDeque<Item>,
    closed: bool,
}

/// Single-producer single-consumer ring: one `Option<Item>` slot per
/// capacity entry, with monotonically increasing head/tail indices.  The
/// per-slot mutexes are never contended (producer and consumer touch
/// disjoint slots) — they exist only to move `Item`s in and out without
/// `unsafe`.
struct Ring {
    slots: Vec<Mutex<Option<Item>>>,
    /// Next slot the consumer will take.  Only the consumer stores.
    head: AtomicU64,
    /// Next slot the producer will fill.  Only the producer stores.
    tail: AtomicU64,
}

enum Flavor {
    /// General case: a mutex-protected deque, usable from any number of
    /// producer and consumer threads.
    Mpmc(Mutex<Inner>),
    /// Fast path: a lock-free ring, valid only with exactly one producer
    /// thread and one consumer thread.
    Spsc(Ring),
}

/// A bounded blocking queue of [`Item`]s.
pub(crate) struct Queue {
    flavor: Flavor,
    /// Authoritative closed flag for the SPSC flavor; a racy hint for the
    /// MPMC spin phase (MPMC keeps the authoritative flag under its lock).
    closed: AtomicBool,
    /// Approximate current depth, maintained so blocked threads can spin on
    /// it without taking the lock.
    depth_hint: AtomicUsize,
    /// High-water mark of the queue's depth over its lifetime.
    max_depth: AtomicUsize,
    /// Parking lot for the SPSC flavor's slow path.  (The MPMC flavor parks
    /// on its own inner mutex instead.)
    park: Mutex<()>,
    /// Number of consumers parked (or about to park) on `not_empty`; the
    /// producer only takes `park` to notify when this is non-zero.
    pop_sleepers: AtomicUsize,
    /// Number of producers parked (or about to park) on `not_full`.
    push_sleepers: AtomicUsize,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    name: String,
    /// Depth gauge sampled once per push/pop/batch, present only when the
    /// program runs with a metrics registry attached.
    gauge: Option<Arc<Gauge>>,
}

impl Queue {
    /// Create an MPMC queue holding at most `capacity` items.
    pub(crate) fn new(name: impl Into<String>, capacity: usize) -> Arc<Self> {
        Self::with_gauge(name, capacity, None)
    }

    /// Create an MPMC queue that additionally samples its depth into `gauge`.
    pub(crate) fn with_gauge(
        name: impl Into<String>,
        capacity: usize,
        gauge: Option<Arc<Gauge>>,
    ) -> Arc<Self> {
        assert!(capacity > 0, "queue capacity must be positive");
        Arc::new(Self::build(
            name.into(),
            capacity,
            gauge,
            Flavor::Mpmc(Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            })),
        ))
    }

    /// Create an SPSC queue.  The caller promises that at most one thread
    /// ever pushes and at most one thread ever pops (`close` may still be
    /// called from anywhere).
    pub(crate) fn spsc_with_gauge(
        name: impl Into<String>,
        capacity: usize,
        gauge: Option<Arc<Gauge>>,
    ) -> Arc<Self> {
        assert!(capacity > 0, "queue capacity must be positive");
        let slots = (0..capacity).map(|_| Mutex::new(None)).collect();
        Arc::new(Self::build(
            name.into(),
            capacity,
            gauge,
            Flavor::Spsc(Ring {
                slots,
                head: AtomicU64::new(0),
                tail: AtomicU64::new(0),
            }),
        ))
    }

    fn build(name: String, capacity: usize, gauge: Option<Arc<Gauge>>, flavor: Flavor) -> Self {
        Queue {
            flavor,
            closed: AtomicBool::new(false),
            depth_hint: AtomicUsize::new(0),
            max_depth: AtomicUsize::new(0),
            park: Mutex::new(()),
            pop_sleepers: AtomicUsize::new(0),
            push_sleepers: AtomicUsize::new(0),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            name,
            gauge,
        }
    }

    /// Debug name of this queue.
    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    /// Maximum number of items this queue can hold.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether this queue uses the single-producer single-consumer ring.
    pub(crate) fn is_spsc(&self) -> bool {
        matches!(self.flavor, Flavor::Spsc(_))
    }

    /// High-water mark of the queue's depth over its lifetime.
    pub(crate) fn max_depth(&self) -> usize {
        self.max_depth.load(Ordering::Relaxed)
    }

    /// Approximate current depth, readable from any thread without taking
    /// the queue lock (watchdog post-mortems).
    pub(crate) fn depth(&self) -> usize {
        self.depth_hint.load(Ordering::Relaxed)
    }

    fn record_depth(&self, depth: usize) {
        self.depth_hint.store(depth, Ordering::Relaxed);
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    fn sample_depth(&self, depth: usize) {
        if let Some(g) = &self.gauge {
            g.set(depth as u64);
        }
    }

    /// Blocking push.  Fails (returning the item) once the queue is closed.
    pub(crate) fn push(&self, item: Item) -> Result<(), (Item, Closed)> {
        match &self.flavor {
            Flavor::Mpmc(lock) => {
                // Spin while the queue looks full: the consumer usually
                // frees a slot within a few hundred iterations.
                if self.depth_hint.load(Ordering::Relaxed) >= self.capacity {
                    for _ in 0..spin_limit() {
                        if self.depth_hint.load(Ordering::Relaxed) < self.capacity
                            || self.closed.load(Ordering::Relaxed)
                        {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
                let mut inner = lock.lock();
                while inner.items.len() >= self.capacity && !inner.closed {
                    self.not_full.wait(&mut inner);
                }
                if inner.closed {
                    return Err((item, Closed));
                }
                inner.items.push_back(item);
                let depth = inner.items.len();
                self.record_depth(depth);
                drop(inner);
                self.sample_depth(depth);
                self.not_empty.notify_one();
                Ok(())
            }
            Flavor::Spsc(ring) => self.spsc_push(ring, item),
        }
    }

    /// Non-blocking push used by shutdown paths; drops nothing silently —
    /// the item comes back on failure.
    pub(crate) fn try_push(&self, item: Item) -> Result<(), (Item, Closed)> {
        match &self.flavor {
            Flavor::Mpmc(lock) => {
                let mut inner = lock.lock();
                if inner.closed || inner.items.len() >= self.capacity {
                    return Err((item, Closed));
                }
                inner.items.push_back(item);
                let depth = inner.items.len();
                self.record_depth(depth);
                drop(inner);
                self.sample_depth(depth);
                self.not_empty.notify_one();
                Ok(())
            }
            Flavor::Spsc(ring) => {
                if self.closed.load(Ordering::SeqCst) {
                    return Err((item, Closed));
                }
                match self.spsc_try_push(ring, item) {
                    Ok(()) => {
                        self.after_spsc_push(ring);
                        Ok(())
                    }
                    Err(item) => Err((item, Closed)),
                }
            }
        }
    }

    /// Blocking pop.  After close, drains remaining items, then fails.
    pub(crate) fn pop(&self) -> Result<Item, Closed> {
        match &self.flavor {
            Flavor::Mpmc(lock) => {
                self.mpmc_spin_until_nonempty();
                let mut inner = lock.lock();
                loop {
                    if let Some(item) = inner.items.pop_front() {
                        let depth = inner.items.len();
                        self.depth_hint.store(depth, Ordering::Relaxed);
                        drop(inner);
                        self.sample_depth(depth);
                        self.not_full.notify_one();
                        return Ok(item);
                    }
                    if inner.closed {
                        return Err(Closed);
                    }
                    self.not_empty.wait(&mut inner);
                }
            }
            Flavor::Spsc(ring) => self.spsc_pop(ring),
        }
    }

    /// Blocking batched pop: wait for at least one item, then drain up to
    /// `max` items into `out` under a single lock acquisition, sampling the
    /// depth gauge once for the whole batch.  A caboose terminates the
    /// batch (it is included) so callers never see items from beyond an
    /// end-of-stream marker.  Returns the number of items appended.
    pub(crate) fn pop_many(&self, max: usize, out: &mut Vec<Item>) -> Result<usize, Closed> {
        assert!(max > 0, "pop_many needs a positive batch size");
        match &self.flavor {
            Flavor::Mpmc(lock) => {
                self.mpmc_spin_until_nonempty();
                let mut inner = lock.lock();
                loop {
                    if !inner.items.is_empty() {
                        let mut n = 0;
                        while n < max {
                            match inner.items.pop_front() {
                                Some(item) => {
                                    let stop = matches!(item, Item::Caboose(_));
                                    out.push(item);
                                    n += 1;
                                    if stop {
                                        break;
                                    }
                                }
                                None => break,
                            }
                        }
                        let depth = inner.items.len();
                        self.depth_hint.store(depth, Ordering::Relaxed);
                        drop(inner);
                        self.sample_depth(depth);
                        if n > 1 {
                            self.not_full.notify_all();
                        } else {
                            self.not_full.notify_one();
                        }
                        return Ok(n);
                    }
                    if inner.closed {
                        return Err(Closed);
                    }
                    self.not_empty.wait(&mut inner);
                }
            }
            Flavor::Spsc(ring) => {
                let first = self.spsc_pop_raw(ring)?;
                let mut stop = matches!(first, Item::Caboose(_));
                out.push(first);
                let mut n = 1;
                while n < max && !stop {
                    match self.spsc_try_pop(ring) {
                        Some(item) => {
                            stop = matches!(item, Item::Caboose(_));
                            out.push(item);
                            n += 1;
                        }
                        None => break,
                    }
                }
                self.after_spsc_pop(ring);
                Ok(n)
            }
        }
    }

    /// Close the queue and wake all waiters.  Idempotent.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        if let Flavor::Mpmc(lock) = &self.flavor {
            let mut inner = lock.lock();
            inner.closed = true;
            drop(inner);
            self.not_empty.notify_all();
            self.not_full.notify_all();
        } else {
            // Take the parking lock so a consumer/producer that re-checked
            // just before waiting cannot miss this wakeup.
            let _guard = self.park.lock();
            self.not_empty.notify_all();
            self.not_full.notify_all();
        }
    }

    /// Number of items currently queued (for tests/diagnostics).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        match &self.flavor {
            Flavor::Mpmc(lock) => lock.lock().items.len(),
            Flavor::Spsc(ring) => {
                (ring.tail.load(Ordering::SeqCst) - ring.head.load(Ordering::SeqCst)) as usize
            }
        }
    }

    /// Bounded spin while the MPMC queue looks empty, so a consumer that is
    /// about to be fed avoids the lock + park round trip.
    fn mpmc_spin_until_nonempty(&self) {
        if self.depth_hint.load(Ordering::Relaxed) == 0 {
            for _ in 0..spin_limit() {
                if self.depth_hint.load(Ordering::Relaxed) != 0
                    || self.closed.load(Ordering::Relaxed)
                {
                    break;
                }
                std::hint::spin_loop();
            }
        }
    }

    // --- SPSC flavor internals -------------------------------------------
    //
    // Producer and consumer coordinate through `head`/`tail` alone; the
    // parking slow path uses the sleeper counters with sequentially
    // consistent ordering (a Dekker-style handshake): a waiter publishes
    // its intent (sleeper count), then re-checks the condition under the
    // park lock; the peer makes the condition true, then checks the
    // sleeper count and notifies under the same lock.  At least one side
    // always observes the other, so no wakeup is lost.

    /// Attempt the ring push; returns the item back when the ring is full.
    fn spsc_try_push(&self, ring: &Ring, item: Item) -> Result<(), Item> {
        let tail = ring.tail.load(Ordering::SeqCst);
        let head = ring.head.load(Ordering::SeqCst);
        if (tail - head) as usize >= self.capacity {
            return Err(item);
        }
        let slot = &ring.slots[(tail % self.capacity as u64) as usize];
        let prev = slot.lock().replace(item);
        debug_assert!(prev.is_none(), "spsc slot overwritten");
        ring.tail.store(tail + 1, Ordering::SeqCst);
        let depth = (tail + 1 - head) as usize;
        self.record_depth(depth);
        Ok(())
    }

    /// Post-push bookkeeping: sample the gauge and wake a parked consumer.
    fn after_spsc_push(&self, ring: &Ring) {
        let depth = ring.tail.load(Ordering::SeqCst) - ring.head.load(Ordering::SeqCst);
        self.sample_depth(depth as usize);
        if self.pop_sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock();
            self.not_empty.notify_all();
        }
    }

    fn spsc_push(&self, ring: &Ring, mut item: Item) -> Result<(), (Item, Closed)> {
        // The push attempt itself lives in the spin loop, so even with a
        // zero spin limit each pass must try (then park) at least once.
        let attempts = spin_limit().max(1);
        loop {
            for _ in 0..attempts {
                if self.closed.load(Ordering::SeqCst) {
                    return Err((item, Closed));
                }
                match self.spsc_try_push(ring, item) {
                    Ok(()) => {
                        self.after_spsc_push(ring);
                        return Ok(());
                    }
                    Err(back) => item = back,
                }
                std::hint::spin_loop();
            }
            // Park until the consumer frees a slot or the queue closes.
            self.push_sleepers.fetch_add(1, Ordering::SeqCst);
            {
                let mut guard = self.park.lock();
                while self.spsc_full(ring) && !self.closed.load(Ordering::SeqCst) {
                    self.not_full.wait(&mut guard);
                }
            }
            self.push_sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn spsc_full(&self, ring: &Ring) -> bool {
        let tail = ring.tail.load(Ordering::SeqCst);
        let head = ring.head.load(Ordering::SeqCst);
        (tail - head) as usize >= self.capacity
    }

    /// Attempt the ring pop; pure ring operation with no gauge or wakeups
    /// (batched pops amortize those via [`Queue::after_spsc_pop`]).
    fn spsc_try_pop(&self, ring: &Ring) -> Option<Item> {
        let head = ring.head.load(Ordering::SeqCst);
        let tail = ring.tail.load(Ordering::SeqCst);
        if head == tail {
            return None;
        }
        let slot = &ring.slots[(head % self.capacity as u64) as usize];
        let item = slot.lock().take().expect("spsc slot unexpectedly empty");
        ring.head.store(head + 1, Ordering::SeqCst);
        self.depth_hint
            .store((tail - head - 1) as usize, Ordering::Relaxed);
        Some(item)
    }

    /// Post-pop bookkeeping: sample the gauge and wake a parked producer.
    fn after_spsc_pop(&self, ring: &Ring) {
        let depth = ring.tail.load(Ordering::SeqCst) - ring.head.load(Ordering::SeqCst);
        self.sample_depth(depth as usize);
        if self.push_sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock();
            self.not_full.notify_all();
        }
    }

    /// Blocking single pop on the ring, without the gauge/wake epilogue.
    fn spsc_pop_raw(&self, ring: &Ring) -> Result<Item, Closed> {
        // As in `spsc_push`: at least one pop attempt per pass.
        let attempts = spin_limit().max(1);
        loop {
            for _ in 0..attempts {
                if let Some(item) = self.spsc_try_pop(ring) {
                    return Ok(item);
                }
                if self.closed.load(Ordering::SeqCst) {
                    // Drain any item pushed before the close landed.
                    return self.spsc_try_pop(ring).ok_or(Closed);
                }
                std::hint::spin_loop();
            }
            // Park until the producer pushes or the queue closes.
            self.pop_sleepers.fetch_add(1, Ordering::SeqCst);
            {
                let mut guard = self.park.lock();
                while self.spsc_empty(ring) && !self.closed.load(Ordering::SeqCst) {
                    self.not_empty.wait(&mut guard);
                }
            }
            self.pop_sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn spsc_empty(&self, ring: &Ring) -> bool {
        ring.head.load(Ordering::SeqCst) == ring.tail.load(Ordering::SeqCst)
    }

    fn spsc_pop(&self, ring: &Ring) -> Result<Item, Closed> {
        let item = self.spsc_pop_raw(ring)?;
        self.after_spsc_pop(ring);
        Ok(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn buf_item(pipeline: u32, tag: u64) -> Item {
        let mut b = Buffer::new(8, PipelineId(pipeline));
        b.meta = tag;
        Item::Buf(b)
    }

    fn tag_of(item: &Item) -> u64 {
        match item {
            Item::Buf(b) => b.meta,
            Item::Caboose(_) => u64::MAX,
        }
    }

    /// Run a closure against both queue flavors.
    fn for_both(f: impl Fn(Arc<Queue>)) {
        f(Queue::new("mpmc", 4));
        f(Queue::spsc_with_gauge("spsc", 4, None));
    }

    fn both_cap1(f: impl Fn(Arc<Queue>)) {
        f(Queue::new("mpmc", 1));
        f(Queue::spsc_with_gauge("spsc", 1, None));
    }

    #[test]
    fn fifo_order() {
        for_both(|q| {
            for i in 0..4 {
                q.push(buf_item(0, i)).unwrap();
            }
            for i in 0..4 {
                assert_eq!(tag_of(&q.pop().unwrap()), i);
            }
        });
    }

    #[test]
    fn push_blocks_until_pop() {
        both_cap1(|q| {
            q.push(buf_item(0, 0)).unwrap();
            let q2 = Arc::clone(&q);
            let h = thread::spawn(move || q2.push(buf_item(0, 1)).is_ok());
            thread::sleep(Duration::from_millis(20));
            assert_eq!(q.len(), 1, "second push must still be blocked");
            assert_eq!(tag_of(&q.pop().unwrap()), 0);
            assert!(h.join().unwrap());
            assert_eq!(tag_of(&q.pop().unwrap()), 1);
        });
    }

    #[test]
    fn pop_blocks_until_push() {
        both_cap1(|q| {
            let q2 = Arc::clone(&q);
            let h = thread::spawn(move || tag_of(&q2.pop().unwrap()));
            thread::sleep(Duration::from_millis(20));
            q.push(buf_item(0, 9)).unwrap();
            assert_eq!(h.join().unwrap(), 9);
        });
    }

    #[test]
    fn close_wakes_poppers() {
        both_cap1(|q| {
            let q2 = Arc::clone(&q);
            let h = thread::spawn(move || q2.pop().is_err());
            thread::sleep(Duration::from_millis(20));
            q.close();
            assert!(h.join().unwrap());
        });
    }

    #[test]
    fn close_wakes_pushers() {
        both_cap1(|q| {
            q.push(buf_item(0, 0)).unwrap();
            let q2 = Arc::clone(&q);
            let h = thread::spawn(move || q2.push(buf_item(0, 1)).is_err());
            thread::sleep(Duration::from_millis(20));
            q.close();
            assert!(h.join().unwrap());
        });
    }

    #[test]
    fn close_drains_then_fails() {
        for_both(|q| {
            q.push(buf_item(0, 1)).unwrap();
            q.push(buf_item(0, 2)).unwrap();
            q.close();
            assert_eq!(tag_of(&q.pop().unwrap()), 1);
            assert_eq!(tag_of(&q.pop().unwrap()), 2);
            assert!(q.pop().is_err());
            assert!(q.push(buf_item(0, 3)).is_err());
        });
    }

    #[test]
    fn try_push_respects_capacity_and_close() {
        both_cap1(|q| {
            assert!(q.try_push(buf_item(0, 0)).is_ok());
            assert!(q.try_push(buf_item(0, 1)).is_err());
        });
        both_cap1(|q| {
            q.close();
            assert!(q.try_push(buf_item(0, 0)).is_err());
        });
    }

    #[test]
    fn max_depth_tracks_high_water_mark() {
        for_both(|q| {
            assert_eq!(q.max_depth(), 0);
            q.push(buf_item(0, 0)).unwrap();
            q.push(buf_item(0, 1)).unwrap();
            q.pop().unwrap();
            q.push(buf_item(0, 2)).unwrap();
            // Depth peaked at 2 even though it dipped to 1 in between.
            assert_eq!(q.max_depth(), 2);
            assert_eq!(q.capacity(), 4);
        });
    }

    #[test]
    fn gauge_samples_depth_on_push_and_pop() {
        let g = Arc::new(crate::metrics::Gauge::new());
        let q = Queue::with_gauge("t", 4, Some(Arc::clone(&g)));
        q.push(buf_item(0, 0)).unwrap();
        q.push(buf_item(0, 1)).unwrap();
        assert_eq!(g.get(), 2);
        q.pop().unwrap();
        assert_eq!(g.get(), 1);
        assert_eq!(g.peak(), 2);
    }

    #[test]
    fn gauge_samples_once_per_batched_pop() {
        let g = Arc::new(crate::metrics::Gauge::new());
        let q = Queue::spsc_with_gauge("t", 8, Some(Arc::clone(&g)));
        for i in 0..6 {
            q.push(buf_item(0, i)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_many(4, &mut out).unwrap(), 4);
        // One sample for the whole batch: the gauge holds the post-batch
        // depth, never the intermediate 5/4/3.
        assert_eq!(g.get(), 2);
        assert_eq!(out.len(), 4);
        assert_eq!(q.max_depth(), 6);
    }

    #[test]
    fn pop_many_drains_fifo_and_stops_at_caboose() {
        for_both(|q| {
            q.push(buf_item(1, 10)).unwrap();
            q.push(buf_item(1, 11)).unwrap();
            q.push(Item::Caboose(PipelineId(1))).unwrap();
            let mut out = Vec::new();
            let n = q.pop_many(8, &mut out).unwrap();
            // The caboose ends the batch even though `max` wasn't reached.
            assert_eq!(n, 3);
            assert_eq!(tag_of(&out[0]), 10);
            assert_eq!(tag_of(&out[1]), 11);
            assert!(matches!(out[2], Item::Caboose(PipelineId(1))));
        });
    }

    #[test]
    fn pop_many_respects_max() {
        for_both(|q| {
            for i in 0..4 {
                q.push(buf_item(0, i)).unwrap();
            }
            let mut out = Vec::new();
            assert_eq!(q.pop_many(3, &mut out).unwrap(), 3);
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop_many(3, &mut out).unwrap(), 1);
            assert_eq!(out.len(), 4);
        });
    }

    #[test]
    fn pop_many_blocks_then_returns_batch() {
        for_both(|q| {
            let q2 = Arc::clone(&q);
            let h = thread::spawn(move || {
                let mut out = Vec::new();
                let n = q2.pop_many(8, &mut out).unwrap();
                (n, out.iter().map(tag_of).collect::<Vec<_>>())
            });
            thread::sleep(Duration::from_millis(20));
            q.push(buf_item(0, 7)).unwrap();
            let (n, tags) = h.join().unwrap();
            assert!(n >= 1);
            assert_eq!(tags[0], 7);
        });
    }

    #[test]
    fn pop_many_wakes_blocked_pushers() {
        both_cap1(|q| {
            q.push(buf_item(0, 0)).unwrap();
            let q2 = Arc::clone(&q);
            let h = thread::spawn(move || q2.push(buf_item(0, 1)).is_ok());
            thread::sleep(Duration::from_millis(20));
            let mut out = Vec::new();
            assert_eq!(q.pop_many(4, &mut out).unwrap(), 1);
            assert!(h.join().unwrap());
        });
    }

    #[test]
    fn pop_many_fails_after_close_and_drain() {
        for_both(|q| {
            q.push(buf_item(0, 1)).unwrap();
            q.close();
            let mut out = Vec::new();
            assert_eq!(q.pop_many(4, &mut out).unwrap(), 1);
            assert!(q.pop_many(4, &mut out).is_err());
        });
    }

    #[test]
    fn caboose_travels_like_data() {
        for_both(|q| {
            q.push(buf_item(3, 5)).unwrap();
            q.push(Item::Caboose(PipelineId(3))).unwrap();
            assert!(matches!(q.pop().unwrap(), Item::Buf(_)));
            match q.pop().unwrap() {
                Item::Caboose(p) => assert_eq!(p, PipelineId(3)),
                other => panic!("expected caboose, got {other:?}"),
            }
        });
    }

    #[test]
    fn spsc_flavor_is_reported() {
        assert!(!Queue::new("m", 2).is_spsc());
        assert!(Queue::spsc_with_gauge("s", 2, None).is_spsc());
    }

    #[test]
    fn spsc_stress_preserves_order_across_wraparound() {
        let q = Queue::spsc_with_gauge("s", 3, None);
        let q2 = Arc::clone(&q);
        const N: u64 = 10_000;
        let producer = thread::spawn(move || {
            for i in 0..N {
                q2.push(buf_item(0, i)).unwrap();
            }
        });
        for i in 0..N {
            assert_eq!(tag_of(&q.pop().unwrap()), i);
        }
        producer.join().unwrap();
    }

    #[test]
    fn spsc_batched_consumer_sees_every_item_in_order() {
        let q = Queue::spsc_with_gauge("s", 4, None);
        let q2 = Arc::clone(&q);
        const N: u64 = 10_000;
        let producer = thread::spawn(move || {
            for i in 0..N {
                q2.push(buf_item(0, i)).unwrap();
            }
            q2.close();
        });
        let mut seen = Vec::new();
        let mut out = Vec::new();
        while let Ok(n) = q.pop_many(8, &mut out) {
            assert!(n > 0);
            seen.extend(out.drain(..).map(|i| tag_of(&i)));
        }
        producer.join().unwrap();
        let expect: Vec<u64> = (0..N).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn mpmc_stress_preserves_item_count() {
        let q = Queue::new("t", 8);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100 {
                        q.push(buf_item(0, (p * 100 + i) as u64)).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..100 {
                        got.push(tag_of(&q.pop().unwrap()));
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..400).collect();
        assert_eq!(all, expect);
    }
}
