//! Bounded blocking queues of buffers.
//!
//! FG places a queue between every pair of consecutive pipeline stages.  A
//! stage *conveys* a buffer by pushing into its downstream queue and
//! *accepts* by popping from its upstream queue; an empty upstream queue
//! blocks the accepting stage's thread, which is exactly how FG yields the
//! CPU to other stages while a high-latency operation is pending elsewhere.
//!
//! Queues are multi-producer multi-consumer because *virtual* stages share a
//! single queue among many pipelines, and several stages may discard buffers
//! into the same recycle queue.  Three flavors share one API: a
//! mutex-guarded deque (the conservative baseline and property-test
//! oracle), a bounded lock-free MPMC ring with per-slot sequence numbers
//! (Vyukov-style; the planner's default for farm inputs, recycle and sink
//! queues, and virtual shared inputs), and — when the planner can prove a
//! queue has exactly one producer and one consumer thread (a plain
//! stage-to-stage link with no replication on either side) — a lock-free
//! SPSC ring.
//!
//! Waiting is *spin-then-park*: a blocked thread first spins a few hundred
//! iterations (the common case when the peer stage is about to act) and only
//! then takes the slow path of parking on a condvar.
//!
//! A queue can be *closed*; closing wakes every blocked thread — parked or
//! spinning.  Pushes to a closed queue fail immediately, pops drain whatever
//! is left and then fail.  The runtime closes all queues of a program when a
//! stage fails, which unblocks every thread for shutdown.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::buffer::{Buffer, PipelineId};
use crate::metrics::{Counter, Gauge};

/// Iterations a blocked push/pop spins before parking on a condvar.  Zero
/// on a single-core host: there the peer stage cannot make progress while
/// we spin, so the spin phase only burns the time slice the peer needs.
///
/// The `FG_SPIN` environment variable overrides the heuristic (bench runs
/// sweep spin budgets without recompiling); it is read once and cached.
fn spin_limit() -> usize {
    static LIMIT: AtomicUsize = AtomicUsize::new(usize::MAX);
    let cached = LIMIT.load(Ordering::Relaxed);
    if cached != usize::MAX {
        return cached;
    }
    let limit = match std::env::var("FG_SPIN").ok().and_then(|v| v.parse().ok()) {
        // usize::MAX is the "not yet computed" sentinel; clamp under it.
        Some(n) => std::cmp::min(n, usize::MAX - 1),
        None => {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            if cores > 1 {
                256
            } else {
                0
            }
        }
    };
    LIMIT.store(limit, Ordering::Relaxed);
    limit
}

/// What travels through a queue: a buffer, or the end-of-stream marker for
/// one pipeline (FG's *caboose*).
#[derive(Debug)]
pub(crate) enum Item {
    /// A data buffer.
    Buf(Buffer),
    /// End of pipeline `PipelineId`'s stream.  Exactly one caboose per
    /// pipeline flows through each queue on that pipeline's path.
    Caboose(PipelineId),
}

/// Error returned by queue operations once the queue is closed.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Closed;

struct Inner {
    items: VecDeque<Item>,
    closed: bool,
}

/// Single-producer single-consumer ring: one `Option<Item>` slot per
/// capacity entry, with monotonically increasing head/tail indices.  The
/// per-slot mutexes are never contended (producer and consumer touch
/// disjoint slots) — they exist only to move `Item`s in and out without
/// `unsafe`.
struct Ring {
    slots: Vec<Mutex<Option<Item>>>,
    /// Next slot the consumer will take.  Only the consumer stores.
    head: AtomicU64,
    /// Next slot the producer will fill.  Only the producer stores.
    tail: AtomicU64,
}

/// One slot of the lock-free MPMC ring: a sequence number plus the item.
///
/// The sequence number carries the Vyukov protocol: it equals the slot's
/// position when the slot is free for the producer claiming that position,
/// position + 1 once the item is published, and position + capacity once
/// the consumer has released the slot for the next lap.  As in the SPSC
/// ring, the per-slot mutex is uncontended by construction — the position
/// CAS grants exclusive access — and exists only to move `Item`s without
/// `unsafe`.
struct LfSlot {
    seq: AtomicU64,
    val: Mutex<Option<Item>>,
}

/// Bounded lock-free MPMC ring (Vyukov-style): producers claim positions
/// by CAS on `tail`, consumers by CAS on `head`; the per-slot sequence
/// numbers publish item visibility, so no operation ever holds a lock
/// across the queue.
struct LfRing {
    slots: Vec<LfSlot>,
    /// Next position a consumer will claim.
    head: AtomicU64,
    /// Next position a producer will claim.
    tail: AtomicU64,
}

enum Flavor {
    /// General case: a mutex-protected deque, usable from any number of
    /// producer and consumer threads.
    Mpmc(Mutex<Inner>),
    /// Lock-free fast path for the same MPMC contract: a bounded ring with
    /// per-slot sequence numbers, usable from any number of producer and
    /// consumer threads.
    LockFree(LfRing),
    /// Fast path: a lock-free ring, valid only with exactly one producer
    /// thread and one consumer thread.
    Spsc(Ring),
}

/// Which queue implementation to build; the planner picks per queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlavorKind {
    /// Mutex-guarded deque (the conservative MPMC baseline and the oracle
    /// the lock-free flavor is property-tested against).
    Mutex,
    /// Lock-free MPMC ring.
    LockFree,
    /// SPSC ring; caller promises one producer and one consumer thread.
    Spsc,
}

/// Registry-backed contention counters for one queue, present only when
/// the program runs with a metrics registry attached.  The queue also
/// keeps always-on local atomics (see [`Queue::cas_retries`]) so tests and
/// post-mortems can read contention without a registry.
pub(crate) struct QueueMetrics {
    /// `core/queue_cas_retries/<queue>`: failed position CASes (lock-free
    /// flavor only; a proxy for producer/consumer collision rate).
    pub(crate) cas_retries: Arc<Counter>,
    /// `core/queue_push_parks/<queue>`: producer condvar waits.
    pub(crate) push_parks: Arc<Counter>,
    /// `core/queue_pop_parks/<queue>`: consumer condvar waits.
    pub(crate) pop_parks: Arc<Counter>,
    /// `core/queue_wakes/<queue>`: slow-path notifications issued because a
    /// peer had advertised itself parked (non-mutex flavors).
    pub(crate) wakes: Arc<Counter>,
    /// `core/queue_items/<queue>`: successful pushes — the denominator
    /// that turns raw CAS-retry counts into a per-item collision rate.
    pub(crate) items: Arc<Counter>,
}

/// Always-on local contention counters (relaxed atomics; negligible cost).
#[derive(Default)]
struct ContentionStats {
    cas_retries: AtomicU64,
    push_parks: AtomicU64,
    pop_parks: AtomicU64,
    wakes: AtomicU64,
    items: AtomicU64,
}

/// A bounded blocking queue of [`Item`]s.
pub(crate) struct Queue {
    flavor: Flavor,
    /// Authoritative closed flag for the SPSC flavor; a racy hint for the
    /// MPMC spin phase (MPMC keeps the authoritative flag under its lock).
    closed: AtomicBool,
    /// Approximate current depth, maintained so blocked threads can spin on
    /// it without taking the lock.
    depth_hint: AtomicUsize,
    /// High-water mark of the queue's depth over its lifetime.
    max_depth: AtomicUsize,
    /// Parking lot for the SPSC flavor's slow path.  (The MPMC flavor parks
    /// on its own inner mutex instead.)
    park: Mutex<()>,
    /// Number of consumers parked (or about to park) on `not_empty`; the
    /// producer only takes `park` to notify when this is non-zero.
    pop_sleepers: AtomicUsize,
    /// Number of producers parked (or about to park) on `not_full`.
    push_sleepers: AtomicUsize,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    name: String,
    /// Depth gauge sampled once per push/pop/batch, present only when the
    /// program runs with a metrics registry attached.
    gauge: Option<Arc<Gauge>>,
    /// Always-on local contention counters.
    contention: ContentionStats,
    /// Registry mirrors of the contention counters (when attached).
    metrics: Option<QueueMetrics>,
}

impl Queue {
    /// Create an MPMC queue holding at most `capacity` items.
    pub(crate) fn new(name: impl Into<String>, capacity: usize) -> Arc<Self> {
        Self::with_gauge(name, capacity, None)
    }

    /// Create an MPMC queue that additionally samples its depth into `gauge`.
    pub(crate) fn with_gauge(
        name: impl Into<String>,
        capacity: usize,
        gauge: Option<Arc<Gauge>>,
    ) -> Arc<Self> {
        Self::flavored(name, capacity, FlavorKind::Mutex, gauge, None)
    }

    /// Create a lock-free MPMC queue (bench/test convenience).
    #[allow(dead_code)] // exercised via qbench and unit tests
    pub(crate) fn lock_free(name: impl Into<String>, capacity: usize) -> Arc<Self> {
        Self::flavored(name, capacity, FlavorKind::LockFree, None, None)
    }

    /// Create an SPSC queue.  The caller promises that at most one thread
    /// ever pushes and at most one thread ever pops (`close` may still be
    /// called from anywhere).
    pub(crate) fn spsc_with_gauge(
        name: impl Into<String>,
        capacity: usize,
        gauge: Option<Arc<Gauge>>,
    ) -> Arc<Self> {
        Self::flavored(name, capacity, FlavorKind::Spsc, gauge, None)
    }

    /// Create a queue of the given flavor with optional depth gauge and
    /// contention counters.  The planner's one construction point.
    pub(crate) fn flavored(
        name: impl Into<String>,
        capacity: usize,
        kind: FlavorKind,
        gauge: Option<Arc<Gauge>>,
        metrics: Option<QueueMetrics>,
    ) -> Arc<Self> {
        assert!(capacity > 0, "queue capacity must be positive");
        // Vyukov's bounded MPMC algorithm requires capacity >= 2: at
        // `cap == 1` the publish value of lap n (`pos + 1`) collides with
        // the free value of lap n+1, and no head-based pre-check can
        // close the race against a consumer that has claimed the slot
        // (head CAS won) but not yet released it (seq store pending).
        // Degenerate capacity-1 requests fall back to the mutex flavor,
        // which carries no precondition.
        let kind = if kind == FlavorKind::LockFree && capacity < 2 {
            FlavorKind::Mutex
        } else {
            kind
        };
        let flavor = match kind {
            FlavorKind::Mutex => Flavor::Mpmc(Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            })),
            FlavorKind::LockFree => Flavor::LockFree(LfRing {
                slots: (0..capacity)
                    .map(|i| LfSlot {
                        seq: AtomicU64::new(i as u64),
                        val: Mutex::new(None),
                    })
                    .collect(),
                head: AtomicU64::new(0),
                tail: AtomicU64::new(0),
            }),
            FlavorKind::Spsc => Flavor::Spsc(Ring {
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
                head: AtomicU64::new(0),
                tail: AtomicU64::new(0),
            }),
        };
        Arc::new(Queue {
            flavor,
            closed: AtomicBool::new(false),
            depth_hint: AtomicUsize::new(0),
            max_depth: AtomicUsize::new(0),
            park: Mutex::new(()),
            pop_sleepers: AtomicUsize::new(0),
            push_sleepers: AtomicUsize::new(0),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            name: name.into(),
            gauge,
            contention: ContentionStats::default(),
            metrics,
        })
    }

    /// Debug name of this queue.
    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    /// Maximum number of items this queue can hold.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether this queue uses the single-producer single-consumer ring.
    pub(crate) fn is_spsc(&self) -> bool {
        matches!(self.flavor, Flavor::Spsc(_))
    }

    /// Stable label of this queue's flavor (reports, dashboards, JSON).
    pub(crate) fn flavor_label(&self) -> &'static str {
        match self.flavor {
            Flavor::Mpmc(_) => "mutex",
            Flavor::LockFree(_) => "lockfree",
            Flavor::Spsc(_) => "spsc",
        }
    }

    /// Failed position CASes over the queue's lifetime (lock-free flavor;
    /// always zero for the others).
    pub(crate) fn cas_retries(&self) -> u64 {
        self.contention.cas_retries.load(Ordering::Relaxed)
    }

    /// Producer and consumer condvar waits over the queue's lifetime.
    #[cfg(test)]
    pub(crate) fn parks(&self) -> (u64, u64) {
        (
            self.contention.push_parks.load(Ordering::Relaxed),
            self.contention.pop_parks.load(Ordering::Relaxed),
        )
    }

    fn note_cas_retries(&self, n: u64) {
        self.contention.cas_retries.fetch_add(n, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.cas_retries.add(n);
        }
    }

    fn note_push_park(&self) {
        self.contention.push_parks.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.push_parks.inc();
        }
    }

    fn note_pop_park(&self) {
        self.contention.pop_parks.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.pop_parks.inc();
        }
    }

    fn note_wake(&self) {
        self.contention.wakes.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.wakes.inc();
        }
    }

    fn note_item(&self) {
        self.contention.items.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.items.inc();
        }
    }

    /// High-water mark of the queue's depth over its lifetime.
    pub(crate) fn max_depth(&self) -> usize {
        self.max_depth.load(Ordering::Relaxed)
    }

    /// Approximate current depth, readable from any thread without taking
    /// the queue lock (watchdog post-mortems).
    pub(crate) fn depth(&self) -> usize {
        self.depth_hint.load(Ordering::Relaxed)
    }

    fn record_depth(&self, depth: usize) {
        self.depth_hint.store(depth, Ordering::Relaxed);
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    fn sample_depth(&self, depth: usize) {
        if let Some(g) = &self.gauge {
            g.set(depth as u64);
        }
    }

    /// Blocking push.  Fails (returning the item) once the queue is closed.
    pub(crate) fn push(&self, item: Item) -> Result<(), (Item, Closed)> {
        match &self.flavor {
            Flavor::Mpmc(lock) => {
                // Spin while the queue looks full: the consumer usually
                // frees a slot within a few hundred iterations.
                if self.depth_hint.load(Ordering::Relaxed) >= self.capacity {
                    for _ in 0..spin_limit() {
                        if self.depth_hint.load(Ordering::Relaxed) < self.capacity
                            || self.closed.load(Ordering::Relaxed)
                        {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
                let mut inner = lock.lock();
                while inner.items.len() >= self.capacity && !inner.closed {
                    self.note_push_park();
                    self.not_full.wait(&mut inner);
                }
                if inner.closed {
                    return Err((item, Closed));
                }
                inner.items.push_back(item);
                let depth = inner.items.len();
                self.record_depth(depth);
                drop(inner);
                self.sample_depth(depth);
                self.note_item();
                self.not_empty.notify_one();
                Ok(())
            }
            Flavor::LockFree(ring) => self.lf_push(ring, item),
            Flavor::Spsc(ring) => self.spsc_push(ring, item),
        }
    }

    /// Non-blocking push used by shutdown paths; drops nothing silently —
    /// the item comes back on failure.
    pub(crate) fn try_push(&self, item: Item) -> Result<(), (Item, Closed)> {
        match &self.flavor {
            Flavor::Mpmc(lock) => {
                let mut inner = lock.lock();
                if inner.closed || inner.items.len() >= self.capacity {
                    return Err((item, Closed));
                }
                inner.items.push_back(item);
                let depth = inner.items.len();
                self.record_depth(depth);
                drop(inner);
                self.sample_depth(depth);
                self.note_item();
                self.not_empty.notify_one();
                Ok(())
            }
            Flavor::LockFree(ring) => {
                if self.closed.load(Ordering::SeqCst) {
                    return Err((item, Closed));
                }
                match self.lf_try_push(ring, item) {
                    Ok(()) => {
                        self.note_item();
                        self.after_lf_push(ring);
                        Ok(())
                    }
                    Err(item) => Err((item, Closed)),
                }
            }
            Flavor::Spsc(ring) => {
                if self.closed.load(Ordering::SeqCst) {
                    return Err((item, Closed));
                }
                match self.spsc_try_push(ring, item) {
                    Ok(()) => {
                        self.note_item();
                        self.after_spsc_push(ring);
                        Ok(())
                    }
                    Err(item) => Err((item, Closed)),
                }
            }
        }
    }

    /// Blocking pop.  After close, drains remaining items, then fails.
    pub(crate) fn pop(&self) -> Result<Item, Closed> {
        match &self.flavor {
            Flavor::Mpmc(lock) => {
                self.mpmc_spin_until_nonempty();
                let mut inner = lock.lock();
                loop {
                    if let Some(item) = inner.items.pop_front() {
                        let depth = inner.items.len();
                        self.depth_hint.store(depth, Ordering::Relaxed);
                        drop(inner);
                        self.sample_depth(depth);
                        self.not_full.notify_one();
                        return Ok(item);
                    }
                    if inner.closed {
                        return Err(Closed);
                    }
                    self.note_pop_park();
                    self.not_empty.wait(&mut inner);
                }
            }
            Flavor::LockFree(ring) => self.lf_pop(ring),
            Flavor::Spsc(ring) => self.spsc_pop(ring),
        }
    }

    /// Blocking batched pop: wait for at least one item, then drain up to
    /// `max` items into `out` under a single lock acquisition, sampling the
    /// depth gauge once for the whole batch.  A caboose terminates the
    /// batch (it is included) so callers never see items from beyond an
    /// end-of-stream marker.  Returns the number of items appended.
    pub(crate) fn pop_many(&self, max: usize, out: &mut Vec<Item>) -> Result<usize, Closed> {
        assert!(max > 0, "pop_many needs a positive batch size");
        match &self.flavor {
            Flavor::Mpmc(lock) => {
                self.mpmc_spin_until_nonempty();
                let mut inner = lock.lock();
                loop {
                    if !inner.items.is_empty() {
                        let mut n = 0;
                        while n < max {
                            match inner.items.pop_front() {
                                Some(item) => {
                                    let stop = matches!(item, Item::Caboose(_));
                                    out.push(item);
                                    n += 1;
                                    if stop {
                                        break;
                                    }
                                }
                                None => break,
                            }
                        }
                        let depth = inner.items.len();
                        self.depth_hint.store(depth, Ordering::Relaxed);
                        drop(inner);
                        self.sample_depth(depth);
                        if n > 1 {
                            self.not_full.notify_all();
                        } else {
                            self.not_full.notify_one();
                        }
                        return Ok(n);
                    }
                    if inner.closed {
                        return Err(Closed);
                    }
                    self.note_pop_park();
                    self.not_empty.wait(&mut inner);
                }
            }
            Flavor::LockFree(ring) => {
                let first = self.lf_pop_raw(ring)?;
                let mut stop = matches!(first, Item::Caboose(_));
                out.push(first);
                let mut n = 1;
                while n < max && !stop {
                    match self.lf_try_pop(ring) {
                        Some(item) => {
                            stop = matches!(item, Item::Caboose(_));
                            out.push(item);
                            n += 1;
                        }
                        None => break,
                    }
                }
                self.after_lf_pop(ring);
                Ok(n)
            }
            Flavor::Spsc(ring) => {
                let first = self.spsc_pop_raw(ring)?;
                let mut stop = matches!(first, Item::Caboose(_));
                out.push(first);
                let mut n = 1;
                while n < max && !stop {
                    match self.spsc_try_pop(ring) {
                        Some(item) => {
                            stop = matches!(item, Item::Caboose(_));
                            out.push(item);
                            n += 1;
                        }
                        None => break,
                    }
                }
                self.after_spsc_pop(ring);
                Ok(n)
            }
        }
    }

    /// Close the queue and wake all waiters.  Idempotent.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        if let Flavor::Mpmc(lock) = &self.flavor {
            let mut inner = lock.lock();
            inner.closed = true;
            drop(inner);
            self.not_empty.notify_all();
            self.not_full.notify_all();
        } else {
            // Take the parking lock so a consumer/producer that re-checked
            // just before waiting cannot miss this wakeup.
            let _guard = self.park.lock();
            self.not_empty.notify_all();
            self.not_full.notify_all();
        }
    }

    /// Number of items currently queued (for tests/diagnostics).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        match &self.flavor {
            Flavor::Mpmc(lock) => lock.lock().items.len(),
            Flavor::LockFree(ring) => {
                ring.tail
                    .load(Ordering::SeqCst)
                    .saturating_sub(ring.head.load(Ordering::SeqCst)) as usize
            }
            Flavor::Spsc(ring) => {
                (ring.tail.load(Ordering::SeqCst) - ring.head.load(Ordering::SeqCst)) as usize
            }
        }
    }

    /// Bounded spin while the MPMC queue looks empty, so a consumer that is
    /// about to be fed avoids the lock + park round trip.
    fn mpmc_spin_until_nonempty(&self) {
        if self.depth_hint.load(Ordering::Relaxed) == 0 {
            for _ in 0..spin_limit() {
                if self.depth_hint.load(Ordering::Relaxed) != 0
                    || self.closed.load(Ordering::Relaxed)
                {
                    break;
                }
                std::hint::spin_loop();
            }
        }
    }

    // --- Lock-free MPMC flavor internals ---------------------------------
    //
    // Vyukov's bounded MPMC algorithm: a producer claims position `p` by
    // CAS on `tail` when slot `p % cap` carries sequence `p` (free this
    // lap), writes the item, then publishes by storing sequence `p + 1`.
    // A consumer claims position `p` by CAS on `head` when the slot
    // carries `p + 1` (published), takes the item, then releases the slot
    // for the next lap by storing `p + cap`.  The algorithm requires
    // `cap >= 2` — enforced in [`Queue::flavored`], which builds the
    // mutex flavor instead for capacity-1 requests — so the sequence
    // values of consecutive laps never collide.  Every access uses `SeqCst`:
    // the park slow path reuses the SPSC flavor's Dekker-style sleeper
    // handshake, which needs a single total order between the ring
    // indices, the sleeper counters, and the closed flag.

    /// Attempt the lock-free push; returns the item back when the ring is
    /// full.  Failed position CASes are counted as contention.
    fn lf_try_push(&self, ring: &LfRing, item: Item) -> Result<(), Item> {
        let cap = self.capacity as u64;
        let mut retries = 0u64;
        let mut pos = ring.tail.load(Ordering::SeqCst);
        let result = loop {
            let slot = &ring.slots[(pos % cap) as usize];
            let seq = slot.seq.load(Ordering::SeqCst);
            if seq == pos {
                match ring.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => {
                        let prev = slot.val.lock().replace(item);
                        debug_assert!(prev.is_none(), "lock-free slot overwritten");
                        slot.seq.store(pos + 1, Ordering::SeqCst);
                        break Ok(pos);
                    }
                    Err(cur) => {
                        retries += 1;
                        pos = cur;
                    }
                }
            } else if seq < pos {
                // The consumer lap hasn't released this slot yet: full.
                break Err(item);
            } else {
                // Another producer claimed `pos` first; chase the tail.
                pos = ring.tail.load(Ordering::SeqCst);
            }
        };
        if retries > 0 {
            self.note_cas_retries(retries);
        }
        match result {
            Ok(pos) => {
                let head = ring.head.load(Ordering::SeqCst);
                self.record_depth((pos + 1).saturating_sub(head) as usize);
                Ok(())
            }
            Err(item) => Err(item),
        }
    }

    /// Attempt the lock-free pop; `None` when the ring is empty (or every
    /// published item is being claimed by another consumer).
    fn lf_try_pop(&self, ring: &LfRing) -> Option<Item> {
        let cap = self.capacity as u64;
        let mut retries = 0u64;
        let mut pos = ring.head.load(Ordering::SeqCst);
        let result = loop {
            let slot = &ring.slots[(pos % cap) as usize];
            let seq = slot.seq.load(Ordering::SeqCst);
            if seq == pos + 1 {
                match ring.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => {
                        let item = slot
                            .val
                            .lock()
                            .take()
                            .expect("lock-free slot unexpectedly empty");
                        slot.seq.store(pos + cap, Ordering::SeqCst);
                        break Some((item, pos));
                    }
                    Err(cur) => {
                        retries += 1;
                        pos = cur;
                    }
                }
            } else if seq <= pos {
                // Nothing published at this position yet: empty.
                break None;
            } else {
                // Another consumer claimed `pos` first; chase the head.
                pos = ring.head.load(Ordering::SeqCst);
            }
        };
        if retries > 0 {
            self.note_cas_retries(retries);
        }
        result.map(|(item, pos)| {
            let tail = ring.tail.load(Ordering::SeqCst);
            self.depth_hint
                .store(tail.saturating_sub(pos + 1) as usize, Ordering::Relaxed);
            item
        })
    }

    fn lf_full(&self, ring: &LfRing) -> bool {
        let tail = ring.tail.load(Ordering::SeqCst);
        let head = ring.head.load(Ordering::SeqCst);
        tail.saturating_sub(head) as usize >= self.capacity
    }

    fn lf_empty(&self, ring: &LfRing) -> bool {
        ring.tail.load(Ordering::SeqCst) <= ring.head.load(Ordering::SeqCst)
    }

    /// Post-push bookkeeping: sample the gauge and wake parked consumers.
    fn after_lf_push(&self, ring: &LfRing) {
        let depth = ring
            .tail
            .load(Ordering::SeqCst)
            .saturating_sub(ring.head.load(Ordering::SeqCst));
        self.sample_depth(depth as usize);
        if self.pop_sleepers.load(Ordering::SeqCst) > 0 {
            self.note_wake();
            let _guard = self.park.lock();
            self.not_empty.notify_all();
        }
    }

    /// Post-pop bookkeeping: sample the gauge and wake parked producers.
    fn after_lf_pop(&self, ring: &LfRing) {
        let depth = ring
            .tail
            .load(Ordering::SeqCst)
            .saturating_sub(ring.head.load(Ordering::SeqCst));
        self.sample_depth(depth as usize);
        if self.push_sleepers.load(Ordering::SeqCst) > 0 {
            self.note_wake();
            let _guard = self.park.lock();
            self.not_full.notify_all();
        }
    }

    fn lf_push(&self, ring: &LfRing, mut item: Item) -> Result<(), (Item, Closed)> {
        // As in `spsc_push`: the attempt lives in the spin loop, so even
        // with a zero spin limit each pass tries (then parks) at least once.
        let attempts = spin_limit().max(1);
        loop {
            for _ in 0..attempts {
                if self.closed.load(Ordering::SeqCst) {
                    return Err((item, Closed));
                }
                match self.lf_try_push(ring, item) {
                    Ok(()) => {
                        self.note_item();
                        self.after_lf_push(ring);
                        return Ok(());
                    }
                    Err(back) => item = back,
                }
                std::hint::spin_loop();
            }
            // Park until a consumer frees a slot or the queue closes.  The
            // predicate uses the ring indices, so a pop that is mid-claim
            // (head advanced, slot not yet released) reads as "not full"
            // and sends us back to the attempt loop rather than to sleep.
            self.push_sleepers.fetch_add(1, Ordering::SeqCst);
            {
                let mut guard = self.park.lock();
                while self.lf_full(ring) && !self.closed.load(Ordering::SeqCst) {
                    self.note_push_park();
                    self.not_full.wait(&mut guard);
                }
            }
            self.push_sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Blocking single pop on the lock-free ring, without the gauge/wake
    /// epilogue (batched pops amortize those via [`Queue::after_lf_pop`]).
    fn lf_pop_raw(&self, ring: &LfRing) -> Result<Item, Closed> {
        let attempts = spin_limit().max(1);
        loop {
            for _ in 0..attempts {
                if let Some(item) = self.lf_try_pop(ring) {
                    return Ok(item);
                }
                if self.closed.load(Ordering::SeqCst) {
                    // Drain after close: anything in the ring must still
                    // come out.  `tail > head` with nothing poppable means
                    // a producer won its tail CAS just before the close
                    // and is mid-publish (seq store pending) — wait it
                    // out rather than strand the item behind a `Closed`.
                    loop {
                        if let Some(item) = self.lf_try_pop(ring) {
                            return Ok(item);
                        }
                        if self.lf_empty(ring) {
                            return Err(Closed);
                        }
                        std::thread::yield_now();
                    }
                }
                std::hint::spin_loop();
            }
            // Park until a producer publishes or the queue closes.
            self.pop_sleepers.fetch_add(1, Ordering::SeqCst);
            {
                let mut guard = self.park.lock();
                while self.lf_empty(ring) && !self.closed.load(Ordering::SeqCst) {
                    self.note_pop_park();
                    self.not_empty.wait(&mut guard);
                }
            }
            self.pop_sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn lf_pop(&self, ring: &LfRing) -> Result<Item, Closed> {
        let item = self.lf_pop_raw(ring)?;
        self.after_lf_pop(ring);
        Ok(item)
    }

    // --- SPSC flavor internals -------------------------------------------
    //
    // Producer and consumer coordinate through `head`/`tail` alone; the
    // parking slow path uses the sleeper counters with sequentially
    // consistent ordering (a Dekker-style handshake): a waiter publishes
    // its intent (sleeper count), then re-checks the condition under the
    // park lock; the peer makes the condition true, then checks the
    // sleeper count and notifies under the same lock.  At least one side
    // always observes the other, so no wakeup is lost.

    /// Attempt the ring push; returns the item back when the ring is full.
    fn spsc_try_push(&self, ring: &Ring, item: Item) -> Result<(), Item> {
        let tail = ring.tail.load(Ordering::SeqCst);
        let head = ring.head.load(Ordering::SeqCst);
        if (tail - head) as usize >= self.capacity {
            return Err(item);
        }
        let slot = &ring.slots[(tail % self.capacity as u64) as usize];
        let prev = slot.lock().replace(item);
        debug_assert!(prev.is_none(), "spsc slot overwritten");
        ring.tail.store(tail + 1, Ordering::SeqCst);
        let depth = (tail + 1 - head) as usize;
        self.record_depth(depth);
        Ok(())
    }

    /// Post-push bookkeeping: sample the gauge and wake a parked consumer.
    fn after_spsc_push(&self, ring: &Ring) {
        let depth = ring.tail.load(Ordering::SeqCst) - ring.head.load(Ordering::SeqCst);
        self.sample_depth(depth as usize);
        if self.pop_sleepers.load(Ordering::SeqCst) > 0 {
            self.note_wake();
            let _guard = self.park.lock();
            self.not_empty.notify_all();
        }
    }

    fn spsc_push(&self, ring: &Ring, mut item: Item) -> Result<(), (Item, Closed)> {
        // The push attempt itself lives in the spin loop, so even with a
        // zero spin limit each pass must try (then park) at least once.
        let attempts = spin_limit().max(1);
        loop {
            for _ in 0..attempts {
                if self.closed.load(Ordering::SeqCst) {
                    return Err((item, Closed));
                }
                match self.spsc_try_push(ring, item) {
                    Ok(()) => {
                        self.note_item();
                        self.after_spsc_push(ring);
                        return Ok(());
                    }
                    Err(back) => item = back,
                }
                std::hint::spin_loop();
            }
            // Park until the consumer frees a slot or the queue closes.
            self.push_sleepers.fetch_add(1, Ordering::SeqCst);
            {
                let mut guard = self.park.lock();
                while self.spsc_full(ring) && !self.closed.load(Ordering::SeqCst) {
                    self.note_push_park();
                    self.not_full.wait(&mut guard);
                }
            }
            self.push_sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn spsc_full(&self, ring: &Ring) -> bool {
        let tail = ring.tail.load(Ordering::SeqCst);
        let head = ring.head.load(Ordering::SeqCst);
        (tail - head) as usize >= self.capacity
    }

    /// Attempt the ring pop; pure ring operation with no gauge or wakeups
    /// (batched pops amortize those via [`Queue::after_spsc_pop`]).
    fn spsc_try_pop(&self, ring: &Ring) -> Option<Item> {
        let head = ring.head.load(Ordering::SeqCst);
        let tail = ring.tail.load(Ordering::SeqCst);
        if head == tail {
            return None;
        }
        let slot = &ring.slots[(head % self.capacity as u64) as usize];
        let item = slot.lock().take().expect("spsc slot unexpectedly empty");
        ring.head.store(head + 1, Ordering::SeqCst);
        self.depth_hint
            .store((tail - head - 1) as usize, Ordering::Relaxed);
        Some(item)
    }

    /// Post-pop bookkeeping: sample the gauge and wake a parked producer.
    fn after_spsc_pop(&self, ring: &Ring) {
        let depth = ring.tail.load(Ordering::SeqCst) - ring.head.load(Ordering::SeqCst);
        self.sample_depth(depth as usize);
        if self.push_sleepers.load(Ordering::SeqCst) > 0 {
            self.note_wake();
            let _guard = self.park.lock();
            self.not_full.notify_all();
        }
    }

    /// Blocking single pop on the ring, without the gauge/wake epilogue.
    fn spsc_pop_raw(&self, ring: &Ring) -> Result<Item, Closed> {
        // As in `spsc_push`: at least one pop attempt per pass.
        let attempts = spin_limit().max(1);
        loop {
            for _ in 0..attempts {
                if let Some(item) = self.spsc_try_pop(ring) {
                    return Ok(item);
                }
                if self.closed.load(Ordering::SeqCst) {
                    // Drain any item pushed before the close landed.
                    return self.spsc_try_pop(ring).ok_or(Closed);
                }
                std::hint::spin_loop();
            }
            // Park until the producer pushes or the queue closes.
            self.pop_sleepers.fetch_add(1, Ordering::SeqCst);
            {
                let mut guard = self.park.lock();
                while self.spsc_empty(ring) && !self.closed.load(Ordering::SeqCst) {
                    self.note_pop_park();
                    self.not_empty.wait(&mut guard);
                }
            }
            self.pop_sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn spsc_empty(&self, ring: &Ring) -> bool {
        ring.head.load(Ordering::SeqCst) == ring.tail.load(Ordering::SeqCst)
    }

    fn spsc_pop(&self, ring: &Ring) -> Result<Item, Closed> {
        let item = self.spsc_pop_raw(ring)?;
        self.after_spsc_pop(ring);
        Ok(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn buf_item(pipeline: u32, tag: u64) -> Item {
        let mut b = Buffer::new(8, PipelineId(pipeline));
        b.meta = tag;
        Item::Buf(b)
    }

    fn tag_of(item: &Item) -> u64 {
        match item {
            Item::Buf(b) => b.meta,
            Item::Caboose(_) => u64::MAX,
        }
    }

    /// Run a closure against all three queue flavors.
    fn for_both(f: impl Fn(Arc<Queue>)) {
        f(Queue::new("mpmc", 4));
        f(Queue::lock_free("lf", 4));
        f(Queue::spsc_with_gauge("spsc", 4, None));
    }

    fn both_cap1(f: impl Fn(Arc<Queue>)) {
        f(Queue::new("mpmc", 1));
        // A cap-1 lock-free request builds the mutex fallback (the ring
        // needs two slots); included so the fallback honors the same
        // blocking contract.  Ring-flavor blocking is covered at cap >= 2
        // below and in tests/queue_flavors.rs.
        f(Queue::lock_free("lf", 1));
        f(Queue::spsc_with_gauge("spsc", 1, None));
    }

    #[test]
    fn fifo_order() {
        for_both(|q| {
            for i in 0..4 {
                q.push(buf_item(0, i)).unwrap();
            }
            for i in 0..4 {
                assert_eq!(tag_of(&q.pop().unwrap()), i);
            }
        });
    }

    #[test]
    fn push_blocks_until_pop() {
        both_cap1(|q| {
            q.push(buf_item(0, 0)).unwrap();
            let q2 = Arc::clone(&q);
            let h = thread::spawn(move || q2.push(buf_item(0, 1)).is_ok());
            thread::sleep(Duration::from_millis(20));
            assert_eq!(q.len(), 1, "second push must still be blocked");
            assert_eq!(tag_of(&q.pop().unwrap()), 0);
            assert!(h.join().unwrap());
            assert_eq!(tag_of(&q.pop().unwrap()), 1);
        });
    }

    #[test]
    fn pop_blocks_until_push() {
        both_cap1(|q| {
            let q2 = Arc::clone(&q);
            let h = thread::spawn(move || tag_of(&q2.pop().unwrap()));
            thread::sleep(Duration::from_millis(20));
            q.push(buf_item(0, 9)).unwrap();
            assert_eq!(h.join().unwrap(), 9);
        });
    }

    #[test]
    fn close_wakes_poppers() {
        both_cap1(|q| {
            let q2 = Arc::clone(&q);
            let h = thread::spawn(move || q2.pop().is_err());
            thread::sleep(Duration::from_millis(20));
            q.close();
            assert!(h.join().unwrap());
        });
    }

    #[test]
    fn close_wakes_pushers() {
        both_cap1(|q| {
            q.push(buf_item(0, 0)).unwrap();
            let q2 = Arc::clone(&q);
            let h = thread::spawn(move || q2.push(buf_item(0, 1)).is_err());
            thread::sleep(Duration::from_millis(20));
            q.close();
            assert!(h.join().unwrap());
        });
    }

    #[test]
    fn close_drains_then_fails() {
        for_both(|q| {
            q.push(buf_item(0, 1)).unwrap();
            q.push(buf_item(0, 2)).unwrap();
            q.close();
            assert_eq!(tag_of(&q.pop().unwrap()), 1);
            assert_eq!(tag_of(&q.pop().unwrap()), 2);
            assert!(q.pop().is_err());
            assert!(q.push(buf_item(0, 3)).is_err());
        });
    }

    #[test]
    fn try_push_respects_capacity_and_close() {
        both_cap1(|q| {
            assert!(q.try_push(buf_item(0, 0)).is_ok());
            assert!(q.try_push(buf_item(0, 1)).is_err());
        });
        both_cap1(|q| {
            q.close();
            assert!(q.try_push(buf_item(0, 0)).is_err());
        });
    }

    #[test]
    fn max_depth_tracks_high_water_mark() {
        for_both(|q| {
            assert_eq!(q.max_depth(), 0);
            q.push(buf_item(0, 0)).unwrap();
            q.push(buf_item(0, 1)).unwrap();
            q.pop().unwrap();
            q.push(buf_item(0, 2)).unwrap();
            // Depth peaked at 2 even though it dipped to 1 in between.
            assert_eq!(q.max_depth(), 2);
            assert_eq!(q.capacity(), 4);
        });
    }

    #[test]
    fn gauge_samples_depth_on_push_and_pop() {
        let g = Arc::new(crate::metrics::Gauge::new());
        let q = Queue::with_gauge("t", 4, Some(Arc::clone(&g)));
        q.push(buf_item(0, 0)).unwrap();
        q.push(buf_item(0, 1)).unwrap();
        assert_eq!(g.get(), 2);
        q.pop().unwrap();
        assert_eq!(g.get(), 1);
        assert_eq!(g.peak(), 2);
    }

    #[test]
    fn gauge_samples_once_per_batched_pop() {
        let g = Arc::new(crate::metrics::Gauge::new());
        let q = Queue::spsc_with_gauge("t", 8, Some(Arc::clone(&g)));
        for i in 0..6 {
            q.push(buf_item(0, i)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_many(4, &mut out).unwrap(), 4);
        // One sample for the whole batch: the gauge holds the post-batch
        // depth, never the intermediate 5/4/3.
        assert_eq!(g.get(), 2);
        assert_eq!(out.len(), 4);
        assert_eq!(q.max_depth(), 6);
    }

    #[test]
    fn pop_many_drains_fifo_and_stops_at_caboose() {
        for_both(|q| {
            q.push(buf_item(1, 10)).unwrap();
            q.push(buf_item(1, 11)).unwrap();
            q.push(Item::Caboose(PipelineId(1))).unwrap();
            let mut out = Vec::new();
            let n = q.pop_many(8, &mut out).unwrap();
            // The caboose ends the batch even though `max` wasn't reached.
            assert_eq!(n, 3);
            assert_eq!(tag_of(&out[0]), 10);
            assert_eq!(tag_of(&out[1]), 11);
            assert!(matches!(out[2], Item::Caboose(PipelineId(1))));
        });
    }

    #[test]
    fn pop_many_respects_max() {
        for_both(|q| {
            for i in 0..4 {
                q.push(buf_item(0, i)).unwrap();
            }
            let mut out = Vec::new();
            assert_eq!(q.pop_many(3, &mut out).unwrap(), 3);
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop_many(3, &mut out).unwrap(), 1);
            assert_eq!(out.len(), 4);
        });
    }

    #[test]
    fn pop_many_blocks_then_returns_batch() {
        for_both(|q| {
            let q2 = Arc::clone(&q);
            let h = thread::spawn(move || {
                let mut out = Vec::new();
                let n = q2.pop_many(8, &mut out).unwrap();
                (n, out.iter().map(tag_of).collect::<Vec<_>>())
            });
            thread::sleep(Duration::from_millis(20));
            q.push(buf_item(0, 7)).unwrap();
            let (n, tags) = h.join().unwrap();
            assert!(n >= 1);
            assert_eq!(tags[0], 7);
        });
    }

    #[test]
    fn pop_many_wakes_blocked_pushers() {
        both_cap1(|q| {
            q.push(buf_item(0, 0)).unwrap();
            let q2 = Arc::clone(&q);
            let h = thread::spawn(move || q2.push(buf_item(0, 1)).is_ok());
            thread::sleep(Duration::from_millis(20));
            let mut out = Vec::new();
            assert_eq!(q.pop_many(4, &mut out).unwrap(), 1);
            assert!(h.join().unwrap());
        });
    }

    #[test]
    fn pop_many_fails_after_close_and_drain() {
        for_both(|q| {
            q.push(buf_item(0, 1)).unwrap();
            q.close();
            let mut out = Vec::new();
            assert_eq!(q.pop_many(4, &mut out).unwrap(), 1);
            assert!(q.pop_many(4, &mut out).is_err());
        });
    }

    #[test]
    fn caboose_travels_like_data() {
        for_both(|q| {
            q.push(buf_item(3, 5)).unwrap();
            q.push(Item::Caboose(PipelineId(3))).unwrap();
            assert!(matches!(q.pop().unwrap(), Item::Buf(_)));
            match q.pop().unwrap() {
                Item::Caboose(p) => assert_eq!(p, PipelineId(3)),
                other => panic!("expected caboose, got {other:?}"),
            }
        });
    }

    #[test]
    fn spsc_flavor_is_reported() {
        assert!(!Queue::new("m", 2).is_spsc());
        assert!(!Queue::lock_free("l", 2).is_spsc());
        assert!(Queue::spsc_with_gauge("s", 2, None).is_spsc());
    }

    #[test]
    fn flavor_labels_are_stable() {
        assert_eq!(Queue::new("m", 2).flavor_label(), "mutex");
        assert_eq!(Queue::lock_free("l", 2).flavor_label(), "lockfree");
        assert_eq!(Queue::spsc_with_gauge("s", 2, None).flavor_label(), "spsc");
    }

    #[test]
    fn lock_free_order_survives_many_wraparounds() {
        // A cap-2 ring forced through thousands of laps exercises the
        // sequence-number lap arithmetic (`pos + 1` publish, `pos + cap`
        // release) far past the first wrap.
        let q = Queue::lock_free("l", 2);
        for i in 0..5_000u64 {
            q.push(buf_item(0, 2 * i)).unwrap();
            q.push(buf_item(0, 2 * i + 1)).unwrap();
            assert_eq!(tag_of(&q.pop().unwrap()), 2 * i);
            assert_eq!(tag_of(&q.pop().unwrap()), 2 * i + 1);
        }
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn lock_free_stress_preserves_item_count() {
        let q = Queue::lock_free("l", 8);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100 {
                        q.push(buf_item(0, (p * 100 + i) as u64)).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..100 {
                        got.push(tag_of(&q.pop().unwrap()));
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..400).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn lock_free_preserves_per_producer_fifo() {
        // Tags carry (producer, seq); a single consumer must see each
        // producer's items in increasing seq order even though the
        // interleaving across producers is arbitrary.
        let q = Queue::lock_free("l", 4);
        let producers: Vec<_> = (0..3u64)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..500u64 {
                        q.push(buf_item(0, (p << 32) | i)).unwrap();
                    }
                })
            })
            .collect();
        let mut next = [0u64; 3];
        for _ in 0..1500 {
            let tag = tag_of(&q.pop().unwrap());
            let (p, i) = ((tag >> 32) as usize, tag & 0xffff_ffff);
            assert_eq!(i, next[p], "producer {p} items reordered");
            next[p] += 1;
        }
        for p in producers {
            p.join().unwrap();
        }
    }

    #[test]
    fn close_wakes_every_parked_popper() {
        for_both(|q| {
            let waiters: Vec<_> = (0..3)
                .map(|_| {
                    let q = Arc::clone(&q);
                    thread::spawn(move || q.pop().is_err())
                })
                .collect();
            thread::sleep(Duration::from_millis(30));
            q.close();
            for w in waiters {
                assert!(w.join().unwrap());
            }
        });
    }

    #[test]
    fn park_counters_record_blocked_waits() {
        // On a host where the spin budget never expires this would be
        // flaky, so only assert the counters move when a wait certainly
        // parked: a full queue with the peer delayed past any spin phase.
        // (Cap 2, the ring's minimum — a cap-1 request would build the
        // mutex fallback and bypass the lock-free park path under test.)
        let q = Queue::lock_free("l", 2);
        q.push(buf_item(0, 0)).unwrap();
        q.push(buf_item(0, 1)).unwrap();
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.push(buf_item(0, 2)).is_ok());
        // Wait until the producer has actually parked: the queue stays
        // full until we pop, so the park counter must eventually move.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while q.parks().0 == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "producer never parked"
            );
            thread::sleep(Duration::from_millis(1));
        }
        q.pop().unwrap();
        assert!(h.join().unwrap());
        let (push_parks, _) = q.parks();
        assert!(push_parks > 0, "blocked push should count a park");
        assert_eq!(
            q.cas_retries(),
            0,
            "uncontended run must not count CAS retries"
        );
    }

    #[test]
    fn spsc_stress_preserves_order_across_wraparound() {
        let q = Queue::spsc_with_gauge("s", 3, None);
        let q2 = Arc::clone(&q);
        const N: u64 = 10_000;
        let producer = thread::spawn(move || {
            for i in 0..N {
                q2.push(buf_item(0, i)).unwrap();
            }
        });
        for i in 0..N {
            assert_eq!(tag_of(&q.pop().unwrap()), i);
        }
        producer.join().unwrap();
    }

    #[test]
    fn spsc_batched_consumer_sees_every_item_in_order() {
        let q = Queue::spsc_with_gauge("s", 4, None);
        let q2 = Arc::clone(&q);
        const N: u64 = 10_000;
        let producer = thread::spawn(move || {
            for i in 0..N {
                q2.push(buf_item(0, i)).unwrap();
            }
            q2.close();
        });
        let mut seen = Vec::new();
        let mut out = Vec::new();
        while let Ok(n) = q.pop_many(8, &mut out) {
            assert!(n > 0);
            seen.extend(out.drain(..).map(|i| tag_of(&i)));
        }
        producer.join().unwrap();
        let expect: Vec<u64> = (0..N).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn mpmc_stress_preserves_item_count() {
        let q = Queue::new("t", 8);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100 {
                        q.push(buf_item(0, (p * 100 + i) as u64)).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..100 {
                        got.push(tag_of(&q.pop().unwrap()));
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..400).collect();
        assert_eq!(all, expect);
    }
}
