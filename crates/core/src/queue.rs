//! Bounded blocking queues of buffers.
//!
//! FG places a queue between every pair of consecutive pipeline stages.  A
//! stage *conveys* a buffer by pushing into its downstream queue and
//! *accepts* by popping from its upstream queue; an empty upstream queue
//! blocks the accepting stage's thread, which is exactly how FG yields the
//! CPU to other stages while a high-latency operation is pending elsewhere.
//!
//! Queues are multi-producer multi-consumer because *virtual* stages share a
//! single queue among many pipelines, and several stages may discard buffers
//! into the same recycle queue.
//!
//! A queue can be *closed*; closing wakes every blocked thread.  Pushes to a
//! closed queue fail immediately, pops drain whatever is left and then fail.
//! The runtime closes all queues of a program when a stage fails, which
//! unblocks every thread for shutdown.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::buffer::{Buffer, PipelineId};
use crate::metrics::Gauge;

/// What travels through a queue: a buffer, or the end-of-stream marker for
/// one pipeline (FG's *caboose*).
#[derive(Debug)]
pub(crate) enum Item {
    /// A data buffer.
    Buf(Buffer),
    /// End of pipeline `PipelineId`'s stream.  Exactly one caboose per
    /// pipeline flows through each queue on that pipeline's path.
    Caboose(PipelineId),
}

/// Error returned by queue operations once the queue is closed.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Closed;

struct Inner {
    items: VecDeque<Item>,
    closed: bool,
    /// High-water mark of `items.len()`, maintained inside the existing
    /// lock so tracking costs nothing beyond a compare.
    max_depth: usize,
}

/// A bounded MPMC blocking queue of [`Item`]s.
pub(crate) struct Queue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    name: String,
    /// Depth gauge sampled on every push/pop, present only when the
    /// program runs with a metrics registry attached.
    gauge: Option<Arc<Gauge>>,
}

impl Queue {
    /// Create a queue holding at most `capacity` items.
    #[cfg(test)]
    pub(crate) fn new(name: impl Into<String>, capacity: usize) -> Arc<Self> {
        Self::with_gauge(name, capacity, None)
    }

    /// Create a queue that additionally samples its depth into `gauge`.
    pub(crate) fn with_gauge(
        name: impl Into<String>,
        capacity: usize,
        gauge: Option<Arc<Gauge>>,
    ) -> Arc<Self> {
        assert!(capacity > 0, "queue capacity must be positive");
        Arc::new(Queue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                max_depth: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            name: name.into(),
            gauge,
        })
    }

    /// Debug name of this queue.
    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    /// Maximum number of items this queue can hold.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of the queue's depth over its lifetime.
    pub(crate) fn max_depth(&self) -> usize {
        self.inner.lock().max_depth
    }

    fn sample_depth(&self, depth: usize) {
        if let Some(g) = &self.gauge {
            g.set(depth as u64);
        }
    }

    /// Blocking push.  Fails (returning the item) once the queue is closed.
    pub(crate) fn push(&self, item: Item) -> Result<(), (Item, Closed)> {
        let mut inner = self.inner.lock();
        while inner.items.len() >= self.capacity && !inner.closed {
            self.not_full.wait(&mut inner);
        }
        if inner.closed {
            return Err((item, Closed));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        inner.max_depth = inner.max_depth.max(depth);
        drop(inner);
        self.sample_depth(depth);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking push used by shutdown paths; drops nothing silently —
    /// the item comes back on failure.
    pub(crate) fn try_push(&self, item: Item) -> Result<(), (Item, Closed)> {
        let mut inner = self.inner.lock();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err((item, Closed));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        inner.max_depth = inner.max_depth.max(depth);
        drop(inner);
        self.sample_depth(depth);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop.  After close, drains remaining items, then fails.
    pub(crate) fn pop(&self) -> Result<Item, Closed> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                let depth = inner.items.len();
                drop(inner);
                self.sample_depth(depth);
                self.not_full.notify_one();
                return Ok(item);
            }
            if inner.closed {
                return Err(Closed);
            }
            self.not_empty.wait(&mut inner);
        }
    }

    /// Close the queue and wake all waiters.  Idempotent.
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of items currently queued (for tests/diagnostics).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn buf_item(pipeline: u32, tag: u64) -> Item {
        let mut b = Buffer::new(8, PipelineId(pipeline));
        b.meta = tag;
        Item::Buf(b)
    }

    fn tag_of(item: &Item) -> u64 {
        match item {
            Item::Buf(b) => b.meta,
            Item::Caboose(_) => u64::MAX,
        }
    }

    #[test]
    fn fifo_order() {
        let q = Queue::new("t", 4);
        for i in 0..4 {
            q.push(buf_item(0, i)).unwrap();
        }
        for i in 0..4 {
            assert_eq!(tag_of(&q.pop().unwrap()), i);
        }
    }

    #[test]
    fn push_blocks_until_pop() {
        let q = Queue::new("t", 1);
        q.push(buf_item(0, 0)).unwrap();
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.push(buf_item(0, 1)).is_ok());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "second push must still be blocked");
        assert_eq!(tag_of(&q.pop().unwrap()), 0);
        assert!(h.join().unwrap());
        assert_eq!(tag_of(&q.pop().unwrap()), 1);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Queue::new("t", 1);
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || tag_of(&q2.pop().unwrap()));
        thread::sleep(Duration::from_millis(20));
        q.push(buf_item(0, 9)).unwrap();
        assert_eq!(h.join().unwrap(), 9);
    }

    #[test]
    fn close_wakes_poppers() {
        let q = Queue::new("t", 1);
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop().is_err());
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap());
    }

    #[test]
    fn close_wakes_pushers() {
        let q = Queue::new("t", 1);
        q.push(buf_item(0, 0)).unwrap();
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.push(buf_item(0, 1)).is_err());
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap());
    }

    #[test]
    fn close_drains_then_fails() {
        let q = Queue::new("t", 4);
        q.push(buf_item(0, 1)).unwrap();
        q.push(buf_item(0, 2)).unwrap();
        q.close();
        assert_eq!(tag_of(&q.pop().unwrap()), 1);
        assert_eq!(tag_of(&q.pop().unwrap()), 2);
        assert!(q.pop().is_err());
        assert!(q.push(buf_item(0, 3)).is_err());
    }

    #[test]
    fn try_push_respects_capacity_and_close() {
        let q = Queue::new("t", 1);
        assert!(q.try_push(buf_item(0, 0)).is_ok());
        assert!(q.try_push(buf_item(0, 1)).is_err());
        let q2 = Queue::new("t2", 1);
        q2.close();
        assert!(q2.try_push(buf_item(0, 0)).is_err());
    }

    #[test]
    fn max_depth_tracks_high_water_mark() {
        let q = Queue::new("t", 4);
        assert_eq!(q.max_depth(), 0);
        q.push(buf_item(0, 0)).unwrap();
        q.push(buf_item(0, 1)).unwrap();
        q.pop().unwrap();
        q.push(buf_item(0, 2)).unwrap();
        // Depth peaked at 2 even though it dipped to 1 in between.
        assert_eq!(q.max_depth(), 2);
        assert_eq!(q.capacity(), 4);
        assert_eq!(q.name(), "t");
    }

    #[test]
    fn gauge_samples_depth_on_push_and_pop() {
        let g = Arc::new(crate::metrics::Gauge::new());
        let q = Queue::with_gauge("t", 4, Some(Arc::clone(&g)));
        q.push(buf_item(0, 0)).unwrap();
        q.push(buf_item(0, 1)).unwrap();
        assert_eq!(g.get(), 2);
        q.pop().unwrap();
        assert_eq!(g.get(), 1);
        assert_eq!(g.peak(), 2);
    }

    #[test]
    fn caboose_travels_like_data() {
        let q = Queue::new("t", 2);
        q.push(buf_item(3, 5)).unwrap();
        q.push(Item::Caboose(PipelineId(3))).unwrap();
        assert!(matches!(q.pop().unwrap(), Item::Buf(_)));
        match q.pop().unwrap() {
            Item::Caboose(p) => assert_eq!(p, PipelineId(3)),
            other => panic!("expected caboose, got {other:?}"),
        }
    }

    #[test]
    fn mpmc_stress_preserves_item_count() {
        let q = Queue::new("t", 8);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100 {
                        q.push(buf_item(0, (p * 100 + i) as u64)).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..100 {
                        got.push(tag_of(&q.pop().unwrap()));
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..400).collect();
        assert_eq!(all, expect);
    }
}
