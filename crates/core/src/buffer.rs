//! Buffers: the unit of data that traverses an FG pipeline.
//!
//! A buffer corresponds to one *block* of data for a high-latency transfer
//! (a disk block, a communication block).  Buffers are allocated once, in a
//! small fixed pool per pipeline, and recycled from the sink back to the
//! source, so total buffer memory stays bounded regardless of how many
//! *rounds* a computation runs.
//!
//! Every buffer is **tied to the pipeline it was allocated for** (the paper,
//! §IV: "each buffer is tied to a specific pipeline"); conveying it through a
//! stage routes it to that pipeline's successor, and the runtime rejects any
//! attempt to move a buffer across pipelines.

use std::fmt;

/// Identifier of a pipeline within one [`Program`](crate::Program).
///
/// Assigned densely from zero in the order pipelines are declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PipelineId(pub(crate) u32);

impl PipelineId {
    /// Dense index of this pipeline within its program.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PipelineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline#{}", self.0)
    }
}

/// Identifier of a stage within one [`Program`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub(crate) u32);

impl StageId {
    /// Dense index of this stage within its program.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage#{}", self.0)
    }
}

/// A fixed-capacity block of bytes traversing a pipeline.
///
/// The *filled* prefix (`0..len`) is the data a stage produced; the rest of
/// the capacity is scratch space.  Capacity never changes after allocation.
pub struct Buffer {
    data: Box<[u8]>,
    len: usize,
    pipeline: PipelineId,
    round: u64,
    trace_id: u64,
    /// Free-form metadata a stage may attach for downstream stages (e.g. a
    /// column index, a run number).  Reset to zero when the source recycles
    /// the buffer into a new round.
    pub meta: u64,
}

impl Buffer {
    /// Allocate a zeroed buffer of `capacity` bytes owned by `pipeline`.
    pub(crate) fn new(capacity: usize, pipeline: PipelineId) -> Self {
        Buffer {
            data: vec![0u8; capacity].into_boxed_slice(),
            len: 0,
            pipeline,
            round: 0,
            trace_id: 0,
            meta: 0,
        }
    }

    /// The pipeline this buffer belongs to (immutable for the buffer's life).
    pub fn pipeline(&self) -> PipelineId {
        self.pipeline
    }

    /// The round in which the source injected this buffer (0-based).
    pub fn round(&self) -> u64 {
        self.round
    }

    pub(crate) fn begin_round(&mut self, round: u64) {
        self.round = round;
        self.len = 0;
        self.meta = 0;
        self.trace_id = 0;
    }

    /// Causal-trace id of this buffer's current round, assigned by the
    /// source when a [`TraceSink`](crate::trace::TraceSink) is installed.
    /// Zero when the run is untraced.  Flight-recorder spans referring to
    /// this buffer carry the same id, which is how
    /// [`critical_path`](crate::critical_path) and the Chrome-trace flow
    /// events stitch one buffer's journey across stages.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    pub(crate) fn set_trace_id(&mut self, id: u64) {
        self.trace_id = id;
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Number of filled (valid) bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bytes are filled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of spare capacity past the filled prefix.
    pub fn remaining(&self) -> usize {
        self.capacity() - self.len
    }

    /// Mark the first `len` bytes as filled.
    ///
    /// # Panics
    /// Panics if `len > capacity`.
    pub fn set_filled(&mut self, len: usize) {
        assert!(
            len <= self.capacity(),
            "set_filled({len}) exceeds capacity {}",
            self.capacity()
        );
        self.len = len;
    }

    /// Mark the entire capacity as filled.
    pub fn fill_to_capacity(&mut self) {
        self.len = self.capacity();
    }

    /// Forget all filled data.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The filled prefix.
    pub fn filled(&self) -> &[u8] {
        &self.data[..self.len]
    }

    /// Mutable view of the filled prefix.
    pub fn filled_mut(&mut self) -> &mut [u8] {
        &mut self.data[..self.len]
    }

    /// Mutable view of the whole capacity (filled prefix + scratch space).
    ///
    /// Use together with [`Buffer::set_filled`] when producing data in place.
    pub fn space_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Mutable view of the unfilled suffix.
    pub fn spare_mut(&mut self) -> &mut [u8] {
        let len = self.len;
        &mut self.data[len..]
    }

    /// Append as many bytes of `src` as fit; returns how many were copied.
    pub fn append(&mut self, src: &[u8]) -> usize {
        let n = src.len().min(self.remaining());
        let len = self.len;
        self.data[len..len + n].copy_from_slice(&src[..n]);
        self.len += n;
        n
    }

    /// Replace the filled contents with `src`.
    ///
    /// # Panics
    /// Panics if `src.len() > capacity`.
    pub fn copy_from(&mut self, src: &[u8]) {
        assert!(
            src.len() <= self.capacity(),
            "copy_from of {} bytes exceeds capacity {}",
            src.len(),
            self.capacity()
        );
        self.data[..src.len()].copy_from_slice(src);
        self.len = src.len();
    }
}

impl fmt::Debug for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Buffer")
            .field("pipeline", &self.pipeline)
            .field("round", &self.round)
            .field("len", &self.len)
            .field("capacity", &self.data.len())
            .field("meta", &self.meta)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(cap: usize) -> Buffer {
        Buffer::new(cap, PipelineId(0))
    }

    #[test]
    fn starts_empty_and_zeroed() {
        let b = buf(16);
        assert_eq!(b.capacity(), 16);
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        assert_eq!(b.remaining(), 16);
        assert_eq!(b.filled(), &[]);
    }

    #[test]
    fn append_respects_capacity() {
        let mut b = buf(4);
        assert_eq!(b.append(&[1, 2, 3]), 3);
        assert_eq!(b.filled(), &[1, 2, 3]);
        assert_eq!(b.append(&[9, 9, 9]), 1);
        assert_eq!(b.filled(), &[1, 2, 3, 9]);
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.append(&[7]), 0);
    }

    #[test]
    fn copy_from_and_clear() {
        let mut b = buf(8);
        b.copy_from(&[5, 6, 7]);
        assert_eq!(b.filled(), &[5, 6, 7]);
        b.clear();
        assert!(b.is_empty());
        // Data beyond len is scratch but still addressable via space_mut.
        assert_eq!(b.space_mut().len(), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn copy_from_too_large_panics() {
        let mut b = buf(2);
        b.copy_from(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn set_filled_too_large_panics() {
        let mut b = buf(2);
        b.set_filled(3);
    }

    #[test]
    fn begin_round_resets() {
        let mut b = buf(4);
        b.append(&[1]);
        b.meta = 42;
        b.begin_round(7);
        assert_eq!(b.round(), 7);
        assert_eq!(b.len(), 0);
        assert_eq!(b.meta, 0);
    }

    #[test]
    fn spare_and_set_filled_produce_in_place() {
        let mut b = buf(4);
        b.append(&[1, 2]);
        b.spare_mut()[0] = 3;
        b.set_filled(3);
        assert_eq!(b.filled(), &[1, 2, 3]);
    }
}
