//! Live telemetry: a time-series sampler over a [`MetricsRegistry`] and a
//! dependency-free HTTP exposition endpoint.
//!
//! The rest of the observability layer ([`metrics`](crate::metrics),
//! [`Report`](crate::Report), the JSON/trace exports) answers questions
//! *after* a run ends.  This module answers them *while the pipeline is
//! running*:
//!
//! * a [`Sampler`] thread snapshots the registry on a fixed interval into a
//!   bounded ring buffer of [`TimestampedSnapshot`]s, turning every
//!   counter, gauge, and histogram into a time series that
//!   [`analyze::diagnose`](crate::analyze::diagnose) can attribute
//!   bottlenecks from;
//! * a [`TelemetryServer`] serves `GET /metrics` (Prometheus text format
//!   0.0.4, via [`MetricsSnapshot::to_prometheus`]) and `GET /report` (the
//!   live dashboard text) over a plain `std::net::TcpListener`, so a
//!   long-running `fgsort` or `experiments` invocation can be scraped by a
//!   stock Prometheus or inspected with `curl`.
//!
//! Both pieces are deliberately tiny and std-only: the update paths they
//! observe are lock-free relaxed atomics, and neither the sampler (one
//! snapshot per interval) nor an idle server (one blocked `accept`)
//! perturbs the pipeline timings they exist to measure.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::json::{obj, Json};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::stats::Report;

/// The shared sampler heartbeat: a condvar-timed loop that runs a tick on
/// a fixed interval until stopped, where the wait doubles as the interval
/// sleep so [`Cadence::stop`] interrupts a pending interval instead of
/// waiting it out.  Both the telemetry [`Sampler`] and the resource
/// profiler ([`ResourceProfiler`](crate::profile::ResourceProfiler)) run
/// on one of these.
pub(crate) struct Cadence {
    stop: Mutex<bool>,
    cv: Condvar,
}

impl Cadence {
    pub(crate) fn new() -> Cadence {
        Cadence {
            stop: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Run `tick` every `interval` on the calling thread until
    /// [`Cadence::stop`]; a stop during the wait returns without a final
    /// tick.
    pub(crate) fn run(&self, interval: Duration, mut tick: impl FnMut()) {
        let mut stop = self.stop.lock();
        loop {
            self.cv.wait_for(&mut stop, interval);
            if *stop {
                return;
            }
            tick();
        }
    }

    /// Stop the loop, interrupting any in-progress wait.
    pub(crate) fn stop(&self) {
        *self.stop.lock() = true;
        self.cv.notify_all();
    }
}

/// One point of the telemetry time series: the registry's state at
/// `elapsed` since the sampler started.
#[derive(Debug, Clone, PartialEq)]
pub struct TimestampedSnapshot {
    /// Time since [`Sampler::start`] when the snapshot was taken.
    pub elapsed: Duration,
    /// The registry's state at that instant.
    pub snapshot: MetricsSnapshot,
}

impl TimestampedSnapshot {
    /// The snapshot as a JSON object (`{"elapsed_ns": …, "metrics": …}`);
    /// inverse of [`TimestampedSnapshot::from_json_value`].
    pub fn to_json_value(&self) -> Json {
        obj(vec![
            ("elapsed_ns", Json::from(self.elapsed.as_nanos() as u64)),
            ("metrics", self.snapshot.to_json_value()),
        ])
    }

    /// Parse a snapshot written by [`TimestampedSnapshot::to_json_value`].
    pub fn from_json_value(j: &Json) -> Result<Self, String> {
        Ok(TimestampedSnapshot {
            elapsed: Duration::from_nanos(
                j.get("elapsed_ns")
                    .and_then(Json::as_u64)
                    .ok_or("missing elapsed_ns")?,
            ),
            snapshot: MetricsSnapshot::from_json_value(j.get("metrics").ok_or("missing metrics")?)?,
        })
    }
}

/// Sampling cadence and retention of a [`Sampler`].
#[derive(Debug, Clone, Copy)]
pub struct SamplerCfg {
    /// Interval between snapshots.
    pub interval: Duration,
    /// Maximum retained snapshots; older snapshots are evicted
    /// first-in-first-out once the ring is full.
    pub capacity: usize,
}

impl Default for SamplerCfg {
    /// 100 ms cadence, one minute of history.
    fn default() -> Self {
        SamplerCfg {
            interval: Duration::from_millis(100),
            capacity: 600,
        }
    }
}

struct SamplerShared {
    registry: Arc<MetricsRegistry>,
    cfg: SamplerCfg,
    series: Mutex<Vec<TimestampedSnapshot>>,
    /// Snapshots evicted from the full ring (so consumers know the series
    /// is a suffix, not the whole run).
    evicted: AtomicU64,
    cadence: Cadence,
}

impl SamplerShared {
    fn sample(&self, started: Instant) {
        let point = TimestampedSnapshot {
            elapsed: started.elapsed(),
            snapshot: self.registry.snapshot(),
        };
        let mut series = self.series.lock();
        if series.len() >= self.cfg.capacity {
            series.remove(0);
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        series.push(point);
    }
}

/// A background thread snapshotting a [`MetricsRegistry`] on a fixed
/// interval into a bounded ring buffer.
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use fg_core::{MetricsRegistry, Sampler, SamplerCfg};
///
/// let registry = Arc::new(MetricsRegistry::new());
/// let sampler = Sampler::start(
///     Arc::clone(&registry),
///     SamplerCfg { interval: Duration::from_millis(1), capacity: 64 },
/// );
/// registry.counter("core/rounds").add(3);
/// std::thread::sleep(Duration::from_millis(10));
/// let series = sampler.stop();
/// assert!(!series.is_empty());
/// ```
pub struct Sampler {
    shared: Arc<SamplerShared>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Spawn the sampling thread.  The first snapshot is taken one
    /// `cfg.interval` after the call.
    pub fn start(registry: Arc<MetricsRegistry>, cfg: SamplerCfg) -> Sampler {
        let shared = Arc::new(SamplerShared {
            registry,
            cfg: SamplerCfg {
                interval: cfg.interval.max(Duration::from_micros(100)),
                capacity: cfg.capacity.max(1),
            },
            series: Mutex::new(Vec::new()),
            evicted: AtomicU64::new(0),
            cadence: Cadence::new(),
        });
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("fg-telemetry-sampler".into())
            .spawn(move || {
                let _reg = crate::profile::register_current_thread("sampler");
                let started = Instant::now();
                worker
                    .cadence
                    .run(worker.cfg.interval, || worker.sample(started));
            })
            .expect("spawn telemetry sampler");
        Sampler {
            shared,
            handle: Some(handle),
        }
    }

    /// Copy of the series collected so far (oldest first).
    pub fn series(&self) -> Vec<TimestampedSnapshot> {
        self.shared.series.lock().clone()
    }

    /// Snapshots evicted from the full ring so far; nonzero means
    /// [`Sampler::series`] is a suffix of the run, not the whole run.
    pub fn evicted(&self) -> u64 {
        self.shared.evicted.load(Ordering::Relaxed)
    }

    /// Stop the sampling thread and return the collected series.
    pub fn stop(mut self) -> Vec<TimestampedSnapshot> {
        self.join();
        std::mem::take(&mut *self.shared.series.lock())
    }

    fn join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shared.cadence.stop();
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.join();
    }
}

/// Render a telemetry series as a JSON array (one
/// [`TimestampedSnapshot::to_json_value`] element per point).
pub fn series_to_json(series: &[TimestampedSnapshot]) -> Json {
    Json::Arr(series.iter().map(|s| s.to_json_value()).collect())
}

/// Parse a series written by [`series_to_json`].
pub fn series_from_json(j: &Json) -> Result<Vec<TimestampedSnapshot>, String> {
    j.as_arr()
        .ok_or("telemetry series must be an array")?
        .iter()
        .map(TimestampedSnapshot::from_json_value)
        .collect()
}

/// Source of the `GET /report` body — entry points with richer context (a
/// finished pass's [`Report`]) can install their own renderer.
pub type ReportFn = Arc<dyn Fn() -> String + Send + Sync>;

/// A minimal HTTP/1.1 endpoint exposing a [`MetricsRegistry`] while a run
/// is in flight.
///
/// Routes:
///
/// * `GET /metrics` — the registry snapshot in Prometheus text format
///   0.0.4 ([`MetricsSnapshot::to_prometheus`]);
/// * `GET /report` — human-readable live dashboard text (by default the
///   metrics sections of [`Report::render_dashboard`] over the current
///   snapshot);
/// * `GET /control` — the closed-loop controller's live status as JSON
///   (verdict, actuator positions, recent decisions; `{"active":false}`
///   when no controller is attached — see
///   [`ControlStatus`](crate::ControlStatus));
/// * `GET /cluster` — the merged [`ClusterReport`](crate::ClusterReport)
///   as JSON, when a cluster source was installed with
///   [`TelemetryServer::bind_all`] (`404` otherwise);
/// * `GET /resources` — a live [`ResourceReport`](crate::ResourceReport)
///   as JSON (per-thread CPU attribution, process RSS/peak, allocator
///   counters, and the buffer ledger when one was installed with
///   [`TelemetryServer::bind_all`]) — sampled fresh on every request, so
///   it works with or without a background
///   [`ResourceProfiler`](crate::ResourceProfiler);
/// * `GET /healthz` — liveness probe, always `200 ok`;
/// * any other path — `404` with a body listing the routes above.
///
/// Each scrape also increments the registry's `telemetry/scrapes` counter,
/// so the exposition layer is observable through itself.  The listener
/// thread shuts down when the server is dropped.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving the registry.
    pub fn bind(addr: impl ToSocketAddrs, registry: Arc<MetricsRegistry>) -> std::io::Result<Self> {
        Self::bind_with(addr, registry, None)
    }

    /// [`TelemetryServer::bind`] with a custom `GET /report` body.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
        report: Option<ReportFn>,
    ) -> std::io::Result<Self> {
        Self::bind_full(addr, registry, report, None)
    }

    /// [`TelemetryServer::bind_with`] plus a live controller status for
    /// `GET /control`.  Pass the same [`ControlStatus`](crate::ControlStatus)
    /// handle that the program's [`ControllerCfg`](crate::ControllerCfg)
    /// carries and the endpoint tracks the controller in real time.
    pub fn bind_full(
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
        report: Option<ReportFn>,
        control: Option<Arc<crate::controller::ControlStatus>>,
    ) -> std::io::Result<Self> {
        Self::bind_all(addr, registry, report, control, None, None)
    }

    /// [`TelemetryServer::bind_full`] plus a cluster-report source for
    /// `GET /cluster` and a memory ledger for `GET /resources`.
    /// `cluster` should return the current
    /// [`ClusterReport`](crate::ClusterReport) serialized as JSON
    /// ([`ClusterReport::to_json`](crate::ClusterReport::to_json)); without
    /// it the route answers `404`.  `ledger` rows are folded into every
    /// `/resources` response when given.
    pub fn bind_all(
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
        report: Option<ReportFn>,
        control: Option<Arc<crate::controller::ControlStatus>>,
        cluster: Option<ReportFn>,
        ledger: Option<Arc<crate::profile::MemoryLedger>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let report = report.unwrap_or_else(|| {
            let registry = Arc::clone(&registry);
            Arc::new(move || {
                Report {
                    metrics: registry.snapshot(),
                    ..Report::default()
                }
                .render_dashboard()
            })
        });
        let handle = std::thread::Builder::new()
            .name("fg-telemetry-server".into())
            .spawn(move || {
                let _reg = crate::profile::register_current_thread("telemetry-server");
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        return;
                    }
                    let Ok(mut stream) = conn else { continue };
                    serve_one(
                        &mut stream,
                        &registry,
                        &report,
                        control.as_deref(),
                        cluster.as_ref(),
                        ledger.as_deref(),
                    );
                }
            })
            .expect("spawn telemetry server");
        Ok(TelemetryServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves an ephemeral `:0` port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocked accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Handle one connection: parse the request line, route, respond, close.
fn serve_one(
    stream: &mut TcpStream,
    registry: &MetricsRegistry,
    report: &ReportFn,
    control: Option<&crate::controller::ControlStatus>,
    cluster: Option<&ReportFn>,
    ledger: Option<&crate::profile::MemoryLedger>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let mut len = 0;
    // Read until the end of the request head (or the buffer fills; the
    // request line always fits in 1 KiB).
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => {
            registry.counter("telemetry/scrapes").inc();
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                registry.snapshot().to_prometheus(),
            )
        }
        ("GET", "/report") => {
            registry.counter("telemetry/scrapes").inc();
            ("200 OK", "text/plain; charset=utf-8", report())
        }
        ("GET", "/control") => {
            registry.counter("telemetry/scrapes").inc();
            let body = match control {
                Some(status) => status.get_json(),
                None => "{\"active\":false}".to_string(),
            };
            ("200 OK", "application/json; charset=utf-8", body)
        }
        ("GET", "/cluster") if cluster.is_some() => {
            registry.counter("telemetry/scrapes").inc();
            (
                "200 OK",
                "application/json; charset=utf-8",
                cluster.unwrap()(),
            )
        }
        ("GET", "/resources") => {
            registry.counter("telemetry/scrapes").inc();
            (
                "200 OK",
                "application/json; charset=utf-8",
                crate::profile::ResourceReport::sample_now(ledger)
                    .to_json_value()
                    .to_string(),
            )
        }
        ("GET", "/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        ("GET", _) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; routes: /metrics /report /control /cluster /resources /healthz\n"
                .to_string(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        ),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_collects_and_bounds_series() {
        let registry = Arc::new(MetricsRegistry::new());
        let counter = registry.counter("core/rounds");
        let sampler = Sampler::start(
            Arc::clone(&registry),
            SamplerCfg {
                interval: Duration::from_millis(1),
                capacity: 5,
            },
        );
        for _ in 0..40 {
            counter.inc();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(sampler.evicted() > 0, "ring should have wrapped");
        let series = sampler.stop();
        assert_eq!(series.len(), 5);
        // Monotone timestamps, and the retained suffix reflects late
        // counter values.
        for pair in series.windows(2) {
            assert!(pair[0].elapsed <= pair[1].elapsed);
        }
        assert!(
            series
                .last()
                .unwrap()
                .snapshot
                .counter("core/rounds")
                .unwrap()
                > 5
        );
    }

    #[test]
    fn sampler_stop_is_prompt_with_long_interval() {
        let registry = Arc::new(MetricsRegistry::new());
        let sampler = Sampler::start(
            registry,
            SamplerCfg {
                interval: Duration::from_secs(3600),
                capacity: 4,
            },
        );
        let t = Instant::now();
        sampler.stop();
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "stop must not wait out the interval"
        );
    }

    #[test]
    fn timestamped_snapshot_json_round_trip() {
        let registry = MetricsRegistry::new();
        registry.counter("core/rounds").add(7);
        registry.gauge("core/queue_depth/p[0]").set(3);
        registry.histogram("disk/d0/read_ns").record(1000);
        let point = TimestampedSnapshot {
            elapsed: Duration::from_millis(250),
            snapshot: registry.snapshot(),
        };
        let series = vec![point.clone(), point];
        let j = series_to_json(&series);
        let parsed = series_from_json(&Json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(parsed, series);
    }
}
